//! Federation of audit trails — the paper's Audit Management component.
//!
//! "In the first instantiation, we use DB2 Information Integrator as the
//! federation technology in the PRIMA Audit Management component to create a
//! virtual view of all the audit trails." This module plays that role: it
//! registers any number of per-site [`AuditStore`]s and materializes a
//! consolidated view — either as entries (for the refinement pipeline) or as
//! a relational table with a provenance column (for ad-hoc analytics).

use crate::entry::AuditEntry;
use crate::schema::{audit_schema, COL_STATUS};
use crate::store::AuditStore;
use prima_model::{GroundRule, Policy, StoreTag};
use prima_store::{Column, DataType, Row, Schema, StoreError, Table, Value};

/// Name of the provenance column added by [`AuditFederation::consolidated_table`].
pub const COL_SITE: &str = "site";

/// Federation registration error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FederationError {
    /// A source with this name is already registered. Registering the
    /// same name twice — including the same [`AuditStore`] twice, since
    /// clones share one table — would silently double-count every entry
    /// in coverage denominators and mined pattern supports.
    DuplicateSource {
        /// The offending source name.
        name: String,
    },
}

impl std::fmt::Display for FederationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FederationError::DuplicateSource { name } => {
                write!(f, "audit source '{name}' is already registered")
            }
        }
    }
}

impl std::error::Error for FederationError {}

/// A consolidated view over multiple audit stores.
#[derive(Debug, Default, Clone)]
pub struct AuditFederation {
    sources: Vec<AuditStore>,
}

impl AuditFederation {
    /// Creates an empty federation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a log source. Sources are iterated in registration order,
    /// and entries within a source in append order, so the consolidated
    /// view is deterministic.
    ///
    /// Source names are the identity: registering a second store with an
    /// already-registered name (including a clone of a registered store,
    /// which shares its table) is rejected rather than double-counted.
    pub fn register(&mut self, store: AuditStore) -> Result<(), FederationError> {
        if self.sources.iter().any(|s| s.name() == store.name()) {
            return Err(FederationError::DuplicateSource {
                name: store.name().to_string(),
            });
        }
        self.sources.push(store);
        Ok(())
    }

    /// The registered sources.
    pub fn sources(&self) -> &[AuditStore] {
        &self.sources
    }

    /// Total entries across all sources.
    pub fn total_len(&self) -> usize {
        self.sources.iter().map(AuditStore::len).sum()
    }

    /// All entries, tagged with their source name.
    pub fn entries_with_provenance(&self) -> Vec<(String, AuditEntry)> {
        let mut out = Vec::with_capacity(self.total_len());
        for s in &self.sources {
            for e in s.entries() {
                out.push((s.name().to_string(), e));
            }
        }
        out
    }

    /// All entries, merged and sorted by timestamp (stable: ties keep
    /// source order). This is the "consistent consolidated view" the
    /// refinement pipeline consumes.
    pub fn consolidated_entries(&self) -> Vec<AuditEntry> {
        let mut out: Vec<AuditEntry> = self.sources.iter().flat_map(|s| s.entries()).collect();
        out.sort_by_key(|e| e.time);
        out
    }

    /// The consolidated trail as a relational table named
    /// `audit_consolidated`, with a leading provenance column `site`.
    pub fn consolidated_table(&self) -> Result<Table, StoreError> {
        let base = audit_schema();
        let mut columns = vec![Column::required(COL_SITE, DataType::Str)];
        columns.extend(base.columns().iter().cloned());
        let schema = Schema::new(columns)?;
        let mut table = Table::new("audit_consolidated", schema);
        for s in &self.sources {
            for e in s.entries() {
                let mut values = vec![Value::str(s.name())];
                values.extend(e.to_row().into_values());
                table.insert(Row::new(values))?;
            }
        }
        Ok(table)
    }

    /// The federation-wide audit-log policy `P_AL` (one ground rule per
    /// entry across all sources).
    pub fn to_policy(&self) -> Policy {
        Policy::from_ground_rules(StoreTag::AuditLog, self.ground_rules())
    }

    /// One ground rule per entry across all sources, in consolidated
    /// (timestamp) order.
    pub fn ground_rules(&self) -> Vec<GroundRule> {
        self.consolidated_entries()
            .iter()
            .map(|e| {
                e.to_ground_rule()
                    .expect("audit entries carry non-empty attributes")
            })
            .collect()
    }

    /// Exception-based entries across all sources, in timestamp order.
    pub fn exception_entries(&self) -> Vec<AuditEntry> {
        self.consolidated_entries()
            .into_iter()
            .filter(AuditEntry::is_exception)
            .collect()
    }

    /// Sanity check: the consolidated table's status column agrees with the
    /// entry view (exercised by tests; cheap invariant for callers too).
    pub fn exception_count(&self) -> usize {
        let mut n = 0;
        for s in &self.sources {
            let t = s.snapshot_table();
            let idx = t
                .schema()
                .index_of(COL_STATUS)
                .expect("audit schema has status");
            n += t.scan().filter(|r| r.get(idx) == &Value::Int(0)).count();
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn federation() -> AuditFederation {
        let a = AuditStore::new("icu");
        a.append(&AuditEntry::regular(
            5,
            "tim",
            "referral",
            "treatment",
            "nurse",
        ))
        .unwrap();
        a.append(&AuditEntry::exception(
            1,
            "mark",
            "referral",
            "registration",
            "nurse",
        ))
        .unwrap();
        let b = AuditStore::new("billing-office");
        b.append(&AuditEntry::exception(
            3,
            "jason",
            "prescription",
            "billing",
            "clerk",
        ))
        .unwrap();
        let mut f = AuditFederation::new();
        f.register(a).unwrap();
        f.register(b).unwrap();
        f
    }

    #[test]
    fn consolidated_entries_are_time_sorted() {
        let f = federation();
        let entries = f.consolidated_entries();
        assert_eq!(entries.len(), 3);
        let times: Vec<i64> = entries.iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1, 3, 5]);
        assert_eq!(f.total_len(), 3);
    }

    #[test]
    fn provenance_is_preserved() {
        let f = federation();
        let tagged = f.entries_with_provenance();
        assert_eq!(tagged.len(), 3);
        assert!(tagged.iter().any(|(s, _)| s == "icu"));
        assert!(tagged.iter().any(|(s, _)| s == "billing-office"));
    }

    #[test]
    fn consolidated_table_has_site_column() {
        let f = federation();
        let t = f.consolidated_table().unwrap();
        assert_eq!(t.name(), "audit_consolidated");
        assert_eq!(t.schema().index_of(COL_SITE), Some(0));
        assert_eq!(t.len(), 3);
        assert_eq!(t.schema().arity(), 8);
    }

    #[test]
    fn federation_policy_spans_sources() {
        let f = federation();
        let p = f.to_policy();
        assert_eq!(p.cardinality(), 3);
        assert_eq!(p.tag(), &StoreTag::AuditLog);
    }

    #[test]
    fn exception_views_agree() {
        let f = federation();
        assert_eq!(f.exception_entries().len(), 2);
        assert_eq!(f.exception_count(), 2);
    }

    #[test]
    fn empty_federation_is_well_behaved() {
        let f = AuditFederation::new();
        assert_eq!(f.total_len(), 0);
        assert!(f.consolidated_entries().is_empty());
        assert_eq!(f.consolidated_table().unwrap().len(), 0);
        assert!(f.sources().is_empty());
    }

    #[test]
    fn duplicate_registration_is_rejected_not_double_counted() {
        let store = AuditStore::new("icu");
        store
            .append(&AuditEntry::regular(
                1,
                "tim",
                "referral",
                "treatment",
                "nurse",
            ))
            .unwrap();
        let mut f = AuditFederation::new();
        f.register(store.clone()).unwrap();
        // The same store again (a clone shares the table) — and any other
        // store reusing the name — must be rejected.
        let err = f.register(store).unwrap_err();
        assert_eq!(err, FederationError::DuplicateSource { name: "icu".into() });
        assert!(err.to_string().contains("icu"));
        let err2 = f.register(AuditStore::new("icu")).unwrap_err();
        assert!(matches!(err2, FederationError::DuplicateSource { .. }));
        // Provenance stayed single-counted.
        assert_eq!(f.total_len(), 1);
        assert_eq!(f.ground_rules().len(), 1);
    }

    #[test]
    fn equal_timestamps_tie_break_by_registration_then_append_order() {
        // Three sites, every entry at the same instant: the documented
        // stable tie-break is registration order, then append order
        // within a source.
        let a = AuditStore::new("alpha");
        a.append(&AuditEntry::regular(
            7,
            "a1",
            "referral",
            "treatment",
            "nurse",
        ))
        .unwrap();
        a.append(&AuditEntry::regular(
            7,
            "a2",
            "referral",
            "treatment",
            "nurse",
        ))
        .unwrap();
        let b = AuditStore::new("beta");
        b.append(&AuditEntry::regular(
            7,
            "b1",
            "referral",
            "treatment",
            "nurse",
        ))
        .unwrap();
        let c = AuditStore::new("gamma");
        c.append(&AuditEntry::regular(
            7,
            "c1",
            "referral",
            "treatment",
            "nurse",
        ))
        .unwrap();
        c.append(&AuditEntry::regular(
            5,
            "c0",
            "referral",
            "treatment",
            "nurse",
        ))
        .unwrap();
        let mut f = AuditFederation::new();
        f.register(a).unwrap();
        f.register(b).unwrap();
        f.register(c).unwrap();
        let users: Vec<String> = f
            .consolidated_entries()
            .iter()
            .map(|e| e.user.clone())
            .collect();
        assert_eq!(users, vec!["c0", "a1", "a2", "b1", "c1"]);
    }
}
