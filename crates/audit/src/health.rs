//! Federation health: what the consolidated view is actually made of.
//!
//! A degraded consolidation is only trustworthy if it says *how*
//! degraded it is. [`FederationHealth`] records, per source, what was
//! fetched versus expected, what was quarantined, and where the circuit
//! breaker stands — enough to derive a completeness bound
//! ([`prima_model::CompletenessBound`]) for any coverage number computed
//! over the degraded view.

use crate::retry::BreakerState;
use prima_model::CompletenessBound;
use std::fmt;

/// How one source fared in the latest consolidation round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceStatus {
    /// Fetched everything it advertised.
    Healthy,
    /// Answered, but returned fewer entries than advertised (truncated
    /// tail) or some records were quarantined.
    Degraded,
    /// Did not answer this round; the consolidated view holds its last
    /// good fetch (possibly empty).
    Unavailable,
    /// The breaker was open; no fetch was attempted this round.
    CircuitOpen,
}

impl fmt::Display for SourceStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            SourceStatus::Healthy => "healthy",
            SourceStatus::Degraded => "degraded",
            SourceStatus::Unavailable => "unavailable",
            SourceStatus::CircuitOpen => "circuit-open",
        };
        write!(f, "{s}")
    }
}

/// Per-source health after a consolidation round.
#[derive(Debug, Clone, PartialEq)]
pub struct SourceHealth {
    /// Source name.
    pub name: String,
    /// Outcome of the round.
    pub status: SourceStatus,
    /// Well-formed entries currently contributed to the consolidated
    /// view (from this round's fetch, or the stale cache if the source
    /// was unreachable).
    pub fetched: usize,
    /// Entries the source is believed to hold (its latest advertised
    /// count; for an unreachable source, the last known count).
    pub expected: usize,
    /// Records quarantined from this source's latest fetch. Quarantined
    /// records are advertised-but-not-consolidated, so they are already
    /// inside `expected − fetched`; this field breaks out how much of
    /// the gap is corruption rather than truncation or outage.
    pub quarantined: usize,
    /// Fetch attempts spent on this source in the latest round.
    pub attempts: u32,
    /// Circuit-breaker state after the round.
    pub breaker: BreakerState,
}

impl SourceHealth {
    /// Entries this source is known to hold but which are absent from
    /// the consolidated view (missing tail, unreachable site, or
    /// quarantined records — all inside `expected − fetched`).
    pub fn missing(&self) -> usize {
        self.expected.saturating_sub(self.fetched)
    }
}

/// Federation-wide health after a consolidation round.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct FederationHealth {
    /// The round this report describes (1-based; 0 = never synced).
    pub round: u64,
    /// Per-source reports, in registration order.
    pub sources: Vec<SourceHealth>,
}

impl FederationHealth {
    /// True iff every source fetched completely with nothing
    /// quarantined — coverage over this view is exact.
    pub fn all_healthy(&self) -> bool {
        self.sources
            .iter()
            .all(|s| s.status == SourceStatus::Healthy && s.missing() == 0)
    }

    /// Total entries known to exist but absent from the consolidated
    /// view.
    pub fn missing_entries(&self) -> usize {
        self.sources.iter().map(SourceHealth::missing).sum()
    }

    /// Total entries contributed to the consolidated view.
    pub fn observed_entries(&self) -> usize {
        self.sources.iter().map(|s| s.fetched).sum()
    }

    /// Total quarantined records across sources (latest fetches).
    pub fn quarantined_entries(&self) -> usize {
        self.sources.iter().map(|s| s.quarantined).sum()
    }

    /// Fraction of the believed-complete trail that is present:
    /// `observed ÷ (observed + missing)`, 1 when nothing is known
    /// missing.
    pub fn completeness(&self) -> f64 {
        let observed = self.observed_entries();
        let total = observed + self.missing_entries();
        if total == 0 {
            1.0
        } else {
            observed as f64 / total as f64
        }
    }

    /// The completeness bound for an entry-weighted coverage value of
    /// `covered` covered entries out of the `observed` entries this
    /// health report describes.
    pub fn bound_for(&self, covered: usize, observed: usize) -> CompletenessBound {
        CompletenessBound::over(covered, observed, self.missing_entries())
    }

    /// The report for one source, by name.
    pub fn source(&self, name: &str) -> Option<&SourceHealth> {
        self.sources.iter().find(|s| s.name == name)
    }
}

impl fmt::Display for FederationHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "federation round {}: {:.1}% complete ({} observed, {} missing, {} quarantined)",
            self.round,
            self.completeness() * 100.0,
            self.observed_entries(),
            self.missing_entries(),
            self.quarantined_entries(),
        )?;
        for s in &self.sources {
            writeln!(
                f,
                "  {} [{}] fetched {}/{} quarantined {} breaker {}",
                s.name, s.status, s.fetched, s.expected, s.quarantined, s.breaker
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn health() -> FederationHealth {
        FederationHealth {
            round: 3,
            sources: vec![
                SourceHealth {
                    name: "icu".into(),
                    status: SourceStatus::Healthy,
                    fetched: 10,
                    expected: 10,
                    quarantined: 0,
                    attempts: 1,
                    breaker: BreakerState::Closed,
                },
                SourceHealth {
                    name: "lab".into(),
                    status: SourceStatus::Degraded,
                    fetched: 6,
                    expected: 9,
                    quarantined: 1,
                    attempts: 2,
                    breaker: BreakerState::Closed,
                },
            ],
        }
    }

    #[test]
    fn missing_counts_tail_and_quarantine() {
        let h = health();
        assert!(!h.all_healthy());
        assert_eq!(h.observed_entries(), 16);
        assert_eq!(h.missing_entries(), 3, "2 truncated + 1 quarantined");
        assert_eq!(h.quarantined_entries(), 1);
        assert!((h.completeness() - 16.0 / 19.0).abs() < 1e-12);
    }

    #[test]
    fn bound_for_widens_by_missing() {
        let h = health();
        let b = h.bound_for(8, 16);
        assert!((b.lower - 8.0 / 19.0).abs() < 1e-12);
        assert!((b.upper - 11.0 / 19.0).abs() < 1e-12);
        assert!(b.contains(0.5));
    }

    #[test]
    fn fully_healthy_is_exact() {
        let mut h = health();
        h.sources.truncate(1);
        assert!(h.all_healthy());
        assert_eq!(h.completeness(), 1.0);
        assert!(h.bound_for(5, 10).is_exact());
    }

    #[test]
    fn lookup_and_display() {
        let h = health();
        assert_eq!(h.source("lab").unwrap().fetched, 6);
        assert!(h.source("nope").is_none());
        let text = h.to_string();
        assert!(text.contains("84.2% complete"));
        assert!(text.contains("lab [degraded] fetched 6/9"));
    }
}
