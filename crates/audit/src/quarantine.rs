//! Quarantine for malformed audit records.
//!
//! A corrupt entry from one site must not abort consolidation of the
//! whole federation: it is parked here with a reason code, excluded from
//! every coverage denominator, and counted against the source's
//! completeness instead (each quarantined record is an audit event that
//! happened but cannot be classified).

use std::fmt;

/// Why a record was quarantined instead of consolidated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QuarantineReason {
    /// The record's bytes/fields did not parse as an audit entry at all.
    MalformedRecord,
    /// The entry parsed but an attribute needed for the ground-rule
    /// projection is empty (no `(data, purpose, authorized)` triple).
    EmptyAttribute,
    /// A field carried an out-of-range encoding (e.g. `op = 7`).
    BadEncoding,
}

impl fmt::Display for QuarantineReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QuarantineReason::MalformedRecord => "malformed-record",
            QuarantineReason::EmptyAttribute => "empty-attribute",
            QuarantineReason::BadEncoding => "bad-encoding",
        };
        write!(f, "{s}")
    }
}

/// One quarantined record: where it came from, what it looked like, why
/// it was parked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantinedRecord {
    /// Name of the log source that produced the record.
    pub source: String,
    /// Consolidation round in which it was quarantined.
    pub round: u64,
    /// Best-effort rendering of the raw record (for operator triage).
    pub raw: String,
    /// Reason code.
    pub reason: QuarantineReason,
}

/// The federation-wide quarantine table.
#[derive(Debug, Clone, Default)]
pub struct Quarantine {
    records: Vec<QuarantinedRecord>,
}

impl Quarantine {
    /// An empty quarantine.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parks one record.
    pub fn park(&mut self, source: &str, round: u64, raw: String, reason: QuarantineReason) {
        self.records.push(QuarantinedRecord {
            source: source.to_string(),
            round,
            raw,
            reason,
        });
    }

    /// All quarantined records, in park order.
    pub fn records(&self) -> &[QuarantinedRecord] {
        &self.records
    }

    /// Total quarantined records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True iff nothing is quarantined.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records parked for a given source.
    pub fn for_source(&self, source: &str) -> usize {
        self.records.iter().filter(|r| r.source == source).count()
    }

    /// Histogram by reason code (sorted by reason rendering for
    /// deterministic reports).
    pub fn by_reason(&self) -> Vec<(QuarantineReason, usize)> {
        let mut counts: std::collections::BTreeMap<String, (QuarantineReason, usize)> =
            std::collections::BTreeMap::new();
        for r in &self.records {
            counts
                .entry(r.reason.to_string())
                .or_insert((r.reason, 0))
                .1 += 1;
        }
        counts.into_values().collect()
    }

    /// Drops records from rounds older than `keep_from` (quarantine is
    /// triage state, not an archive).
    pub fn expire_before(&mut self, keep_from: u64) -> usize {
        let before = self.records.len();
        self.records.retain(|r| r.round >= keep_from);
        before - self.records.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn park_and_inspect() {
        let mut q = Quarantine::new();
        assert!(q.is_empty());
        q.park(
            "icu",
            1,
            "garbage".into(),
            QuarantineReason::MalformedRecord,
        );
        q.park(
            "icu",
            1,
            "t=3,,nurse".into(),
            QuarantineReason::EmptyAttribute,
        );
        q.park("lab", 2, "op=7".into(), QuarantineReason::BadEncoding);
        assert_eq!(q.len(), 3);
        assert_eq!(q.for_source("icu"), 2);
        assert_eq!(q.for_source("lab"), 1);
        let hist = q.by_reason();
        assert_eq!(hist.len(), 3);
        assert!(hist.iter().all(|(_, n)| *n == 1));
    }

    #[test]
    fn expiry_keeps_recent_rounds() {
        let mut q = Quarantine::new();
        q.park("a", 1, "x".into(), QuarantineReason::MalformedRecord);
        q.park("a", 5, "y".into(), QuarantineReason::MalformedRecord);
        assert_eq!(q.expire_before(3), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.records()[0].round, 5);
    }

    #[test]
    fn reason_codes_render_stably() {
        assert_eq!(
            QuarantineReason::MalformedRecord.to_string(),
            "malformed-record"
        );
        assert_eq!(
            QuarantineReason::EmptyAttribute.to_string(),
            "empty-attribute"
        );
        assert_eq!(QuarantineReason::BadEncoding.to_string(), "bad-encoding");
    }
}
