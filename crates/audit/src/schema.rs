//! The relational layout of the audit trail.

use prima_store::{Column, DataType, Schema};

/// Column name: entry timestamp.
pub const COL_TIME: &str = "time";
/// Column name: allow/disallow bit.
pub const COL_OP: &str = "op";
/// Column name: requesting entity.
pub const COL_USER: &str = "user";
/// Column name: data category.
pub const COL_DATA: &str = "data";
/// Column name: purpose of access.
pub const COL_PURPOSE: &str = "purpose";
/// Column name: authorization category (role).
pub const COL_AUTHORIZED: &str = "authorized";
/// Column name: regular/exception bit.
pub const COL_STATUS: &str = "status";

/// Positional index of [`COL_TIME`].
pub const COL_TIME_IDX: usize = 0;
/// Positional index of [`COL_OP`].
pub const COL_OP_IDX: usize = 1;
/// Positional index of [`COL_USER`].
pub const COL_USER_IDX: usize = 2;
/// Positional index of [`COL_DATA`].
pub const COL_DATA_IDX: usize = 3;
/// Positional index of [`COL_PURPOSE`].
pub const COL_PURPOSE_IDX: usize = 4;
/// Positional index of [`COL_AUTHORIZED`].
pub const COL_AUTHORIZED_IDX: usize = 5;
/// Positional index of [`COL_STATUS`].
pub const COL_STATUS_IDX: usize = 6;

/// The paper's audit schema as a `prima-store` [`Schema`]:
/// `{time, op, user, data, purpose, authorized, status}`.
pub fn audit_schema() -> Schema {
    Schema::new(vec![
        Column::required(COL_TIME, DataType::Timestamp),
        Column::required(COL_OP, DataType::Int),
        Column::required(COL_USER, DataType::Str),
        Column::required(COL_DATA, DataType::Str),
        Column::required(COL_PURPOSE, DataType::Str),
        Column::required(COL_AUTHORIZED, DataType::Str),
        Column::required(COL_STATUS, DataType::Int),
    ])
    .expect("static audit schema is well-formed")
}

/// The `(data, purpose, authorized)` attribute subset Algorithm 4 feeds to
/// the data-analysis routine by default.
pub const PATTERN_ATTRIBUTES: [&str; 3] = [COL_DATA, COL_PURPOSE, COL_AUTHORIZED];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schema_matches_paper_layout() {
        let s = audit_schema();
        assert_eq!(s.arity(), 7);
        assert_eq!(
            s.names().collect::<Vec<_>>(),
            vec![
                "time",
                "op",
                "user",
                "data",
                "purpose",
                "authorized",
                "status"
            ]
        );
        assert_eq!(s.index_of(COL_TIME), Some(COL_TIME_IDX));
        assert_eq!(s.index_of(COL_STATUS), Some(COL_STATUS_IDX));
    }

    #[test]
    fn pattern_attributes_exist_in_schema() {
        let s = audit_schema();
        for a in PATTERN_ATTRIBUTES {
            assert!(s.index_of(a).is_some(), "{a} must be an audit column");
        }
    }
}
