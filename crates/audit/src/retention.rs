//! Training windows and retention.
//!
//! Section 4.3: "we assume that there is a training period, where a
//! reasonable amount of information is collected in the audit log. This
//! training period is totally dependent on the particular healthcare
//! entity deploying the system." Refinement therefore runs over a *window*
//! of the trail, and old epochs are compacted away rather than deleted
//! in place (stores are append-only by design).

use crate::entry::AuditEntry;
use crate::store::AuditStore;
use std::collections::BTreeMap;

/// A half-open time window `[start, end)` over audit timestamps.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrainingWindow {
    /// Inclusive start.
    pub start: i64,
    /// Exclusive end.
    pub end: i64,
}

impl TrainingWindow {
    /// Creates a window; `start` must not exceed `end`.
    pub fn new(start: i64, end: i64) -> Self {
        assert!(start <= end, "window start must not exceed end");
        Self { start, end }
    }

    /// The trailing window of length `duration` ending at `now`
    /// (exclusive).
    pub fn trailing(now: i64, duration: i64) -> Self {
        Self::new(now.saturating_sub(duration), now)
    }

    /// Window length.
    pub fn duration(&self) -> i64 {
        self.end - self.start
    }

    /// True iff `time` falls inside the window.
    pub fn contains(&self, time: i64) -> bool {
        time >= self.start && time < self.end
    }
}

/// The entries of `store` falling inside `window`, in append order.
pub fn entries_in_window(store: &AuditStore, window: TrainingWindow) -> Vec<AuditEntry> {
    store
        .entries()
        .into_iter()
        .filter(|e| window.contains(e.time))
        .collect()
}

/// Builds a compacted replacement store holding only entries with
/// `time >= keep_after`. Returns the new store and how many entries were
/// compacted away.
pub fn compact(store: &AuditStore, keep_after: i64) -> (AuditStore, usize) {
    let kept: Vec<AuditEntry> = store
        .entries()
        .into_iter()
        .filter(|e| e.time >= keep_after)
        .collect();
    let dropped = store.len() - kept.len();
    let fresh = AuditStore::new(store.name());
    fresh
        .append_all(&kept)
        .expect("entries from a valid store re-validate");
    (fresh, dropped)
}

/// Partitions a store's entries into fixed-length epochs
/// (`epoch = time / epoch_secs`), preserving order within each epoch.
/// Useful for per-period coverage series and staged retention.
pub fn partition_by_epoch(store: &AuditStore, epoch_secs: i64) -> BTreeMap<i64, Vec<AuditEntry>> {
    assert!(epoch_secs > 0, "epoch length must be positive");
    let mut out: BTreeMap<i64, Vec<AuditEntry>> = BTreeMap::new();
    for e in store.entries() {
        out.entry(e.time.div_euclid(epoch_secs))
            .or_default()
            .push(e);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> AuditStore {
        let s = AuditStore::new("main");
        for t in [1i64, 5, 10, 15, 20, 99] {
            s.append(&AuditEntry::regular(t, "u", "d", "p", "a"))
                .unwrap();
        }
        s
    }

    #[test]
    fn window_contains_half_open() {
        let w = TrainingWindow::new(5, 20);
        assert!(w.contains(5));
        assert!(w.contains(19));
        assert!(!w.contains(20));
        assert!(!w.contains(4));
        assert_eq!(w.duration(), 15);
    }

    #[test]
    fn trailing_window_extends_before_epoch() {
        // Timestamps are an arbitrary epoch; a window reaching before it is
        // fine (it just matches nothing there). Saturation only guards the
        // i64 extremes.
        let w = TrainingWindow::trailing(10, 100);
        assert_eq!(w.start, -90);
        assert_eq!(w.end, 10);
        let extreme = TrainingWindow::trailing(i64::MIN + 5, 100);
        assert_eq!(extreme.start, i64::MIN);
    }

    #[test]
    #[should_panic(expected = "window start")]
    fn inverted_window_panics() {
        TrainingWindow::new(10, 5);
    }

    #[test]
    fn entries_in_window_filters() {
        let s = store();
        let w = TrainingWindow::new(5, 20);
        let inside = entries_in_window(&s, w);
        assert_eq!(
            inside.iter().map(|e| e.time).collect::<Vec<_>>(),
            vec![5, 10, 15]
        );
    }

    #[test]
    fn compact_drops_old_entries() {
        let s = store();
        let (fresh, dropped) = compact(&s, 10);
        assert_eq!(dropped, 2);
        assert_eq!(fresh.len(), 4);
        assert_eq!(fresh.name(), "main");
        assert!(fresh.entries().iter().all(|e| e.time >= 10));
        // Original untouched (append-only semantics).
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn partition_by_epoch_groups() {
        let s = store();
        let parts = partition_by_epoch(&s, 10);
        assert_eq!(parts.len(), 4); // epochs 0, 1, 2, 9
        assert_eq!(parts[&0].len(), 2); // t=1, t=5
        assert_eq!(parts[&1].len(), 2); // t=10, t=15
        assert_eq!(parts[&2].len(), 1); // t=20
        assert_eq!(parts[&9].len(), 1); // t=99
    }

    #[test]
    #[should_panic(expected = "epoch length")]
    fn zero_epoch_panics() {
        partition_by_epoch(&store(), 0);
    }
}
