//! The log-source abstraction the resilient federation fetches from.
//!
//! The paper's Audit Management component federates per-site trails that
//! live behind real transports (DB2 Information Integrator in the first
//! instantiation). [`LogSource`] abstracts that fetch: a site answers
//! with its records, how many it *should* have had, and the latency the
//! response took — or fails outright. [`StoreSource`] adapts an
//! in-process [`AuditStore`]; [`FaultySource`] wraps one behind a
//! deterministic fault script (unavailable, intermittent, slow,
//! truncated tail, corrupt entries) so every failure mode the retry
//! policy, circuit breaker, and quarantine must survive is reproducible
//! in tests.

use crate::entry::AuditEntry;
use crate::quarantine::QuarantineReason;
use crate::store::AuditStore;
use std::fmt;
use std::time::Duration;

/// One record as fetched off the wire: either a parsed entry or
/// something that must be quarantined.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RawRecord {
    /// A well-formed audit entry.
    Entry(AuditEntry),
    /// A record that could not be consolidated.
    Corrupt {
        /// Best-effort rendering for triage.
        raw: String,
        /// Why it cannot be consolidated.
        reason: QuarantineReason,
    },
}

/// A successful fetch from one source.
#[derive(Debug, Clone)]
pub struct FetchResponse {
    /// The records the source returned (possibly a truncated prefix).
    pub records: Vec<RawRecord>,
    /// How many records the source advertises in total. `expected >
    /// records.len()` means the tail was truncated and the difference
    /// counts against completeness.
    pub expected: usize,
    /// Declared latency of this response (see [`crate::RetryPolicy`]
    /// for why latency is declared, not measured).
    pub latency: Duration,
}

/// Why a fetch attempt failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceError {
    /// The site did not answer at all.
    Unavailable {
        /// Source name.
        source: String,
    },
    /// The site answered, but slower than the per-attempt timeout.
    Timeout {
        /// Source name.
        source: String,
        /// The declared latency that blew the budget.
        latency: Duration,
    },
    /// The per-source deadline was exhausted across attempts.
    DeadlineExceeded {
        /// Source name.
        source: String,
        /// Attempts made before giving up.
        attempts: u32,
    },
}

impl fmt::Display for SourceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SourceError::Unavailable { source } => write!(f, "source '{source}' unavailable"),
            SourceError::Timeout { source, latency } => {
                write!(f, "source '{source}' timed out ({latency:?})")
            }
            SourceError::DeadlineExceeded { source, attempts } => {
                write!(
                    f,
                    "source '{source}' deadline exceeded after {attempts} attempts"
                )
            }
        }
    }
}

impl std::error::Error for SourceError {}

/// A fetchable per-site audit trail.
pub trait LogSource: Send + fmt::Debug {
    /// Stable name of the site (provenance + dedup key).
    fn name(&self) -> &str;

    /// One fetch attempt. `&mut self` because real transports carry
    /// connection state and the fault script advances per attempt.
    fn fetch(&mut self) -> Result<FetchResponse, SourceError>;

    /// Manifest hint: how many entries the site's catalog advertises,
    /// when that is knowable without a successful fetch (DB2 II exposes
    /// such metadata). Lets an unreachable site still count against the
    /// federation's completeness bound.
    fn expected_len(&self) -> Option<usize> {
        None
    }
}

/// An always-healthy source backed by an in-process [`AuditStore`].
#[derive(Debug, Clone)]
pub struct StoreSource {
    store: AuditStore,
}

impl StoreSource {
    /// Wraps `store`.
    pub fn new(store: AuditStore) -> Self {
        Self { store }
    }
}

impl LogSource for StoreSource {
    fn name(&self) -> &str {
        self.store.name()
    }

    fn fetch(&mut self) -> Result<FetchResponse, SourceError> {
        let records: Vec<RawRecord> = self
            .store
            .entries()
            .into_iter()
            .map(RawRecord::Entry)
            .collect();
        let expected = records.len();
        Ok(FetchResponse {
            records,
            expected,
            latency: Duration::ZERO,
        })
    }

    fn expected_len(&self) -> Option<usize> {
        Some(self.store.len())
    }
}

/// Deterministic fault script for a [`FaultySource`].
///
/// Faults compose: a source can be intermittent *and* slow *and*
/// truncate its tail. Attempt counting is global across rounds, so a
/// script like `fail_first_attempts(3)` with a 2-attempt retry policy
/// fails the first consolidation round entirely and recovers on the
/// second — exactly the "logs converge as they fill in" shape the
/// iterative-enforcement literature assumes.
#[derive(Debug, Clone, Default)]
pub struct SourceFaults {
    /// First `n` fetch attempts (lifetime of the source) fail
    /// unavailable.
    pub fail_first_attempts: u64,
    /// Every attempt fails unavailable (a down site).
    pub permanently_down: bool,
    /// Declared latency of successful responses.
    pub latency: Duration,
    /// Return only the first `k` entries while advertising the full
    /// count (a truncated tail).
    pub truncate_to: Option<usize>,
    /// Corrupt every `k`-th record (1-based positions `k, 2k, …`).
    pub corrupt_every: Option<usize>,
}

impl SourceFaults {
    /// No faults.
    pub fn none() -> Self {
        Self::default()
    }

    /// Fail the first `n` attempts, then behave.
    pub fn fail_first_attempts(mut self, n: u64) -> Self {
        self.fail_first_attempts = n;
        self
    }

    /// Never answer.
    pub fn permanently_down(mut self) -> Self {
        self.permanently_down = true;
        self
    }

    /// Declare `latency` on every successful response.
    pub fn latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Truncate responses to the first `k` entries.
    pub fn truncate_to(mut self, k: usize) -> Self {
        self.truncate_to = Some(k);
        self
    }

    /// Corrupt every `k`-th record (`k ≥ 1`).
    pub fn corrupt_every(mut self, k: usize) -> Self {
        self.corrupt_every = Some(k.max(1));
        self
    }
}

/// A fault-injectable source: an [`AuditStore`] behind a
/// [`SourceFaults`] script.
#[derive(Debug)]
pub struct FaultySource {
    store: AuditStore,
    faults: SourceFaults,
    attempts: u64,
}

impl FaultySource {
    /// Wraps `store` behind `faults`.
    pub fn new(store: AuditStore, faults: SourceFaults) -> Self {
        Self {
            store,
            faults,
            attempts: 0,
        }
    }

    /// Fetch attempts made so far (for assertions on retry schedules).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }
}

impl LogSource for FaultySource {
    fn name(&self) -> &str {
        self.store.name()
    }

    fn fetch(&mut self) -> Result<FetchResponse, SourceError> {
        self.attempts += 1;
        if self.faults.permanently_down || self.attempts <= self.faults.fail_first_attempts {
            return Err(SourceError::Unavailable {
                source: self.store.name().to_string(),
            });
        }
        let entries = self.store.entries();
        let expected = entries.len();
        let kept = match self.faults.truncate_to {
            Some(k) => k.min(entries.len()),
            None => entries.len(),
        };
        let records = entries
            .into_iter()
            .take(kept)
            .enumerate()
            .map(|(i, e)| match self.faults.corrupt_every {
                Some(k) if (i + 1) % k == 0 => RawRecord::Corrupt {
                    raw: e.to_string(),
                    reason: QuarantineReason::MalformedRecord,
                },
                _ => RawRecord::Entry(e),
            })
            .collect();
        Ok(FetchResponse {
            records,
            expected,
            latency: self.faults.latency,
        })
    }

    fn expected_len(&self) -> Option<usize> {
        Some(self.store.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn site(n: usize) -> AuditStore {
        let s = AuditStore::new("site");
        for i in 0..n {
            s.append(&AuditEntry::regular(
                i as i64,
                "u",
                "referral",
                "treatment",
                "nurse",
            ))
            .unwrap();
        }
        s
    }

    #[test]
    fn store_source_returns_everything() {
        let mut src = StoreSource::new(site(3));
        let r = src.fetch().unwrap();
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.expected, 3);
        assert!(r.records.iter().all(|x| matches!(x, RawRecord::Entry(_))));
    }

    #[test]
    fn intermittent_source_recovers_after_n_attempts() {
        let mut src = FaultySource::new(site(2), SourceFaults::none().fail_first_attempts(2));
        assert!(src.fetch().is_err());
        assert!(src.fetch().is_err());
        let r = src.fetch().unwrap();
        assert_eq!(r.records.len(), 2);
        assert_eq!(src.attempts(), 3);
    }

    #[test]
    fn down_source_never_answers() {
        let mut src = FaultySource::new(site(2), SourceFaults::none().permanently_down());
        for _ in 0..5 {
            assert!(matches!(src.fetch(), Err(SourceError::Unavailable { .. })));
        }
    }

    #[test]
    fn truncated_tail_advertises_full_count() {
        let mut src = FaultySource::new(site(5), SourceFaults::none().truncate_to(3));
        let r = src.fetch().unwrap();
        assert_eq!(r.records.len(), 3);
        assert_eq!(r.expected, 5, "missing tail is visible");
    }

    #[test]
    fn corruption_marks_every_kth_record() {
        let mut src = FaultySource::new(site(6), SourceFaults::none().corrupt_every(3));
        let r = src.fetch().unwrap();
        let corrupt: Vec<usize> = r
            .records
            .iter()
            .enumerate()
            .filter(|(_, x)| matches!(x, RawRecord::Corrupt { .. }))
            .map(|(i, _)| i)
            .collect();
        assert_eq!(corrupt, vec![2, 5]);
    }

    #[test]
    fn faults_compose() {
        let faults = SourceFaults::none()
            .fail_first_attempts(1)
            .latency(Duration::from_millis(10))
            .truncate_to(4)
            .corrupt_every(2);
        let mut src = FaultySource::new(site(6), faults);
        assert!(src.fetch().is_err());
        let r = src.fetch().unwrap();
        assert_eq!(r.records.len(), 4);
        assert_eq!(r.expected, 6);
        assert_eq!(r.latency, Duration::from_millis(10));
        assert_eq!(
            r.records
                .iter()
                .filter(|x| matches!(x, RawRecord::Corrupt { .. }))
                .count(),
            2
        );
    }
}
