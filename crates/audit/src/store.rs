//! The append-only audit store.

use crate::entry::AuditEntry;
use crate::schema::{audit_schema, COL_STATUS};
use parking_lot::RwLock;
use prima_model::{GroundRule, Policy, StoreTag};
use prima_store::predicate::CmpOp;
use prima_store::{Predicate, Row, StoreError, Table, Value};
use std::sync::Arc;

/// A thread-safe, append-only audit trail (one per site/log source).
///
/// HDB Compliance Auditing appends while Policy Refinement reads, so the
/// underlying table sits behind a `parking_lot::RwLock`. Reads hand out
/// snapshots (cloned tables or materialized entry vectors) so analysis runs
/// on a consistent view without holding the lock.
#[derive(Debug, Clone)]
pub struct AuditStore {
    name: String,
    table: Arc<RwLock<Table>>,
}

impl AuditStore {
    /// Creates an empty store; `name` identifies the log source (e.g. a
    /// department system) and becomes the table name.
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            table: Arc::new(RwLock::new(Table::new(name, audit_schema()))),
        }
    }

    /// The log source's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Appends one entry.
    pub fn append(&self, entry: &AuditEntry) -> Result<(), StoreError> {
        self.table.write().insert(entry.to_row()).map(|_| ())
    }

    /// Appends many entries (one lock acquisition).
    pub fn append_all<'a, I: IntoIterator<Item = &'a AuditEntry>>(
        &self,
        entries: I,
    ) -> Result<usize, StoreError> {
        let rows: Vec<Row> = entries.into_iter().map(AuditEntry::to_row).collect();
        self.table.write().insert_all(rows)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.table.read().len()
    }

    /// True iff no entries have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A consistent snapshot of the underlying table (for the query engine).
    pub fn snapshot_table(&self) -> Table {
        self.table.read().clone()
    }

    /// All entries, in append order.
    pub fn entries(&self) -> Vec<AuditEntry> {
        self.table
            .read()
            .scan()
            .map(|r| AuditEntry::from_row(r).expect("audit rows round-trip by construction"))
            .collect()
    }

    /// Entries with `status = exception` — what Algorithm 3 keeps.
    pub fn exception_entries(&self) -> Vec<AuditEntry> {
        let pred = Predicate::Compare {
            column: COL_STATUS.into(),
            op: CmpOp::Eq,
            value: Value::Int(0),
        };
        let table = self.table.read();
        table
            .scan_where(&pred)
            .expect("status column exists in the audit schema")
            .map(|r| AuditEntry::from_row(r).expect("audit rows round-trip by construction"))
            .collect()
    }

    /// The trail as the formal model's audit-log policy `P_AL` — one ground
    /// rule per entry (Section 3.3: "By default, this policy is a ground
    /// policy"). Duplicate accesses produce duplicate rules; the range set
    /// dedups them, while entry-weighted coverage counts them individually.
    pub fn to_policy(&self) -> Policy {
        Policy::from_ground_rules(StoreTag::AuditLog, self.ground_rules())
    }

    /// One `(data, purpose, authorized)` ground rule per entry, in append
    /// order (the multiset view used by entry-weighted coverage).
    pub fn ground_rules(&self) -> Vec<GroundRule> {
        self.table
            .read()
            .scan()
            .map(|r| {
                AuditEntry::from_row(r)
                    .expect("audit rows round-trip by construction")
                    .to_ground_rule()
                    .expect("audit entries carry non-empty attributes")
            })
            .collect()
    }

    /// Approximate storage footprint in bytes (experiment E6 reports
    /// bytes/entry).
    pub fn approx_bytes(&self) -> usize {
        self.table.read().approx_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> AuditStore {
        let s = AuditStore::new("ward-a");
        s.append(&AuditEntry::regular(
            1,
            "tim",
            "referral",
            "treatment",
            "nurse",
        ))
        .unwrap();
        s.append(&AuditEntry::exception(
            2,
            "mark",
            "referral",
            "registration",
            "nurse",
        ))
        .unwrap();
        s.append(&AuditEntry::exception(
            3,
            "mark",
            "referral",
            "registration",
            "nurse",
        ))
        .unwrap();
        s
    }

    #[test]
    fn append_and_read_back() {
        let s = store();
        assert_eq!(s.len(), 3);
        assert!(!s.is_empty());
        let entries = s.entries();
        assert_eq!(entries[0].user, "tim");
        assert_eq!(entries[2].time, 3);
    }

    #[test]
    fn exception_filtering() {
        let s = store();
        let ex = s.exception_entries();
        assert_eq!(ex.len(), 2);
        assert!(ex.iter().all(AuditEntry::is_exception));
    }

    #[test]
    fn policy_keeps_per_entry_rules_but_range_dedups() {
        let s = store();
        let p = s.to_policy();
        assert_eq!(p.cardinality(), 3, "one rule per entry");
        assert_eq!(p.tag(), &StoreTag::AuditLog);
        let rules = s.ground_rules();
        assert_eq!(rules.len(), 3);
        assert_eq!(rules[1], rules[2], "duplicate accesses stay duplicated");
    }

    #[test]
    fn snapshot_is_isolated_from_later_appends() {
        let s = store();
        let snap = s.snapshot_table();
        s.append(&AuditEntry::regular(4, "x", "d", "p", "a"))
            .unwrap();
        assert_eq!(snap.len(), 3);
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn append_all_batches() {
        let s = AuditStore::new("batch");
        let entries: Vec<AuditEntry> = (0..10)
            .map(|i| AuditEntry::regular(i, "u", "d", "p", "a"))
            .collect();
        assert_eq!(s.append_all(&entries).unwrap(), 10);
        assert_eq!(s.len(), 10);
    }

    #[test]
    fn clone_is_a_cheap_shared_handle() {
        // Cloning must share the one table behind the lock, not deep-copy
        // it: the stream engine clones its sink per ingest site, and the
        // federation registers the same store the engine writes to.
        let a = store();
        let b = a.clone();
        assert!(Arc::ptr_eq(&a.table, &b.table));
        b.append(&AuditEntry::regular(9, "zoe", "claim", "billing", "clerk"))
            .unwrap();
        assert_eq!(a.len(), 4, "append via one clone is visible via the other");
    }

    #[test]
    fn handles_move_across_threads() {
        fn assert_share<T: Send + Sync + Clone>() {}
        assert_share::<AuditStore>();

        // A reader thread sees a writer thread's appends through its own
        // clone of the handle (no channel, no explicit synchronization
        // beyond the store itself).
        let s = AuditStore::new("shared");
        let writer = {
            let s = s.clone();
            std::thread::spawn(move || {
                for i in 0..100 {
                    s.append(&AuditEntry::regular(i, "w", "d", "p", "a"))
                        .unwrap();
                }
            })
        };
        let reader = {
            let s = s.clone();
            std::thread::spawn(move || {
                while s.len() < 100 {
                    std::thread::yield_now();
                }
                s.ground_rules().len()
            })
        };
        writer.join().unwrap();
        assert_eq!(reader.join().unwrap(), 100);
    }

    #[test]
    fn concurrent_writers() {
        let s = AuditStore::new("busy");
        let mut handles = Vec::new();
        for w in 0..4 {
            let s = s.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    s.append(&AuditEntry::regular(
                        (w * 1000 + i) as i64,
                        "u",
                        "d",
                        "p",
                        "a",
                    ))
                    .unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.len(), 1000);
    }
}
