//! Retry policy and per-source circuit breaker for federated fetches.
//!
//! Both are deterministic on purpose. Backoff jitter comes from a hash
//! of `(seed, source, attempt)` rather than a wall-clock RNG, and the
//! breaker advances on *consolidation rounds* (a logical clock) rather
//! than on real time — so every chaos test replays bit-for-bit, and the
//! same fault script always produces the same fetch schedule.
//!
//! Time inside a fetch attempt is likewise modeled, not measured: a
//! [`crate::LogSource`] *declares* the latency of each response, and the
//! policy compares that declaration against its per-attempt timeout and
//! overall deadline. A production transport would substitute measured
//! wall-clock durations; nothing else changes.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::time::Duration;

/// Bounded exponential backoff with deterministic jitter, a per-attempt
/// timeout, and an overall deadline.
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Maximum fetch attempts per consolidation round (≥ 1).
    pub max_attempts: u32,
    /// Backoff before attempt `n + 1` starts at `base_backoff · 2ⁿ`…
    pub base_backoff: Duration,
    /// …capped at `max_backoff` before jitter is added.
    pub max_backoff: Duration,
    /// Deterministic jitter: up to half the capped backoff, keyed by
    /// `(jitter_seed, source, attempt)`.
    pub jitter_seed: u64,
    /// An attempt whose declared latency exceeds this is a timeout.
    pub attempt_timeout: Duration,
    /// Total budget (latencies + backoffs) for one source per round.
    pub deadline: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff: Duration::from_millis(50),
            max_backoff: Duration::from_secs(2),
            jitter_seed: 0,
            attempt_timeout: Duration::from_millis(500),
            deadline: Duration::from_secs(5),
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries (one attempt, generous timeouts).
    pub fn no_retries() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default()
        }
    }

    /// Sets the jitter seed (chaos suites sweep this).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.jitter_seed = seed;
        self
    }

    /// The backoff to wait before retrying after failed attempt
    /// `attempt` (0-based): `min(base · 2^attempt, max)` plus
    /// deterministic jitter in `[0, capped/2]`.
    pub fn backoff_before_retry(&self, source: &str, attempt: u32) -> Duration {
        let exp = self
            .base_backoff
            .saturating_mul(1u32.checked_shl(attempt).unwrap_or(u32::MAX));
        let capped = exp.min(self.max_backoff);
        let half = capped.as_nanos() as u64 / 2;
        if half == 0 {
            return capped;
        }
        let mut hasher = DefaultHasher::new();
        self.jitter_seed.hash(&mut hasher);
        source.hash(&mut hasher);
        attempt.hash(&mut hasher);
        let jitter = Duration::from_nanos(hasher.finish() % (half + 1));
        capped + jitter
    }
}

/// Breaker tuning.
#[derive(Debug, Clone, Copy)]
pub struct BreakerConfig {
    /// Consecutive failed rounds before the breaker opens.
    pub failure_threshold: u32,
    /// Rounds the breaker stays open before allowing a half-open probe.
    pub cooldown_rounds: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        Self {
            failure_threshold: 3,
            cooldown_rounds: 2,
        }
    }
}

/// The breaker's observable state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Fetches flow normally; tracks consecutive failures.
    Closed,
    /// Fetches are skipped until the cooldown expires.
    Open,
    /// One probe fetch is allowed; its outcome decides the next state.
    HalfOpen,
}

impl std::fmt::Display for BreakerState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half-open",
        };
        write!(f, "{s}")
    }
}

/// Per-source circuit breaker over a logical round clock.
///
/// `closed → open` after `failure_threshold` consecutive failed rounds;
/// `open → half-open` once `cooldown_rounds` rounds have elapsed;
/// `half-open → closed` on a successful probe, back to `open` on a
/// failed one.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    open_until_round: u64,
}

impl CircuitBreaker {
    /// A closed breaker.
    pub fn new(config: BreakerConfig) -> Self {
        Self {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until_round: 0,
        }
    }

    /// Current state (transitions happen in [`Self::allows`] and the
    /// record calls, never spontaneously).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Whether a fetch may be attempted in `round`. An open breaker
    /// whose cooldown has elapsed transitions to half-open and allows
    /// exactly the probe.
    pub fn allows(&mut self, round: u64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if round >= self.open_until_round {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Records a successful round: half-open probes close the breaker,
    /// and the failure streak resets.
    pub fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
    }

    /// Records a failed round in `round`: a half-open probe reopens
    /// immediately; a closed breaker opens once the streak reaches the
    /// threshold.
    pub fn record_failure(&mut self, round: u64) {
        match self.state {
            BreakerState::HalfOpen => {
                self.state = BreakerState::Open;
                self.open_until_round = round + self.config.cooldown_rounds;
            }
            BreakerState::Closed => {
                self.consecutive_failures += 1;
                if self.consecutive_failures >= self.config.failure_threshold {
                    self.state = BreakerState::Open;
                    self.open_until_round = round + self.config.cooldown_rounds;
                }
            }
            BreakerState::Open => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backoff_grows_is_capped_and_deterministic() {
        let p = RetryPolicy {
            base_backoff: Duration::from_millis(100),
            max_backoff: Duration::from_millis(400),
            ..RetryPolicy::default()
        };
        let b0 = p.backoff_before_retry("icu", 0);
        let b1 = p.backoff_before_retry("icu", 1);
        let b9 = p.backoff_before_retry("icu", 9);
        // Base values 100/200/400 (capped) plus jitter ≤ half the cap.
        assert!(b0 >= Duration::from_millis(100) && b0 <= Duration::from_millis(150));
        assert!(b1 >= Duration::from_millis(200) && b1 <= Duration::from_millis(300));
        assert!(b9 >= Duration::from_millis(400) && b9 <= Duration::from_millis(600));
        // Deterministic: same inputs, same jitter.
        assert_eq!(b0, p.backoff_before_retry("icu", 0));
        // Different sources de-synchronize (jitter differs, overwhelmingly).
        let other = p.backoff_before_retry("billing", 0);
        assert_ne!(b0, other, "distinct sources should not thundering-herd");
    }

    #[test]
    fn huge_attempt_counts_do_not_overflow() {
        let p = RetryPolicy::default();
        let b = p.backoff_before_retry("s", u32::MAX);
        assert!(b <= p.max_backoff + p.max_backoff / 2 + Duration::from_nanos(1));
    }

    #[test]
    fn breaker_walks_closed_open_halfopen_closed() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_rounds: 3,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.allows(1));
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Closed, "one failure is tolerated");
        assert!(b.allows(2));
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Open);
        // Cooling down: rounds 3 and 4 are skipped.
        assert!(!b.allows(3));
        assert!(!b.allows(4));
        // Round 5: half-open probe allowed.
        assert!(b.allows(5));
        assert_eq!(b.state(), BreakerState::HalfOpen);
        b.record_success();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            cooldown_rounds: 2,
        });
        b.record_failure(1);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(b.allows(3));
        b.record_failure(3);
        assert_eq!(b.state(), BreakerState::Open);
        assert!(!b.allows(4));
        assert!(b.allows(5));
    }

    #[test]
    fn success_resets_the_failure_streak() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 2,
            cooldown_rounds: 1,
        });
        b.record_failure(1);
        b.record_success();
        b.record_failure(2);
        assert_eq!(b.state(), BreakerState::Closed, "streak was reset");
    }
}
