//! Fault-tolerant federation: degraded consolidated views with explicit
//! completeness.
//!
//! [`crate::AuditFederation`] assumes every source is an in-process
//! store that is always reachable and well-formed. This module drops
//! that assumption: a [`ResilientFederation`] consolidates
//! [`LogSource`]s through a [`RetryPolicy`] and per-source
//! [`CircuitBreaker`], parks malformed records in a [`Quarantine`]
//! instead of aborting, keeps each source's *last good fetch* as a stale
//! cache when the site is down, and reports a [`FederationHealth`] from
//! which every coverage number over the degraded view gets a
//! [`prima_model::CompletenessBound`].
//!
//! The consolidation loop never blocks the pipeline on a flaky site:
//! a source that exhausts its retry budget simply contributes its stale
//! cache this round and is retried (or circuit-broken) the next.

use crate::entry::AuditEntry;
use crate::federation::FederationError;
use crate::health::{FederationHealth, SourceHealth, SourceStatus};
use crate::obs::FederationObs;
use crate::quarantine::{Quarantine, QuarantineReason};
use crate::retry::{BreakerConfig, CircuitBreaker, RetryPolicy};
use crate::source::{LogSource, RawRecord, SourceError};
use prima_model::{GroundRule, Policy, StoreTag};
use std::time::{Duration, Instant};

/// One registered source plus its degraded-mode state.
#[derive(Debug)]
struct SourceSlot {
    source: Box<dyn LogSource>,
    breaker: CircuitBreaker,
    /// Last good fetch (well-formed entries only); served while the
    /// source is unreachable.
    cache: Vec<AuditEntry>,
    /// Latest advertised entry count (fetch response, or manifest hint
    /// when unreachable).
    expected: usize,
    /// Records quarantined out of the latest successful fetch.
    quarantined: usize,
    status: SourceStatus,
    attempts: u32,
}

/// A consolidated view over fallible [`LogSource`]s.
#[derive(Debug)]
pub struct ResilientFederation {
    slots: Vec<SourceSlot>,
    retry: RetryPolicy,
    breaker_config: BreakerConfig,
    quarantine: Quarantine,
    round: u64,
    obs: FederationObs,
}

impl Default for ResilientFederation {
    fn default() -> Self {
        Self::new(RetryPolicy::default(), BreakerConfig::default())
    }
}

impl ResilientFederation {
    /// An empty federation with the given fault-handling knobs.
    pub fn new(retry: RetryPolicy, breaker_config: BreakerConfig) -> Self {
        Self {
            slots: Vec::new(),
            retry,
            breaker_config,
            quarantine: Quarantine::new(),
            round: 0,
            obs: FederationObs::disabled(),
        }
    }

    /// Routes retry/breaker/quarantine accounting and `federation.sync`
    /// spans into `obs` (see [`crate::obs`] for the metric catalog).
    pub fn with_observability(mut self, obs: FederationObs) -> Self {
        self.obs = obs;
        self
    }

    /// Registers a source. Names are the dedup key: a second source
    /// with the name of an existing one is rejected (same hazard as
    /// [`crate::AuditFederation::register`] — silent double-counted
    /// provenance).
    pub fn attach(&mut self, source: Box<dyn LogSource>) -> Result<(), FederationError> {
        let name = source.name().to_string();
        if self.slots.iter().any(|s| s.source.name() == name) {
            return Err(FederationError::DuplicateSource { name });
        }
        let expected = source.expected_len().unwrap_or(0);
        self.slots.push(SourceSlot {
            source,
            breaker: CircuitBreaker::new(self.breaker_config),
            cache: Vec::new(),
            expected,
            quarantined: 0,
            status: SourceStatus::Unavailable,
            attempts: 0,
        });
        Ok(())
    }

    /// Registered source count.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True iff no source is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Completed consolidation rounds.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// The quarantine table.
    pub fn quarantine(&self) -> &Quarantine {
        &self.quarantine
    }

    /// Runs one consolidation round: every source whose breaker allows
    /// it is fetched under the retry policy; failures fall back to the
    /// stale cache. Returns the round's health report.
    pub fn sync(&mut self) -> FederationHealth {
        let started = Instant::now();
        self.round += 1;
        let round = self.round;
        let mut span = self
            .obs
            .tracer()
            .span("federation.sync")
            .with_field("round", round)
            .with_field("sources", self.slots.len());
        for slot in &mut self.slots {
            let name = slot.source.name().to_string();
            let state_before = slot.breaker.state();
            if !slot.breaker.allows(round) {
                slot.status = SourceStatus::CircuitOpen;
                slot.attempts = 0;
                if let Some(hint) = slot.source.expected_len() {
                    slot.expected = slot.expected.max(hint);
                }
                self.obs.fetch_outcome(&name, "skipped");
                continue;
            }
            let mut fetch_span = self.obs.fetch_span(&name);
            let (result, attempts) = fetch_with_retries(&mut *slot.source, &self.retry, &name);
            fetch_span.field("attempts", attempts);
            slot.attempts = attempts;
            self.obs.retry_attempts(&name, attempts);
            match result {
                Ok(records) => {
                    slot.breaker.record_success();
                    let parked_before = self.quarantine.len();
                    let (entries, quarantined) =
                        consolidate(&mut self.quarantine, &name, round, records.0);
                    for parked in &self.quarantine.records()[parked_before..] {
                        self.obs.quarantined(&name, parked.reason);
                    }
                    slot.expected = records.1;
                    slot.quarantined = quarantined;
                    slot.cache = entries;
                    slot.status = if slot.cache.len() == slot.expected {
                        SourceStatus::Healthy
                    } else {
                        SourceStatus::Degraded
                    };
                    self.obs.fetch_outcome(&name, "ok");
                }
                Err(_) => {
                    slot.breaker.record_failure(round);
                    if let Some(hint) = slot.source.expected_len() {
                        slot.expected = slot.expected.max(hint);
                    }
                    slot.status = SourceStatus::Unavailable;
                    self.obs.fetch_outcome(&name, "error");
                }
            }
            fetch_span.field("status", format!("{:?}", slot.status));
            self.obs
                .breaker_transition(&name, state_before, slot.breaker.state());
        }
        let health = self.health();
        span.field("completeness", health.completeness());
        self.obs.sync_complete(
            started.elapsed(),
            health.completeness(),
            self.quarantine.len(),
        );
        health
    }

    /// The current health report (per-source status, fetched vs.
    /// expected, quarantine counts, breaker states).
    pub fn health(&self) -> FederationHealth {
        FederationHealth {
            round: self.round,
            sources: self
                .slots
                .iter()
                .map(|slot| SourceHealth {
                    name: slot.source.name().to_string(),
                    status: slot.status,
                    fetched: slot.cache.len(),
                    expected: slot.expected.max(slot.cache.len()),
                    quarantined: slot.quarantined,
                    attempts: slot.attempts,
                    breaker: slot.breaker.state(),
                })
                .collect(),
        }
    }

    /// The degraded consolidated view: every source's latest good
    /// entries, merged and sorted by timestamp (stable: ties keep
    /// registration order, matching
    /// [`crate::AuditFederation::consolidated_entries`]).
    pub fn consolidated_entries(&self) -> Vec<AuditEntry> {
        let mut out: Vec<AuditEntry> = self
            .slots
            .iter()
            .flat_map(|s| s.cache.iter().cloned())
            .collect();
        out.sort_by_key(|e| e.time);
        out
    }

    /// One ground rule per consolidated entry, in timestamp order.
    pub fn ground_rules(&self) -> Vec<GroundRule> {
        self.consolidated_entries()
            .iter()
            .map(|e| {
                e.to_ground_rule()
                    .expect("consolidation quarantines unprojectable entries")
            })
            .collect()
    }

    /// The degraded view as the audit-log policy `P_AL`.
    pub fn to_policy(&self) -> Policy {
        Policy::from_ground_rules(StoreTag::AuditLog, self.ground_rules())
    }
}

/// Runs the retry loop for one source in one round. Returns the parsed
/// `(records, expected)` on success and the attempt count either way.
#[allow(clippy::type_complexity)]
fn fetch_with_retries(
    source: &mut dyn LogSource,
    retry: &RetryPolicy,
    name: &str,
) -> (Result<(Vec<RawRecord>, usize), SourceError>, u32) {
    let mut attempts = 0u32;
    let mut spent = Duration::ZERO;
    loop {
        attempts += 1;
        let outcome = match source.fetch() {
            Ok(resp) if resp.latency > retry.attempt_timeout => {
                // The response exists but arrived past the per-attempt
                // budget: we waited out the timeout, then gave up on it.
                spent += retry.attempt_timeout;
                Err(SourceError::Timeout {
                    source: name.to_string(),
                    latency: resp.latency,
                })
            }
            Ok(resp) => {
                spent += resp.latency;
                Ok(resp)
            }
            Err(e) => Err(e),
        };
        match outcome {
            Ok(resp) => return (Ok((resp.records, resp.expected)), attempts),
            Err(err) => {
                if attempts >= retry.max_attempts {
                    return (Err(err), attempts);
                }
                spent += retry.backoff_before_retry(name, attempts - 1);
                if spent > retry.deadline {
                    return (
                        Err(SourceError::DeadlineExceeded {
                            source: name.to_string(),
                            attempts,
                        }),
                        attempts,
                    );
                }
            }
        }
    }
}

/// Splits fetched records into consolidated entries and quarantined
/// ones. Entries that cannot project to a ground rule are quarantined
/// too — downstream coverage and mining assume projectability.
fn consolidate(
    quarantine: &mut Quarantine,
    name: &str,
    round: u64,
    records: Vec<RawRecord>,
) -> (Vec<AuditEntry>, usize) {
    let mut entries = Vec::with_capacity(records.len());
    let mut quarantined = 0usize;
    for record in records {
        match record {
            RawRecord::Entry(e) => {
                if e.to_ground_rule().is_ok() {
                    entries.push(e);
                } else {
                    quarantine.park(name, round, e.to_string(), QuarantineReason::EmptyAttribute);
                    quarantined += 1;
                }
            }
            RawRecord::Corrupt { raw, reason } => {
                quarantine.park(name, round, raw, reason);
                quarantined += 1;
            }
        }
    }
    (entries, quarantined)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::retry::BreakerState;
    use crate::source::{FaultySource, SourceFaults, StoreSource};
    use crate::store::AuditStore;

    fn site(name: &str, times: &[i64]) -> AuditStore {
        let s = AuditStore::new(name);
        for &t in times {
            s.append(&AuditEntry::exception(
                t,
                "u",
                "referral",
                "registration",
                "nurse",
            ))
            .unwrap();
        }
        s
    }

    fn fed() -> ResilientFederation {
        ResilientFederation::new(
            RetryPolicy {
                max_attempts: 2,
                ..RetryPolicy::default()
            },
            BreakerConfig {
                failure_threshold: 2,
                cooldown_rounds: 2,
            },
        )
    }

    #[test]
    fn healthy_sources_consolidate_exactly() {
        let mut f = fed();
        f.attach(Box::new(StoreSource::new(site("icu", &[3, 1]))))
            .unwrap();
        f.attach(Box::new(StoreSource::new(site("lab", &[2]))))
            .unwrap();
        let h = f.sync();
        assert!(h.all_healthy());
        assert_eq!(h.missing_entries(), 0);
        let times: Vec<i64> = f.consolidated_entries().iter().map(|e| e.time).collect();
        assert_eq!(times, vec![1, 2, 3]);
        assert!(h.bound_for(2, 3).is_exact());
    }

    #[test]
    fn duplicate_source_names_are_rejected() {
        let mut f = fed();
        f.attach(Box::new(StoreSource::new(site("icu", &[1]))))
            .unwrap();
        let err = f
            .attach(Box::new(StoreSource::new(site("icu", &[2]))))
            .unwrap_err();
        assert!(matches!(err, FederationError::DuplicateSource { ref name } if name == "icu"));
        assert_eq!(f.len(), 1);
    }

    #[test]
    fn unavailable_source_counts_as_missing_via_manifest_hint() {
        let mut f = fed();
        f.attach(Box::new(StoreSource::new(site("icu", &[1, 2]))))
            .unwrap();
        f.attach(Box::new(FaultySource::new(
            site("ward", &[5, 6, 7]),
            SourceFaults::none().permanently_down(),
        )))
        .unwrap();
        let h = f.sync();
        assert!(!h.all_healthy());
        assert_eq!(h.observed_entries(), 2);
        assert_eq!(h.missing_entries(), 3, "manifest hint counts the dark site");
        assert_eq!(h.source("ward").unwrap().status, SourceStatus::Unavailable);
        assert_eq!(h.source("ward").unwrap().attempts, 2, "retried once");
        // Coverage over the degraded view gets an honest interval.
        let b = h.bound_for(1, 2);
        assert!((b.lower - 0.2).abs() < 1e-12);
        assert!((b.upper - 0.8).abs() < 1e-12);
    }

    #[test]
    fn intermittent_source_converges_across_rounds() {
        let mut f = fed();
        // 2 attempts per round: fails all of round 1, succeeds in round 2.
        f.attach(Box::new(FaultySource::new(
            site("flaky", &[1, 2]),
            SourceFaults::none().fail_first_attempts(3),
        )))
        .unwrap();
        let h1 = f.sync();
        assert_eq!(
            h1.source("flaky").unwrap().status,
            SourceStatus::Unavailable
        );
        assert_eq!(h1.missing_entries(), 2);
        let h2 = f.sync();
        assert_eq!(h2.source("flaky").unwrap().status, SourceStatus::Healthy);
        assert_eq!(h2.missing_entries(), 0);
        assert_eq!(f.consolidated_entries().len(), 2);
    }

    #[test]
    fn stale_cache_serves_while_site_is_down() {
        let store = site("ward", &[1, 2]);
        let mut f = fed();
        f.attach(Box::new(FaultySource::new(
            store.clone(),
            // Healthy on round 1, down from round 2 on: 0 failed
            // attempts first, then fail the next 100.
            SourceFaults::none(),
        )))
        .unwrap();
        f.sync();
        assert_eq!(f.consolidated_entries().len(), 2);
        // The site grows an entry, then goes dark: swap in a down script.
        // (Simplest deterministic way to model "was up, now down".)
        store
            .append(&AuditEntry::regular(
                9,
                "u",
                "referral",
                "treatment",
                "nurse",
            ))
            .unwrap();
        let mut f2 = fed();
        f2.attach(Box::new(FaultySource::new(
            store.clone(),
            SourceFaults::none().permanently_down(),
        )))
        .unwrap();
        let h = f2.sync();
        // Nothing ever fetched here, but the hint still exposes 3 missing.
        assert_eq!(h.missing_entries(), 3);
        assert!(f2.consolidated_entries().is_empty());
    }

    #[test]
    fn slow_source_times_out_and_falls_back() {
        let mut f = ResilientFederation::new(
            RetryPolicy {
                max_attempts: 2,
                attempt_timeout: Duration::from_millis(10),
                ..RetryPolicy::default()
            },
            BreakerConfig::default(),
        );
        f.attach(Box::new(FaultySource::new(
            site("molasses", &[1]),
            SourceFaults::none().latency(Duration::from_millis(50)),
        )))
        .unwrap();
        let h = f.sync();
        assert_eq!(
            h.source("molasses").unwrap().status,
            SourceStatus::Unavailable
        );
        assert_eq!(h.missing_entries(), 1);
    }

    #[test]
    fn breaker_opens_after_repeated_failures_then_probes() {
        let mut f = fed(); // threshold 2, cooldown 2
        f.attach(Box::new(FaultySource::new(
            site("down", &[1]),
            // Down for rounds 1-2 (2 attempts each), back from round 3 —
            // but by then the breaker is open.
            SourceFaults::none().fail_first_attempts(4),
        )))
        .unwrap();
        f.sync();
        let h2 = f.sync();
        assert_eq!(h2.source("down").unwrap().breaker, BreakerState::Open);
        // Round 3: still cooling down, no attempt made.
        let h3 = f.sync();
        assert_eq!(h3.source("down").unwrap().status, SourceStatus::CircuitOpen);
        assert_eq!(h3.source("down").unwrap().attempts, 0);
        // Round 4: half-open probe succeeds and closes the breaker.
        let h4 = f.sync();
        assert_eq!(h4.source("down").unwrap().status, SourceStatus::Healthy);
        assert_eq!(h4.source("down").unwrap().breaker, BreakerState::Closed);
        assert_eq!(f.consolidated_entries().len(), 1);
    }

    #[test]
    fn corrupt_records_are_quarantined_not_fatal() {
        let mut f = fed();
        f.attach(Box::new(FaultySource::new(
            site("noisy", &[1, 2, 3, 4]),
            SourceFaults::none().corrupt_every(2),
        )))
        .unwrap();
        let h = f.sync();
        let s = h.source("noisy").unwrap();
        assert_eq!(s.status, SourceStatus::Degraded);
        assert_eq!(s.fetched, 2);
        assert_eq!(s.expected, 4);
        assert_eq!(s.quarantined, 2);
        assert_eq!(f.quarantine().for_source("noisy"), 2);
        // Quarantined records are excluded from the consolidated view
        // (the coverage denominator) but still count as missing.
        assert_eq!(f.consolidated_entries().len(), 2);
        assert_eq!(f.ground_rules().len(), 2);
        assert_eq!(h.missing_entries(), 2);
    }

    #[test]
    fn unprojectable_entries_are_quarantined_with_reason() {
        let store = AuditStore::new("blank");
        store
            .append(&AuditEntry::regular(1, "u", "", "treatment", "nurse"))
            .unwrap();
        store
            .append(&AuditEntry::regular(
                2,
                "u",
                "referral",
                "treatment",
                "nurse",
            ))
            .unwrap();
        let mut f = fed();
        f.attach(Box::new(StoreSource::new(store))).unwrap();
        let h = f.sync();
        assert_eq!(h.source("blank").unwrap().fetched, 1);
        assert_eq!(h.source("blank").unwrap().quarantined, 1);
        assert_eq!(
            f.quarantine().records()[0].reason,
            QuarantineReason::EmptyAttribute
        );
        assert_eq!(
            f.ground_rules().len(),
            1,
            "coverage denominator excludes it"
        );
    }

    #[test]
    fn instrumented_sync_books_retries_breakers_and_quarantine() {
        let registry = prima_obs::MetricsRegistry::new();
        let tracer = prima_obs::Tracer::new();
        let mut f = fed().with_observability(FederationObs::over(registry.clone(), tracer.clone()));
        f.attach(Box::new(FaultySource::new(
            site("noisy", &[1, 2, 3, 4]),
            SourceFaults::none().corrupt_every(2),
        )))
        .unwrap();
        f.attach(Box::new(FaultySource::new(
            site("down", &[9]),
            SourceFaults::none().permanently_down(),
        )))
        .unwrap();
        // Rounds 1-2: "down" burns 2 attempts each and opens the breaker
        // (threshold 2); round 3 is skipped under cooldown.
        f.sync();
        f.sync();
        let h3 = f.sync();
        assert_eq!(h3.source("down").unwrap().status, SourceStatus::CircuitOpen);

        let count =
            |name: &str, labels: &[(&str, &str)]| registry.counter_with(name, "", labels).get();
        assert_eq!(
            count("prima_audit_retry_attempts_total", &[("source", "noisy")]),
            3,
            "one clean attempt per round"
        );
        assert_eq!(
            count("prima_audit_retry_attempts_total", &[("source", "down")]),
            4,
            "two attempts in each of rounds 1-2, none under cooldown"
        );
        assert_eq!(
            count(
                "prima_audit_fetch_total",
                &[("source", "down"), ("outcome", "error")]
            ),
            2
        );
        assert_eq!(
            count(
                "prima_audit_fetch_total",
                &[("source", "down"), ("outcome", "skipped")]
            ),
            1
        );
        assert_eq!(
            count(
                "prima_audit_breaker_transitions_total",
                &[("source", "down"), ("to", "open")]
            ),
            1
        );
        assert_eq!(
            count(
                "prima_audit_quarantined_total",
                &[("source", "noisy"), ("reason", "malformed-record")]
            ),
            6,
            "2 corrupt records per round, re-fetched each of 3 rounds"
        );
        assert_eq!(count("prima_audit_sync_rounds_total", &[]), 3);
        let latencies = registry.histograms("prima_audit_sync_seconds");
        assert_eq!(latencies.len(), 1);
        assert_eq!(latencies[0].1.count(), 3);

        let spans = tracer.drain();
        let syncs: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "federation.sync")
            .collect();
        let fetches: Vec<_> = spans
            .iter()
            .filter(|s| s.name == "federation.fetch")
            .collect();
        assert_eq!(syncs.len(), 3);
        assert_eq!(
            fetches.len(),
            5,
            "noisy 3x, down 2x (cooldown skips the probe)"
        );
        assert!(
            fetches
                .iter()
                .all(|s| syncs.iter().any(|p| p.id == s.parent)),
            "fetch spans parent to their sync round"
        );
    }

    #[test]
    fn empty_federation_is_well_behaved() {
        let mut f = ResilientFederation::default();
        let h = f.sync();
        assert!(h.all_healthy());
        assert_eq!(h.completeness(), 1.0);
        assert!(f.consolidated_entries().is_empty());
        assert!(f.is_empty());
    }
}
