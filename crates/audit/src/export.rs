//! JSON-lines export/import of audit trails (experiment artifacts and
//! cross-run fixtures).

use crate::entry::AuditEntry;
use crate::store::AuditStore;
use std::io::{self, BufRead, Write};

/// Writes one JSON object per line.
pub fn export_jsonl<W: Write>(entries: &[AuditEntry], mut out: W) -> io::Result<()> {
    for e in entries {
        let line = serde_json::to_string(e).expect("audit entries serialize infallibly");
        writeln!(out, "{line}")?;
    }
    Ok(())
}

/// Reads entries back from JSON lines; blank lines are skipped.
pub fn import_jsonl<R: BufRead>(input: R) -> io::Result<Vec<AuditEntry>> {
    let mut out = Vec::new();
    for (i, line) in input.lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let e: AuditEntry = serde_json::from_str(&line).map_err(|err| {
            io::Error::new(io::ErrorKind::InvalidData, format!("line {}: {err}", i + 1))
        })?;
        out.push(e);
    }
    Ok(out)
}

/// Exports a whole store.
pub fn export_store<W: Write>(store: &AuditStore, out: W) -> io::Result<()> {
    export_jsonl(&store.entries(), out)
}

/// Imports entries into a (usually fresh) store.
pub fn import_into_store<R: BufRead>(input: R, store: &AuditStore) -> io::Result<usize> {
    let entries = import_jsonl(input)?;
    store
        .append_all(&entries)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jsonl_roundtrip() {
        let entries = vec![
            AuditEntry::regular(1, "tim", "referral", "treatment", "nurse"),
            AuditEntry::exception(2, "mark", "referral", "registration", "nurse"),
        ];
        let mut buf = Vec::new();
        export_jsonl(&entries, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert_eq!(text.lines().count(), 2);
        let back = import_jsonl(text.as_bytes()).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn import_skips_blank_lines_and_rejects_garbage() {
        let good = "\n{\"time\":1,\"op\":\"Allow\",\"user\":\"u\",\"data\":\"d\",\"purpose\":\"p\",\"authorized\":\"a\",\"status\":\"Regular\"}\n\n";
        let back = import_jsonl(good.as_bytes()).unwrap();
        assert_eq!(back.len(), 1);
        assert!(import_jsonl("not json\n".as_bytes()).is_err());
    }

    #[test]
    fn store_roundtrip() {
        let s = AuditStore::new("a");
        s.append(&AuditEntry::regular(7, "u", "d", "p", "a"))
            .unwrap();
        let mut buf = Vec::new();
        export_store(&s, &mut buf).unwrap();
        let s2 = AuditStore::new("b");
        let n = import_into_store(buf.as_slice(), &s2).unwrap();
        assert_eq!(n, 1);
        assert_eq!(s2.entries(), s.entries());
    }
}
