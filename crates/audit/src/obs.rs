//! Observability handles for the resilient federation.
//!
//! [`FederationObs`] routes the degraded-mode bookkeeping a
//! [`crate::ResilientFederation`] already does — retry attempts, breaker
//! transitions, quarantine verdicts, consolidation latency — into a
//! shared `prima_obs::MetricsRegistry`, and wraps each sync round in a
//! `federation.sync` span (one `federation.fetch` child per attempted
//! source). Disabled by default: every update is then a single branch.
//!
//! Per-source series are looked up through the registry on each round
//! rather than pre-registered, because sources attach dynamically; sync
//! runs once per consolidation round, so the registry mutex is nowhere
//! near a hot path.
//!
//! Metric catalog (see DESIGN.md for the workspace-wide table):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `prima_audit_sync_rounds_total` | counter | consolidation rounds completed |
//! | `prima_audit_sync_seconds` | histogram | consolidation round latency |
//! | `prima_audit_retry_attempts_total{source}` | counter | fetch attempts, retries included |
//! | `prima_audit_fetch_total{source,outcome}` | counter | fetch outcomes (`ok`/`error`/`skipped`) |
//! | `prima_audit_breaker_transitions_total{source,to}` | counter | breaker state changes |
//! | `prima_audit_quarantined_total{source,reason}` | counter | records parked, by reason |
//! | `prima_audit_completeness` | gauge | latest health report's completeness |
//! | `prima_audit_quarantine_size` | gauge | records currently in quarantine |

use crate::quarantine::QuarantineReason;
use crate::retry::BreakerState;
use prima_obs::{Counter, Gauge, Histogram, MetricsRegistry, SpanGuard, Tracer};

/// Observability sink for one [`crate::ResilientFederation`].
///
/// `Default` is fully disabled; [`FederationObs::over`] binds live
/// handles to a registry and tracer shared with the rest of the
/// pipeline.
#[derive(Debug, Clone, Default)]
pub struct FederationObs {
    registry: MetricsRegistry,
    tracer: Tracer,
    sync_rounds: Counter,
    sync_seconds: Histogram,
    completeness: Gauge,
    quarantine_size: Gauge,
}

impl FederationObs {
    /// No-op handles (the default for uninstrumented federations).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Live handles over a shared registry and tracer.
    pub fn over(registry: MetricsRegistry, tracer: Tracer) -> Self {
        let sync_rounds = registry.counter(
            "prima_audit_sync_rounds_total",
            "Federation consolidation rounds completed.",
        );
        let sync_seconds = registry.histogram(
            "prima_audit_sync_seconds",
            "Consolidation round latency in seconds.",
        );
        let completeness = registry.gauge(
            "prima_audit_completeness",
            "Completeness of the latest degraded consolidated view.",
        );
        let quarantine_size = registry.gauge(
            "prima_audit_quarantine_size",
            "Records currently parked in the quarantine table.",
        );
        Self {
            registry,
            tracer,
            sync_rounds,
            sync_seconds,
            completeness,
            quarantine_size,
        }
    }

    /// True when this sink records anything.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled() || self.tracer.is_enabled()
    }

    /// The tracer (disabled tracers issue free guards).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Opens the per-source fetch span.
    pub(crate) fn fetch_span(&self, source: &str) -> SpanGuard {
        self.tracer
            .span("federation.fetch")
            .with_field("source", source)
    }

    /// Records the attempts one source burned this round.
    pub(crate) fn retry_attempts(&self, source: &str, attempts: u32) {
        self.registry
            .counter_with(
                "prima_audit_retry_attempts_total",
                "Fetch attempts per source, retries included.",
                &[("source", source)],
            )
            .add(u64::from(attempts));
    }

    /// Records a fetch outcome (`ok`, `error`, or `skipped` for a
    /// circuit-open round).
    pub(crate) fn fetch_outcome(&self, source: &str, outcome: &str) {
        self.registry
            .counter_with(
                "prima_audit_fetch_total",
                "Fetch outcomes per source.",
                &[("source", source), ("outcome", outcome)],
            )
            .inc();
    }

    /// Records a breaker state change (no-op when `from == to`).
    pub(crate) fn breaker_transition(&self, source: &str, from: BreakerState, to: BreakerState) {
        if from == to {
            return;
        }
        self.registry
            .counter_with(
                "prima_audit_breaker_transitions_total",
                "Circuit-breaker state transitions per source.",
                &[("source", source), ("to", &to.to_string())],
            )
            .inc();
    }

    /// Records one quarantined record with its reason code.
    pub(crate) fn quarantined(&self, source: &str, reason: QuarantineReason) {
        self.registry
            .counter_with(
                "prima_audit_quarantined_total",
                "Records quarantined instead of consolidated, by reason.",
                &[("source", source), ("reason", &reason.to_string())],
            )
            .inc();
    }

    /// Closes the books on one sync round.
    pub(crate) fn sync_complete(
        &self,
        elapsed: std::time::Duration,
        completeness: f64,
        quarantine_len: usize,
    ) {
        self.sync_rounds.inc();
        self.sync_seconds.observe_duration(elapsed);
        self.completeness.set(completeness);
        self.quarantine_size.set(quarantine_len as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_is_inert() {
        let obs = FederationObs::disabled();
        assert!(!obs.is_enabled());
        obs.retry_attempts("icu", 3);
        obs.fetch_outcome("icu", "ok");
        obs.breaker_transition("icu", BreakerState::Closed, BreakerState::Open);
        obs.quarantined("icu", QuarantineReason::BadEncoding);
        obs.sync_complete(std::time::Duration::from_millis(1), 0.5, 2);
    }

    #[test]
    fn same_state_transition_is_not_counted() {
        let r = MetricsRegistry::new();
        let obs = FederationObs::over(r.clone(), Tracer::disabled());
        obs.breaker_transition("icu", BreakerState::Closed, BreakerState::Closed);
        assert!(r
            .gather()
            .iter()
            .all(|f| f.name != "prima_audit_breaker_transitions_total"));
        obs.breaker_transition("icu", BreakerState::Closed, BreakerState::Open);
        let fams = r.gather();
        let fam = fams
            .iter()
            .find(|f| f.name == "prima_audit_breaker_transitions_total")
            .unwrap();
        assert_eq!(fam.samples.len(), 1);
    }
}
