//! The audit entry type (the paper's Section 4.2 schema).

use crate::schema;
use prima_model::{GroundRule, ModelError, RuleTerm};
use prima_store::{Row, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The `op` attribute: whether the access was allowed by the system.
///
/// Break-the-glass environments typically *allow* the access (possibly after
/// an override) and record `status = exception`; `op = Disallow` entries are
/// requests the system refused outright.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Op {
    /// `X = 0` — the request was refused.
    Disallow,
    /// `X = 1` — the request was served.
    Allow,
}

impl Op {
    /// The paper's 0/1 encoding.
    pub fn as_int(self) -> i64 {
        match self {
            Op::Disallow => 0,
            Op::Allow => 1,
        }
    }

    /// Decodes the paper's 0/1 encoding.
    pub fn from_int(i: i64) -> Option<Self> {
        match i {
            0 => Some(Op::Disallow),
            1 => Some(Op::Allow),
            _ => None,
        }
    }
}

/// The `status` attribute: how the purpose of access was established.
///
/// "The status of access would in practice be recorded at the time the user
/// either chooses or manually enters the purpose of access, where former
/// corresponds to a regular access and latter to an exception-based access."
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AccessStatus {
    /// `s = 0` — exception-based ("break the glass") access.
    Exception,
    /// `s = 1` — regular, policy-sanctioned access.
    Regular,
}

impl AccessStatus {
    /// The paper's 0/1 encoding.
    pub fn as_int(self) -> i64 {
        match self {
            AccessStatus::Exception => 0,
            AccessStatus::Regular => 1,
        }
    }

    /// Decodes the paper's 0/1 encoding.
    pub fn from_int(i: i64) -> Option<Self> {
        match i {
            0 => Some(AccessStatus::Exception),
            1 => Some(AccessStatus::Regular),
            _ => None,
        }
    }
}

/// One audit-trail entry.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AuditEntry {
    /// Timestamp (seconds since the workload epoch).
    pub time: i64,
    /// Whether the access was served.
    pub op: Op,
    /// The entity that requested access.
    pub user: String,
    /// The data category accessed.
    pub data: String,
    /// The purpose of access.
    pub purpose: String,
    /// The authorization category (role) of the requester.
    pub authorized: String,
    /// Regular vs exception-based access.
    pub status: AccessStatus,
}

impl AuditEntry {
    /// A served, regular access.
    pub fn regular(time: i64, user: &str, data: &str, purpose: &str, authorized: &str) -> Self {
        Self {
            time,
            op: Op::Allow,
            user: user.into(),
            data: data.into(),
            purpose: purpose.into(),
            authorized: authorized.into(),
            status: AccessStatus::Regular,
        }
    }

    /// A served, exception-based (break-the-glass) access.
    pub fn exception(time: i64, user: &str, data: &str, purpose: &str, authorized: &str) -> Self {
        Self {
            status: AccessStatus::Exception,
            ..Self::regular(time, user, data, purpose, authorized)
        }
    }

    /// True iff this entry is an exception-based access (what Algorithm 3's
    /// `Filter` keeps).
    pub fn is_exception(&self) -> bool {
        self.status == AccessStatus::Exception
    }

    /// Projects the entry onto the `(data, purpose, authorized)` ground rule
    /// the formal model compares against the policy store. Values are
    /// normalized by `RuleTerm` construction, so `Referral` in a log matches
    /// `referral` in a policy.
    pub fn to_ground_rule(&self) -> Result<GroundRule, ModelError> {
        GroundRule::new(vec![
            RuleTerm::new("data", &self.data)?,
            RuleTerm::new("purpose", &self.purpose)?,
            RuleTerm::new("authorized", &self.authorized)?,
        ])
    }

    /// Converts to the relational row form (column order of
    /// [`schema::audit_schema`]).
    pub fn to_row(&self) -> Row {
        Row::new(vec![
            Value::Timestamp(self.time),
            Value::Int(self.op.as_int()),
            Value::str(&self.user),
            Value::str(&self.data),
            Value::str(&self.purpose),
            Value::str(&self.authorized),
            Value::Int(self.status.as_int()),
        ])
    }

    /// Parses an entry back from its row form. Returns `None` on layout or
    /// encoding mismatch (defensive: rows should only come from audit
    /// tables).
    pub fn from_row(row: &Row) -> Option<Self> {
        if row.len() != 7 {
            return None;
        }
        Some(Self {
            time: row.get(schema::COL_TIME_IDX).as_timestamp()?,
            op: Op::from_int(row.get(schema::COL_OP_IDX).as_int()?)?,
            user: row.get(schema::COL_USER_IDX).as_str()?.to_string(),
            data: row.get(schema::COL_DATA_IDX).as_str()?.to_string(),
            purpose: row.get(schema::COL_PURPOSE_IDX).as_str()?.to_string(),
            authorized: row.get(schema::COL_AUTHORIZED_IDX).as_str()?.to_string(),
            status: AccessStatus::from_int(row.get(schema::COL_STATUS_IDX).as_int()?)?,
        })
    }
}

impl fmt::Display for AuditEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "t{} op={} {} {}:{}:{} status={}",
            self.time,
            self.op.as_int(),
            self.user,
            self.data,
            self.purpose,
            self.authorized,
            self.status.as_int()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry() -> AuditEntry {
        AuditEntry::exception(3, "Mark", "Referral", "Registration", "Nurse")
    }

    #[test]
    fn encodings_match_paper() {
        assert_eq!(Op::Allow.as_int(), 1);
        assert_eq!(Op::Disallow.as_int(), 0);
        assert_eq!(AccessStatus::Regular.as_int(), 1);
        assert_eq!(AccessStatus::Exception.as_int(), 0);
        assert_eq!(Op::from_int(1), Some(Op::Allow));
        assert_eq!(AccessStatus::from_int(0), Some(AccessStatus::Exception));
        assert_eq!(Op::from_int(7), None);
        assert_eq!(AccessStatus::from_int(-1), None);
    }

    #[test]
    fn constructors_and_exception_flag() {
        let e = entry();
        assert!(e.is_exception());
        assert_eq!(e.op, Op::Allow, "break-the-glass accesses are served");
        let r = AuditEntry::regular(1, "Tim", "Referral", "Treatment", "Nurse");
        assert!(!r.is_exception());
    }

    #[test]
    fn ground_rule_projection_normalizes() {
        let g = entry().to_ground_rule().unwrap();
        assert_eq!(
            g.compact(&["data", "purpose", "authorized"]),
            "referral:registration:nurse"
        );
    }

    #[test]
    fn row_roundtrip() {
        let e = entry();
        let row = e.to_row();
        assert_eq!(AuditEntry::from_row(&row), Some(e));
    }

    #[test]
    fn from_row_rejects_malformed() {
        assert_eq!(AuditEntry::from_row(&Row::new(vec![Value::Int(1)])), None);
        let mut row = entry().to_row();
        row.set(schema::COL_OP_IDX, Value::Int(9));
        assert_eq!(AuditEntry::from_row(&row), None);
        let mut row2 = entry().to_row();
        row2.set(schema::COL_USER_IDX, Value::Int(1));
        assert_eq!(AuditEntry::from_row(&row2), None);
    }

    #[test]
    fn display_is_compact() {
        let text = entry().to_string();
        assert!(text.contains("Referral:Registration:Nurse"));
        assert!(text.contains("status=0"));
    }

    #[test]
    fn serde_roundtrip() {
        let e = entry();
        let s = serde_json::to_string(&e).unwrap();
        assert_eq!(serde_json::from_str::<AuditEntry>(&s).unwrap(), e);
    }
}
