//! Chaos suite for the resilience layer, on the same fixed seed matrix
//! as the stream chaos suite (CI's `chaos` job).
//!
//! Each seed synthesizes a multi-site trail, wraps the sites in
//! fault-scripted sources (outages, intermittency, truncated tails,
//! corruption — composed), and drives consolidation rounds. Invariants:
//! the completeness interval derived from [`FederationHealth`] always
//! contains the true coverage computed over the full (fault-free)
//! trail, transient outages converge back to full observation, and the
//! whole run is deterministic — replaying a seed reproduces every
//! health report verbatim. Gated behind the `chaos` feature:
//! `cargo test -p prima-audit --features chaos`.
#![cfg(feature = "chaos")]

use prima_audit::{
    AuditEntry, AuditStore, FaultySource, FederationHealth, ResilientFederation, SourceFaults,
};
use prima_model::samples::figure_3_policy_store;
use prima_model::{CompletenessBound, CoverageEngine, GroundRule};
use prima_vocab::samples::figure_1;

const SEEDS: [u64; 8] = [11, 23, 47, 101, 977, 6151, 52_361, 999_983];

const DATA: &[&str] = &["referral", "prescription", "psychiatry", "address", "claim"];
const PURPOSE: &[&str] = &["treatment", "registration", "billing", "research"];
const AUTH: &[&str] = &["physician", "nurse", "clerk"];

/// Tiny deterministic generator (LCG) so the suite needs no RNG crate
/// features and every seed replays exactly.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn synth_store(name: &str, n: usize, rng: &mut Lcg) -> AuditStore {
    let store = AuditStore::new(name);
    for i in 0..n {
        let d = DATA[(rng.next() as usize) % DATA.len()];
        let p = PURPOSE[(rng.next() as usize) % PURPOSE.len()];
        let a = AUTH[(rng.next() as usize) % AUTH.len()];
        let user = format!("u{}", rng.next() % 6);
        store
            .append(&AuditEntry::regular(i as i64 * 3, &user, d, p, a))
            .unwrap();
    }
    store
}

/// One consolidation round's outcome: the health report plus the
/// completeness bound for the degraded view's coverage at that moment.
struct RoundOutcome {
    health: FederationHealth,
    bound: CompletenessBound,
}

/// Builds the federation for `seed` and runs `rounds` consolidation
/// rounds. Returns the per-round outcomes and the true entry coverage
/// over the complete fault-free trail.
fn run_seed(seed: u64, rounds: usize) -> (Vec<RoundOutcome>, f64) {
    let mut rng = Lcg(seed);
    let site_a = synth_store("site-a", 20 + (seed % 20) as usize, &mut rng);
    let site_b = synth_store("site-b", 15 + (seed % 10) as usize, &mut rng);
    let site_c = synth_store("site-c", 10 + (seed % 5) as usize, &mut rng);

    let vocab = figure_1();
    let policy = figure_3_policy_store();
    let grounds: Vec<GroundRule> = [&site_a, &site_b, &site_c]
        .iter()
        .flat_map(|s| s.ground_rules())
        .collect();
    let truth = CoverageEngine::default()
        .entry_coverage(&policy, &grounds, &vocab)
        .ratio();

    // Composed fault scripts, placed by seed. site-a stays healthy so
    // some slice of the trail is always observable.
    let b_faults = SourceFaults::none()
        .fail_first_attempts(seed % 9)
        .truncate_to(site_b.len().saturating_sub((seed % 4) as usize));
    let c_faults = if seed % 10 < 3 {
        SourceFaults::none().permanently_down()
    } else {
        SourceFaults::none()
            .fail_first_attempts(seed % 5)
            .corrupt_every(2 + (seed % 5) as usize)
    };

    let mut fed = ResilientFederation::default();
    fed.attach(Box::new(FaultySource::new(
        site_a.clone(),
        SourceFaults::none(),
    )))
    .unwrap();
    fed.attach(Box::new(FaultySource::new(site_b.clone(), b_faults)))
        .unwrap();
    fed.attach(Box::new(FaultySource::new(site_c.clone(), c_faults)))
        .unwrap();

    let mut outcomes = Vec::with_capacity(rounds);
    for _ in 0..rounds {
        let health = fed.sync();
        let observed =
            CoverageEngine::default().entry_coverage(&policy, &fed.ground_rules(), &vocab);
        let bound = health.bound_for(observed.covered_entries, observed.total_entries);
        outcomes.push(RoundOutcome { health, bound });
    }
    (outcomes, truth)
}

#[test]
fn completeness_interval_always_contains_the_truth() {
    for seed in SEEDS {
        let (outcomes, truth) = run_seed(seed, 10);
        for o in &outcomes {
            assert!(
                o.bound.contains(truth),
                "seed {seed} round {}: truth {truth} outside [{}, {}]",
                o.health.round,
                o.bound.lower,
                o.bound.upper
            );
        }
    }
}

#[test]
fn transient_outages_converge_and_gaps_stay_accounted() {
    for seed in SEEDS {
        let (outcomes, truth) = run_seed(seed, 12);
        let last = outcomes.last().unwrap();
        assert!(last.bound.contains(truth), "seed {seed}: converged bound");
        // Quarantined records are a labeled subset of the missing gap,
        // never double-counted on top of it.
        assert!(
            last.health.missing_entries() >= last.health.quarantined_entries(),
            "seed {seed}: quarantine exceeded the accounted gap"
        );
        // Observation is monotone once retries clear: the last round
        // sees at least as much as the first.
        assert!(
            last.health.observed_entries() >= outcomes[0].health.observed_entries(),
            "seed {seed}: observation regressed"
        );
    }
}

#[test]
fn purely_transient_faults_recover_to_exact_coverage() {
    // A dedicated scenario with only an intermittent source: once its
    // retries clear, the federation must report all-healthy and the
    // bound must collapse to a point.
    let mut rng = Lcg(7);
    let site = synth_store("site-solo", 25, &mut rng);
    let mut fed = ResilientFederation::default();
    fed.attach(Box::new(FaultySource::new(
        site,
        SourceFaults::none().fail_first_attempts(6),
    )))
    .unwrap();
    let mut health = fed.sync();
    let mut rounds = 1;
    while !health.all_healthy() {
        assert!(rounds < 32, "never converged: {health}");
        health = fed.sync();
        rounds += 1;
    }
    let policy = figure_3_policy_store();
    let vocab = figure_1();
    let observed = CoverageEngine::default().entry_coverage(&policy, &fed.ground_rules(), &vocab);
    let bound = health.bound_for(observed.covered_entries, observed.total_entries);
    assert!(bound.is_exact());
    assert_eq!(fed.consolidated_entries().len(), 25);
}

#[test]
fn replaying_a_seed_reproduces_every_health_report() {
    for seed in SEEDS {
        let (first, truth_a) = run_seed(seed, 8);
        let (second, truth_b) = run_seed(seed, 8);
        assert_eq!(truth_a, truth_b, "seed {seed}: trail synthesis diverged");
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.health, b.health, "seed {seed}: health diverged on replay");
            assert_eq!(a.bound, b.bound, "seed {seed}: bound diverged on replay");
        }
    }
}
