//! Property-based tests for the tree-records layer.

use prima_hier::enforce::TreeAccessMode;
use prima_hier::{Document, PathCategoryMap, TreeEnforcement};
use prima_model::{Policy, Rule, StoreTag};
use prima_vocab::samples::figure_1;
use proptest::prelude::*;

/// Random small patient documents: a root with region subtrees drawn from
/// a fixed repertoire.
fn arb_document() -> impl Strategy<Value = Document> {
    // Each element: (region kind 0..4, leaf count 1..4)
    collection::vec((0..4usize, 1..4usize), 0..6).prop_map(|regions| {
        let mut d = Document::new("patient");
        for (i, (kind, leaves)) in regions.into_iter().enumerate() {
            match kind {
                0 => {
                    let demo = d.add_child(d.root(), &format!("demographic-{i}"));
                    for l in 0..leaves {
                        d.add_text_child(demo, &format!("field-{l}"), "v");
                    }
                }
                1 => {
                    let rec = d.add_child(d.root(), &format!("record-{i}"));
                    for l in 0..leaves {
                        d.add_text_child(rec, &format!("referral-{l}"), "v");
                    }
                }
                2 => {
                    let mh = d.add_child(d.root(), &format!("mental-{i}"));
                    for l in 0..leaves {
                        d.add_text_child(mh, &format!("note-{l}"), "v");
                    }
                }
                _ => {
                    // Structural shell with an unmapped payload leaf.
                    let misc = d.add_child(d.root(), &format!("misc-{i}"));
                    d.add_text_child(misc, "free-text", "scribble");
                }
            }
        }
        d
    })
}

fn category_map() -> PathCategoryMap {
    let mut m = PathCategoryMap::new();
    m.map("/patient/demographic-*/**", "demographic").ok();
    // Wildcards here are single-level names; use explicit star patterns.
    m
}

fn enforcement() -> TreeEnforcement {
    // Map regions by prefix wildcards: demographic-* needs literal names,
    // so register patterns per index range used by the generator.
    let mut m = PathCategoryMap::new();
    for i in 0..6 {
        m.map(&format!("/patient/demographic-{i}/**"), "demographic")
            .unwrap();
        m.map(&format!("/patient/record-{i}/**"), "general-care")
            .unwrap();
        m.map(&format!("/patient/mental-{i}/**"), "psychiatry")
            .unwrap();
    }
    let policy = Policy::with_rules(
        StoreTag::PolicyStore,
        vec![Rule::of(&[
            ("data", "general-care"),
            ("purpose", "treatment"),
            ("authorized", "nurse"),
        ])],
    );
    TreeEnforcement::new(policy, figure_1(), m)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The XML subset round-trips every generated document.
    #[test]
    fn xml_roundtrip(d in arb_document()) {
        let xml = d.to_xml();
        let back = Document::parse_xml(&xml).unwrap();
        prop_assert_eq!(back, d);
    }

    /// Redaction conserves nodes: |view| + redacted = |doc| (the root is
    /// shared, structural shells are preserved).
    #[test]
    fn redaction_conserves_nodes(d in arb_document()) {
        let e = enforcement();
        let out = e.enforce(&d, 1, "tim", "nurse", "treatment", TreeAccessMode::Chosen);
        prop_assert_eq!(out.view.len() + out.redacted_nodes, d.len());
    }

    /// The view never contains psychiatric or demographic payloads for a
    /// nurse treating, and never an unmapped payload.
    #[test]
    fn view_has_no_forbidden_payloads(d in arb_document()) {
        let e = enforcement();
        let out = e.enforce(&d, 1, "tim", "nurse", "treatment", TreeAccessMode::Chosen);
        let xml = out.view.to_xml();
        prop_assert!(!xml.contains("note-"), "psychiatry leaked:\n{xml}");
        prop_assert!(!xml.contains("field-"), "demographics leaked:\n{xml}");
        prop_assert!(!xml.contains("scribble"), "unmapped payload leaked:\n{xml}");
    }

    /// Break-the-glass is the identity on content (no redaction) and
    /// audits only exceptions.
    #[test]
    fn break_the_glass_is_identity(d in arb_document()) {
        let e = enforcement();
        let out = e.enforce(&d, 1, "mark", "nurse", "registration", TreeAccessMode::BreakTheGlass);
        prop_assert_eq!(out.redacted_nodes, 0);
        prop_assert_eq!(out.view.len(), d.len());
        prop_assert!(out.audit_entries.iter().all(|a| a.is_exception()));
    }

    /// Every audit entry's category is either served or redacted, never
    /// both.
    #[test]
    fn audit_categories_partition(d in arb_document()) {
        let e = enforcement();
        let out = e.enforce(&d, 1, "tim", "nurse", "treatment", TreeAccessMode::Chosen);
        for cat in &out.served_categories {
            prop_assert!(!out.redacted_categories.contains(cat));
        }
        prop_assert_eq!(
            out.audit_entries.len(),
            out.served_categories.len() + out.redacted_categories.len()
        );
    }
}

#[test]
fn category_map_smoke() {
    // Keep the helper exercised even though the generator uses explicit
    // per-index patterns.
    let m = category_map();
    assert!(!m.is_empty());
}
