//! # prima-hier — PRIMA over tree-structured records
//!
//! The paper's concluding sentence: "While emerging healthcare
//! organizations leverage relational database systems, legacy systems
//! employ hierarchical, XML-like structures. Thus, the natural evolution
//! for PRIMA is to adapt the core concepts and technology to the
//! tree-based structures." This crate is that adaptation:
//!
//! * [`doc`] — an arena-backed document tree (elements with text leaves),
//!   plus a parser/serializer for a well-formed XML subset, enough to
//!   model legacy clinical documents;
//! * [`path`] — path patterns (`/patient/record/psychiatry`, single-level
//!   `*`, subtree-trailing `**`) for addressing document regions;
//! * [`category`] — the hierarchical analog of the relational column map:
//!   path patterns → privacy-vocabulary data categories (most-specific
//!   match wins);
//! * [`enforce`] — tree-aware Active Enforcement: subtree redaction of
//!   regions whose category the policy does not sanction, break-the-glass
//!   override, and the same seven-attribute audit entries as the
//!   relational middleware — so the *refinement pipeline is unchanged*;
//!   hierarchical systems plug into the identical PRIMA loop.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod category;
pub mod control;
pub mod doc;
pub mod enforce;
pub mod path;

pub use category::PathCategoryMap;
pub use control::{TreeControlCenter, TreeControlError};
pub use doc::{Document, NodeId};
pub use enforce::{RedactionOutcome, TreeEnforcement};
pub use path::PathPattern;
