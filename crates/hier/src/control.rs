//! The tree-world control center: documents + enforcement + auditing in
//! one facade, mirroring the relational `prima-hdb::ControlCenter` so the
//! two middlewares are drop-in peers from PRIMA's point of view.

use crate::category::PathCategoryMap;
use crate::doc::Document;
use crate::enforce::{RedactionOutcome, TreeAccessMode, TreeEnforcement};
use crate::path::PathError;
use prima_audit::AuditStore;
use prima_model::{Policy, Rule, RuleTerm};
use prima_vocab::Vocabulary;
use std::collections::BTreeMap;
use std::fmt;

/// Errors raised by the tree control center.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeControlError {
    /// No document registered under that id.
    UnknownDocument {
        /// The requested id.
        id: String,
    },
    /// A document id was registered twice.
    DuplicateDocument {
        /// The conflicting id.
        id: String,
    },
    /// Path-pattern problem while registering category mappings.
    Path(String),
    /// Invalid rule definition.
    Rule(String),
    /// Audit-store failure.
    Audit(String),
}

impl fmt::Display for TreeControlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TreeControlError::UnknownDocument { id } => write!(f, "unknown document '{id}'"),
            TreeControlError::DuplicateDocument { id } => {
                write!(f, "document '{id}' already registered")
            }
            TreeControlError::Path(m) => write!(f, "path mapping: {m}"),
            TreeControlError::Rule(m) => write!(f, "rule: {m}"),
            TreeControlError::Audit(m) => write!(f, "audit: {m}"),
        }
    }
}

impl std::error::Error for TreeControlError {}

impl From<PathError> for TreeControlError {
    fn from(e: PathError) -> Self {
        TreeControlError::Path(e.to_string())
    }
}

/// A registry of legacy documents behind tree-aware enforcement with
/// compliance auditing.
pub struct TreeControlCenter {
    documents: BTreeMap<String, Document>,
    enforcement: TreeEnforcement,
    categories: PathCategoryMap,
    vocab: Vocabulary,
    audit: AuditStore,
}

impl TreeControlCenter {
    /// Creates a control center with an empty policy and a fresh audit
    /// store named `legacy-audit`.
    pub fn new(vocab: Vocabulary) -> Self {
        let categories = PathCategoryMap::new();
        let enforcement = TreeEnforcement::new(
            Policy::new(prima_model::StoreTag::PolicyStore),
            vocab.clone(),
            categories.clone(),
        );
        Self {
            documents: BTreeMap::new(),
            enforcement,
            categories,
            vocab,
            audit: AuditStore::new("legacy-audit"),
        }
    }

    /// Registers a document under `id`.
    pub fn register_document(&mut self, id: &str, doc: Document) -> Result<(), TreeControlError> {
        if self.documents.contains_key(id) {
            return Err(TreeControlError::DuplicateDocument { id: id.to_string() });
        }
        self.documents.insert(id.to_string(), doc);
        Ok(())
    }

    /// Registered document ids, sorted.
    pub fn document_ids(&self) -> Vec<&str> {
        self.documents.keys().map(String::as_str).collect()
    }

    /// Maps a path pattern to a data category.
    pub fn map_category(&mut self, pattern: &str, category: &str) -> Result<(), TreeControlError> {
        self.categories.map(pattern, category)?;
        self.rebuild_enforcement();
        Ok(())
    }

    /// Defines a `(data, purpose, authorized)` rule; duplicates ignored.
    pub fn define_rule(
        &mut self,
        data: &str,
        purpose: &str,
        authorized: &str,
    ) -> Result<bool, TreeControlError> {
        let rule = Rule::new(vec![
            RuleTerm::new("data", data).map_err(|e| TreeControlError::Rule(e.to_string()))?,
            RuleTerm::new("purpose", purpose).map_err(|e| TreeControlError::Rule(e.to_string()))?,
            RuleTerm::new("authorized", authorized)
                .map_err(|e| TreeControlError::Rule(e.to_string()))?,
        ])
        .map_err(|e| TreeControlError::Rule(e.to_string()))?;
        let mut p = self.enforcement.policy().clone();
        let added = p.push_unique(rule);
        self.enforcement.set_policy(p);
        Ok(added)
    }

    /// Replaces the whole policy (refinement loop).
    pub fn set_policy(&mut self, policy: Policy) {
        self.enforcement.set_policy(policy);
    }

    /// The current policy.
    pub fn policy(&self) -> &Policy {
        self.enforcement.policy()
    }

    /// The audit store the middleware writes to (attach it to a
    /// `PrimaSystem`).
    pub fn audit_store(&self) -> &AuditStore {
        &self.audit
    }

    /// Fetches an enforced view of a document, auditing every category
    /// decision.
    pub fn fetch(
        &self,
        doc_id: &str,
        time: i64,
        user: &str,
        role: &str,
        purpose: &str,
        mode: TreeAccessMode,
    ) -> Result<RedactionOutcome, TreeControlError> {
        let doc = self
            .documents
            .get(doc_id)
            .ok_or_else(|| TreeControlError::UnknownDocument {
                id: doc_id.to_string(),
            })?;
        let outcome = self
            .enforcement
            .enforce(doc, time, user, role, purpose, mode);
        self.audit
            .append_all(&outcome.audit_entries)
            .map_err(|e| TreeControlError::Audit(e.to_string()))?;
        Ok(outcome)
    }

    fn rebuild_enforcement(&mut self) {
        self.enforcement = TreeEnforcement::new(
            self.enforcement.policy().clone(),
            self.vocab.clone(),
            self.categories.clone(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_vocab::samples::figure_1;

    fn record() -> Document {
        Document::parse_xml(
            "<patient><record><referral>cardio</referral>\
             <mental-health><psychiatry>notes</psychiatry></mental-health>\
             </record></patient>",
        )
        .unwrap()
    }

    fn center() -> TreeControlCenter {
        let mut cc = TreeControlCenter::new(figure_1());
        cc.register_document("p1", record()).unwrap();
        cc.map_category("/patient/record/referral", "referral")
            .unwrap();
        cc.map_category("/patient/record/mental-health/**", "psychiatry")
            .unwrap();
        cc.define_rule("general-care", "treatment", "nurse")
            .unwrap();
        cc
    }

    #[test]
    fn fetch_enforces_and_audits() {
        let cc = center();
        let out = cc
            .fetch("p1", 1, "tim", "nurse", "treatment", TreeAccessMode::Chosen)
            .unwrap();
        assert_eq!(out.served_categories, vec!["referral"]);
        assert_eq!(cc.audit_store().len(), out.audit_entries.len());
    }

    #[test]
    fn break_the_glass_audits_exceptions() {
        let cc = center();
        let out = cc
            .fetch(
                "p1",
                2,
                "mark",
                "nurse",
                "registration",
                TreeAccessMode::BreakTheGlass,
            )
            .unwrap();
        assert!(out.redacted_categories.is_empty());
        assert!(cc.audit_store().entries().iter().all(|e| e.is_exception()));
    }

    #[test]
    fn unknown_and_duplicate_documents() {
        let mut cc = center();
        assert!(matches!(
            cc.fetch(
                "ghost",
                1,
                "u",
                "nurse",
                "treatment",
                TreeAccessMode::Chosen
            ),
            Err(TreeControlError::UnknownDocument { .. })
        ));
        assert!(matches!(
            cc.register_document("p1", record()),
            Err(TreeControlError::DuplicateDocument { .. })
        ));
        assert_eq!(cc.document_ids(), vec!["p1"]);
    }

    #[test]
    fn rule_definition_dedups_and_changes_decisions() {
        let mut cc = center();
        assert!(!cc
            .define_rule("general-care", "treatment", "nurse")
            .unwrap());
        assert!(cc
            .define_rule("mental-health", "treatment", "physician")
            .unwrap());
        let out = cc
            .fetch(
                "p1",
                3,
                "dr-a",
                "physician",
                "treatment",
                TreeAccessMode::Chosen,
            )
            .unwrap();
        assert_eq!(out.served_categories, vec!["psychiatry"]);
    }

    #[test]
    fn mapping_after_rules_still_applies() {
        let mut cc = TreeControlCenter::new(figure_1());
        cc.register_document("p1", record()).unwrap();
        cc.define_rule("general-care", "treatment", "nurse")
            .unwrap();
        // Map after defining rules: rebuild must keep the policy.
        cc.map_category("/patient/record/referral", "referral")
            .unwrap();
        let out = cc
            .fetch("p1", 4, "tim", "nurse", "treatment", TreeAccessMode::Chosen)
            .unwrap();
        assert_eq!(out.served_categories, vec!["referral"]);
    }

    #[test]
    fn bad_pattern_is_reported() {
        let mut cc = TreeControlCenter::new(figure_1());
        assert!(matches!(
            cc.map_category("not-absolute", "x"),
            Err(TreeControlError::Path(_))
        ));
    }
}
