//! Tree-aware Active Enforcement: subtree redaction.
//!
//! The relational AE suppresses columns; the hierarchical AE prunes
//! subtrees. A request names a role, a purpose, and an access mode; the
//! enforcement walks the document, resolves each region's data category
//! through the [`PathCategoryMap`], asks the same formal-model question as
//! the relational middleware (`does P_PS sanction (category, purpose,
//! role)?`), and produces a *view* containing only sanctioned regions.
//! Unmapped regions are redacted (fail closed). Break-the-glass returns
//! the full document and audits every touched category as an exception —
//! so hierarchical systems feed the identical refinement loop.

use crate::category::PathCategoryMap;
use crate::doc::{Document, NodeId};
use prima_audit::{AccessStatus, AuditEntry, Op};
use prima_model::{GroundRule, Policy, RuleTerm};
use prima_vocab::Vocabulary;
use std::collections::BTreeSet;

/// The result of enforcing a request over a document.
#[derive(Debug, Clone)]
pub struct RedactionOutcome {
    /// The permitted view (root always present; a fully-denied request
    /// yields a bare root).
    pub view: Document,
    /// Node count redacted away.
    pub redacted_nodes: usize,
    /// Categories served (sorted).
    pub served_categories: Vec<String>,
    /// Categories redacted (sorted; empty under break-the-glass).
    pub redacted_categories: Vec<String>,
    /// Audit entries describing the access.
    pub audit_entries: Vec<AuditEntry>,
}

/// Access mode (mirrors the relational middleware).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeAccessMode {
    /// Purpose chosen from the policy list; unsanctioned regions redacted.
    Chosen,
    /// Break-the-glass: full document, audited as an exception.
    BreakTheGlass,
}

/// Tree-aware Active Enforcement middleware.
#[derive(Debug, Clone)]
pub struct TreeEnforcement {
    policy: Policy,
    vocab: Vocabulary,
    categories: PathCategoryMap,
}

impl TreeEnforcement {
    /// Builds the middleware.
    pub fn new(policy: Policy, vocab: Vocabulary, categories: PathCategoryMap) -> Self {
        Self {
            policy,
            vocab,
            categories,
        }
    }

    /// Replaces the enforced policy (after refinement).
    pub fn set_policy(&mut self, policy: Policy) {
        self.policy = policy;
    }

    /// The enforced policy.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    fn allows(&self, category: &str, purpose: &str, role: &str) -> bool {
        let Ok(probe) = GroundRule::new(vec![
            RuleTerm::new("data", category).unwrap_or_else(|_| RuleTerm::of("data", "invalid")),
            RuleTerm::new("purpose", purpose)
                .unwrap_or_else(|_| RuleTerm::of("purpose", "invalid")),
            RuleTerm::new("authorized", role)
                .unwrap_or_else(|_| RuleTerm::of("authorized", "invalid")),
        ]) else {
            return false;
        };
        self.policy
            .rules()
            .iter()
            .any(|r| r.expansion_contains(&probe, &self.vocab))
    }

    /// Enforces a request over `doc`.
    pub fn enforce(
        &self,
        doc: &Document,
        time: i64,
        user: &str,
        role: &str,
        purpose: &str,
        mode: TreeAccessMode,
    ) -> RedactionOutcome {
        let mut view = Document::new(&doc.node(doc.root()).name);
        if let Some(t) = &doc.node(doc.root()).text {
            // Root text carries no category of its own; treat the root as
            // structural scaffolding (always present, never payload).
            let _ = t;
        }
        let mut served: BTreeSet<String> = BTreeSet::new();
        let mut redacted: BTreeSet<String> = BTreeSet::new();
        let mut redacted_nodes = 0usize;

        let view_root = view.root();
        self.walk(
            doc,
            doc.root(),
            &mut view,
            view_root,
            role,
            purpose,
            mode,
            &mut served,
            &mut redacted,
            &mut redacted_nodes,
        );

        let status = match mode {
            TreeAccessMode::Chosen => AccessStatus::Regular,
            TreeAccessMode::BreakTheGlass => AccessStatus::Exception,
        };
        let mut audit_entries = Vec::new();
        for cat in &served {
            audit_entries.push(AuditEntry {
                time,
                op: Op::Allow,
                user: user.to_string(),
                data: cat.clone(),
                purpose: purpose.to_string(),
                authorized: role.to_string(),
                status,
            });
        }
        for cat in &redacted {
            audit_entries.push(AuditEntry {
                time,
                op: Op::Disallow,
                user: user.to_string(),
                data: cat.clone(),
                purpose: purpose.to_string(),
                authorized: role.to_string(),
                status: AccessStatus::Regular,
            });
        }

        RedactionOutcome {
            view,
            redacted_nodes,
            served_categories: served.into_iter().collect(),
            redacted_categories: redacted.into_iter().collect(),
            audit_entries,
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn walk(
        &self,
        doc: &Document,
        node: NodeId,
        view: &mut Document,
        view_parent: NodeId,
        role: &str,
        purpose: &str,
        mode: TreeAccessMode,
        served: &mut BTreeSet<String>,
        redacted: &mut BTreeSet<String>,
        redacted_nodes: &mut usize,
    ) {
        for &child in &doc.node(node).children {
            let path = doc.segments_of(child);
            match self.categories.category_of(&path) {
                Some(cat) => {
                    let allowed =
                        mode == TreeAccessMode::BreakTheGlass || self.allows(cat, purpose, role);
                    if allowed {
                        served.insert(cat.to_string());
                        doc.copy_subtree_into(child, view, view_parent);
                    } else {
                        redacted.insert(cat.to_string());
                        *redacted_nodes += doc.descendants(child).len();
                    }
                }
                None => {
                    if doc.node(child).children.is_empty() && doc.node(child).text.is_some() {
                        // An unmapped *leaf with payload* fails closed.
                        if mode == TreeAccessMode::BreakTheGlass {
                            served.insert(format!("unmapped:{}", doc.path_of(child)));
                            doc.copy_subtree_into(child, view, view_parent);
                        } else {
                            redacted.insert(format!("unmapped:{}", doc.path_of(child)));
                            *redacted_nodes += 1;
                        }
                    } else {
                        // Structural node: keep the shell, recurse.
                        let shell = view.add_child(view_parent, &doc.node(child).name);
                        self.walk(
                            doc,
                            child,
                            view,
                            shell,
                            role,
                            purpose,
                            mode,
                            served,
                            redacted,
                            redacted_nodes,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_model::{Rule, StoreTag};
    use prima_vocab::samples::figure_1;

    fn doc() -> Document {
        let mut d = Document::new("patient");
        let demo = d.add_child(d.root(), "demographic");
        d.add_text_child(demo, "name", "Ada Pine");
        d.add_text_child(demo, "address", "12 Oak St");
        let rec = d.add_child(d.root(), "record");
        d.add_text_child(rec, "referral", "cardiology");
        let mh = d.add_child(rec, "mental-health");
        d.add_text_child(mh, "psychiatry", "session notes");
        d
    }

    fn categories() -> PathCategoryMap {
        let mut m = PathCategoryMap::new();
        m.map("/patient/demographic/**", "demographic").unwrap();
        m.map("/patient/record/referral", "referral").unwrap();
        m.map("/patient/record/mental-health/**", "psychiatry")
            .unwrap();
        m
    }

    fn enforcement() -> TreeEnforcement {
        let policy = Policy::with_rules(
            StoreTag::PolicyStore,
            vec![Rule::of(&[
                ("data", "general-care"),
                ("purpose", "treatment"),
                ("authorized", "nurse"),
            ])],
        );
        TreeEnforcement::new(policy, figure_1(), categories())
    }

    #[test]
    fn sanctioned_regions_survive_unsanctioned_are_pruned() {
        let e = enforcement();
        let out = e.enforce(
            &doc(),
            1,
            "tim",
            "nurse",
            "treatment",
            TreeAccessMode::Chosen,
        );
        let xml = out.view.to_xml();
        assert!(xml.contains("<referral>cardiology</referral>"));
        assert!(
            !xml.contains("psychiatry"),
            "mental health redacted:\n{xml}"
        );
        assert!(!xml.contains("Ada Pine"), "demographics redacted");
        assert_eq!(out.served_categories, vec!["referral"]);
        assert_eq!(out.redacted_categories, vec!["demographic", "psychiatry"]);
        assert!(out.redacted_nodes >= 5);
    }

    #[test]
    fn audit_entries_mirror_relational_middleware() {
        let e = enforcement();
        let out = e.enforce(
            &doc(),
            9,
            "tim",
            "nurse",
            "treatment",
            TreeAccessMode::Chosen,
        );
        assert_eq!(out.audit_entries.len(), 3);
        let allow: Vec<&AuditEntry> = out
            .audit_entries
            .iter()
            .filter(|a| a.op == Op::Allow)
            .collect();
        assert_eq!(allow.len(), 1);
        assert_eq!(allow[0].data, "referral");
        assert_eq!(allow[0].status, AccessStatus::Regular);
    }

    #[test]
    fn break_the_glass_serves_everything_as_exception() {
        let e = enforcement();
        let out = e.enforce(
            &doc(),
            2,
            "mark",
            "nurse",
            "registration",
            TreeAccessMode::BreakTheGlass,
        );
        assert_eq!(out.redacted_nodes, 0);
        assert!(out.view.to_xml().contains("session notes"));
        assert!(out
            .audit_entries
            .iter()
            .all(|a| a.op == Op::Allow && a.status == AccessStatus::Exception));
    }

    #[test]
    fn unmapped_payload_leaves_fail_closed() {
        let mut d = doc();
        let rec = d
            .descendants(d.root())
            .into_iter()
            .find(|&id| d.node(id).name == "record")
            .unwrap();
        d.add_text_child(rec, "free-text-note", "sensitive scribble");
        let e = enforcement();
        let out = e.enforce(&d, 3, "tim", "nurse", "treatment", TreeAccessMode::Chosen);
        assert!(!out.view.to_xml().contains("scribble"));
        assert!(out
            .redacted_categories
            .iter()
            .any(|c| c.starts_with("unmapped:")));
    }

    #[test]
    fn refined_policy_unredacts() {
        let mut e = enforcement();
        let before = e.enforce(
            &doc(),
            4,
            "ana",
            "nurse",
            "registration",
            TreeAccessMode::Chosen,
        );
        assert!(before.served_categories.is_empty());
        let mut p = e.policy().clone();
        p.push(Rule::of(&[
            ("data", "referral"),
            ("purpose", "registration"),
            ("authorized", "nurse"),
        ]));
        e.set_policy(p);
        let after = e.enforce(
            &doc(),
            5,
            "ana",
            "nurse",
            "registration",
            TreeAccessMode::Chosen,
        );
        assert_eq!(after.served_categories, vec!["referral"]);
    }

    #[test]
    fn tree_audit_feeds_the_standard_refinement_pipeline() {
        // Five nurses break the glass on the same document region; the
        // unchanged relational refinement pipeline mines the workflow.
        let e = enforcement();
        let store = prima_audit::AuditStore::new("legacy-system");
        for (t, nurse) in [(1, "a"), (2, "b"), (3, "c"), (4, "a"), (5, "b")] {
            let out = e.enforce(
                &doc(),
                t,
                nurse,
                "nurse",
                "registration",
                TreeAccessMode::BreakTheGlass,
            );
            // Only log the referral region's entries to keep the fixture
            // focused (a real adapter logs everything).
            for entry in out.audit_entries.iter().filter(|a| a.data == "referral") {
                store.append(entry).unwrap();
            }
        }
        let report = prima_refine::refinement(e.policy(), &store.entries(), &figure_1()).unwrap();
        assert_eq!(report.useful_patterns.len(), 1);
        assert_eq!(
            report.useful_patterns[0].compact(&["data", "purpose", "authorized"]),
            "referral:registration:nurse"
        );
    }
}
