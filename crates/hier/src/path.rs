//! Path patterns for addressing document regions.
//!
//! Grammar: `/seg/seg/…` where a segment is an element name, `*` (exactly
//! one element of any name), or a final `**` (the whole subtree below the
//! prefix — including the node at the prefix itself when the prefix
//! matches). Patterns are absolute; matching is against the root-to-node
//! element-name path.

use std::fmt;

/// One pattern segment.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Segment {
    Name(String),
    Wild,
    /// Trailing `**` only.
    Subtree,
}

/// A parsed path pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathPattern {
    segments: Vec<Segment>,
    source: String,
}

/// Pattern parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathError {
    /// Description.
    pub message: String,
}

impl fmt::Display for PathError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "path pattern error: {}", self.message)
    }
}

impl std::error::Error for PathError {}

impl PathPattern {
    /// Parses a pattern like `/patient/record/**`.
    pub fn parse(text: &str) -> Result<Self, PathError> {
        let text = text.trim();
        let Some(rest) = text.strip_prefix('/') else {
            return Err(PathError {
                message: format!("pattern must be absolute (start with '/'): '{text}'"),
            });
        };
        if rest.is_empty() {
            return Err(PathError {
                message: "pattern must have at least one segment".into(),
            });
        }
        let raw: Vec<&str> = rest.split('/').collect();
        let mut segments = Vec::with_capacity(raw.len());
        for (i, seg) in raw.iter().enumerate() {
            let seg = seg.trim();
            if seg.is_empty() {
                return Err(PathError {
                    message: format!("empty segment in '{text}'"),
                });
            }
            match seg {
                "*" => segments.push(Segment::Wild),
                "**" => {
                    if i != raw.len() - 1 {
                        return Err(PathError {
                            message: "'**' is only allowed as the final segment".into(),
                        });
                    }
                    segments.push(Segment::Subtree);
                }
                name => segments.push(Segment::Name(prima_vocab::normalize(name))),
            }
        }
        Ok(Self {
            segments,
            source: text.to_string(),
        })
    }

    /// The original pattern text.
    pub fn source(&self) -> &str {
        &self.source
    }

    /// Specificity for most-specific-wins resolution: named segments count
    /// 3, `*` counts 2, `**` counts 1 — longer, more-named patterns win.
    pub fn specificity(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s {
                Segment::Name(_) => 3,
                Segment::Wild => 2,
                Segment::Subtree => 1,
            })
            .sum()
    }

    /// Does the pattern match a node whose root-to-node element names are
    /// `path`?
    pub fn matches(&self, path: &[&str]) -> bool {
        let has_subtree = matches!(self.segments.last(), Some(Segment::Subtree));
        let fixed = if has_subtree {
            &self.segments[..self.segments.len() - 1]
        } else {
            &self.segments[..]
        };
        if has_subtree {
            // Prefix match: node at or below the fixed prefix.
            if path.len() < fixed.len() {
                return false;
            }
        } else if path.len() != fixed.len() {
            return false;
        }
        for (seg, name) in fixed.iter().zip(path) {
            match seg {
                Segment::Name(n) => {
                    if n != &prima_vocab::normalize(name) {
                        return false;
                    }
                }
                Segment::Wild => {}
                Segment::Subtree => unreachable!("subtree is always last"),
            }
        }
        true
    }
}

impl fmt::Display for PathPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.source)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathPattern {
        PathPattern::parse(s).unwrap()
    }

    #[test]
    fn exact_match() {
        let pat = p("/patient/record/referral");
        assert!(pat.matches(&["patient", "record", "referral"]));
        assert!(!pat.matches(&["patient", "record"]));
        assert!(!pat.matches(&["patient", "record", "referral", "detail"]));
        assert!(!pat.matches(&["patient", "record", "rx"]));
    }

    #[test]
    fn wildcard_matches_one_level() {
        let pat = p("/patient/*/referral");
        assert!(pat.matches(&["patient", "record", "referral"]));
        assert!(pat.matches(&["patient", "archive", "referral"]));
        assert!(!pat.matches(&["patient", "referral"]));
    }

    #[test]
    fn subtree_matches_prefix_and_below() {
        let pat = p("/patient/record/**");
        assert!(
            pat.matches(&["patient", "record"]),
            "the prefix node itself"
        );
        assert!(pat.matches(&["patient", "record", "mental-health", "psychiatry"]));
        assert!(!pat.matches(&["patient", "demographic", "name"]));
    }

    #[test]
    fn normalization_applies() {
        let pat = p("/Patient/Mental Health");
        assert!(pat.matches(&["patient", "mental-health"]));
    }

    #[test]
    fn specificity_orders_patterns() {
        assert!(p("/a/b/c").specificity() > p("/a/*/c").specificity());
        assert!(p("/a/*/c").specificity() > p("/a/**").specificity());
        assert!(p("/a/b/**").specificity() > p("/a/**").specificity());
    }

    #[test]
    fn parse_errors() {
        assert!(PathPattern::parse("relative/path").is_err());
        assert!(PathPattern::parse("/").is_err());
        assert!(PathPattern::parse("/a//b").is_err());
        assert!(PathPattern::parse("/a/**/b").is_err());
    }

    #[test]
    fn display_roundtrips_source() {
        assert_eq!(p("/a/b/**").to_string(), "/a/b/**");
    }
}
