//! Path → data-category mapping: the hierarchical analog of the
//! relational column map.

use crate::path::{PathError, PathPattern};
use prima_vocab::normalize;

/// An ordered set of `(pattern, category)` mappings with
/// most-specific-match-wins resolution.
#[derive(Debug, Clone, Default)]
pub struct PathCategoryMap {
    entries: Vec<(PathPattern, String)>,
}

impl PathCategoryMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Maps a pattern to a category.
    pub fn map(&mut self, pattern: &str, category: &str) -> Result<&mut Self, PathError> {
        let p = PathPattern::parse(pattern)?;
        self.entries.push((p, normalize(category)));
        Ok(self)
    }

    /// Number of mappings.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True iff no mappings are registered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The category of a node whose root-to-node names are `path`, if any
    /// pattern matches. Among matches the most specific pattern wins;
    /// among equal specificity, the *last* registered wins (so later,
    /// site-specific mappings override earlier defaults).
    pub fn category_of(&self, path: &[&str]) -> Option<&str> {
        let mut best: Option<(usize, usize)> = None; // (specificity, index)
        for (i, (pat, _)) in self.entries.iter().enumerate() {
            if pat.matches(path) {
                let spec = pat.specificity();
                if best.is_none_or(|(bs, bi)| spec > bs || (spec == bs && i > bi)) {
                    best = Some((spec, i));
                }
            }
        }
        best.map(|(_, i)| self.entries[i].1.as_str())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map() -> PathCategoryMap {
        let mut m = PathCategoryMap::new();
        m.map("/patient/demographic/**", "demographic").unwrap();
        m.map("/patient/record/**", "general-care").unwrap();
        m.map("/patient/record/mental-health/**", "psychiatry")
            .unwrap();
        m.map("/patient/billing/*", "insurance").unwrap();
        m
    }

    #[test]
    fn most_specific_wins() {
        let m = map();
        assert_eq!(
            m.category_of(&["patient", "record", "referral"]),
            Some("general-care")
        );
        assert_eq!(
            m.category_of(&["patient", "record", "mental-health", "psychiatry"]),
            Some("psychiatry"),
            "deeper pattern overrides the general-care subtree"
        );
        assert_eq!(
            m.category_of(&["patient", "demographic", "address"]),
            Some("demographic")
        );
    }

    #[test]
    fn unmatched_paths_are_none() {
        let m = map();
        assert_eq!(m.category_of(&["patient", "unknown"]), None);
        assert_eq!(m.category_of(&["other-root"]), None);
    }

    #[test]
    fn single_level_wildcard_scope() {
        let m = map();
        assert_eq!(
            m.category_of(&["patient", "billing", "plan"]),
            Some("insurance")
        );
        assert_eq!(
            m.category_of(&["patient", "billing", "plan", "detail"]),
            None,
            "'*' does not cover grandchildren"
        );
    }

    #[test]
    fn later_registration_breaks_ties() {
        let mut m = PathCategoryMap::new();
        m.map("/a/b", "first").unwrap();
        m.map("/a/b", "second").unwrap();
        assert_eq!(m.category_of(&["a", "b"]), Some("second"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn category_is_normalized() {
        let mut m = PathCategoryMap::new();
        m.map("/a/**", "Mental Health").unwrap();
        assert_eq!(m.category_of(&["a", "x"]), Some("mental-health"));
    }
}
