//! Arena-backed document trees with an XML-subset parser/serializer.
//!
//! The subset: elements (`<name> … </name>`), self-closing elements
//! (`<name/>`), text content, and `<!-- comments -->`. No attributes,
//! namespaces, or processing instructions — legacy clinical exports in the
//! paper's sense are element/text hierarchies, and keeping the grammar
//! small keeps redaction semantics obvious.

use std::fmt;

/// Index of a node within its [`Document`] arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    fn index(self) -> usize {
        self.0 as usize
    }
}

/// A node: a named element with optional text and children.
#[derive(Debug, Clone, PartialEq)]
pub struct Node {
    /// Element name.
    pub name: String,
    /// Text content (leaf payload).
    pub text: Option<String>,
    /// Children in document order.
    pub children: Vec<NodeId>,
    /// Parent (None for the root).
    pub parent: Option<NodeId>,
}

/// A document: an arena of nodes with a single root.
#[derive(Debug, Clone, PartialEq)]
pub struct Document {
    nodes: Vec<Node>,
    root: NodeId,
}

impl Document {
    /// Creates a document with a root element.
    pub fn new(root_name: &str) -> Self {
        Self {
            nodes: vec![Node {
                name: root_name.to_string(),
                text: None,
                children: Vec::new(),
                parent: None,
            }],
            root: NodeId(0),
        }
    }

    /// The root node id.
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// Total node count.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True iff the document is just a bare root.
    pub fn is_empty(&self) -> bool {
        self.nodes.len() == 1 && self.nodes[0].children.is_empty()
    }

    /// The node for `id`.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// Appends a child element under `parent`, returning its id.
    pub fn add_child(&mut self, parent: NodeId, name: &str) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        self.nodes.push(Node {
            name: name.to_string(),
            text: None,
            children: Vec::new(),
            parent: Some(parent),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Appends a child element with text content.
    pub fn add_text_child(&mut self, parent: NodeId, name: &str, text: &str) -> NodeId {
        let id = self.add_child(parent, name);
        self.nodes[id.index()].text = Some(text.to_string());
        id
    }

    /// The `/`-separated element-name path from the root to `id`.
    pub fn path_of(&self, id: NodeId) -> String {
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            names.push(self.nodes[c.index()].name.clone());
            cur = self.nodes[c.index()].parent;
        }
        names.reverse();
        format!("/{}", names.join("/"))
    }

    /// The element-name segments from root to `id` (root first).
    pub fn segments_of(&self, id: NodeId) -> Vec<&str> {
        let mut names = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            names.push(self.nodes[c.index()].name.as_str());
            cur = self.nodes[c.index()].parent;
        }
        names.reverse();
        names
    }

    /// Pre-order traversal of node ids.
    pub fn descendants(&self, from: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut stack = vec![from];
        while let Some(id) = stack.pop() {
            out.push(id);
            for &c in self.nodes[id.index()].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Deep-copies the subtree at `from` (in `self`) into `target` under
    /// `target_parent`. Used by redaction to build the permitted view.
    pub fn copy_subtree_into(&self, from: NodeId, target: &mut Document, target_parent: NodeId) {
        let src = self.node(from);
        let new_id = target.add_child(target_parent, &src.name);
        if let Some(t) = &src.text {
            target.nodes[new_id.index()].text = Some(t.clone());
        }
        for &c in &src.children {
            self.copy_subtree_into(c, target, new_id);
        }
    }

    /// Serializes to the XML subset (no declaration, 2-space indent).
    pub fn to_xml(&self) -> String {
        let mut out = String::new();
        self.render(self.root, 0, &mut out);
        out
    }

    fn render(&self, id: NodeId, indent: usize, out: &mut String) {
        let n = self.node(id);
        let pad = "  ".repeat(indent);
        match (&n.text, n.children.is_empty()) {
            (None, true) => {
                out.push_str(&format!("{pad}<{}/>\n", n.name));
            }
            (Some(t), true) => {
                out.push_str(&format!("{pad}<{}>{}</{}>\n", n.name, escape(t), n.name));
            }
            _ => {
                out.push_str(&format!("{pad}<{}>\n", n.name));
                if let Some(t) = &n.text {
                    out.push_str(&format!("{pad}  {}\n", escape(t)));
                }
                for &c in &n.children {
                    self.render(c, indent + 1, out);
                }
                out.push_str(&format!("{pad}</{}>\n", n.name));
            }
        }
    }

    /// Parses the XML subset.
    pub fn parse_xml(input: &str) -> Result<Document, XmlError> {
        Parser {
            input: input.as_bytes(),
            pos: 0,
        }
        .parse_document(input)
    }
}

impl fmt::Display for Document {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.to_xml())
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
}

fn unescape(s: &str) -> String {
    s.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&amp;", "&")
}

/// XML-subset parse error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct XmlError {
    /// Byte offset of the problem.
    pub offset: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for XmlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xml error at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for XmlError {}

struct Parser<'a> {
    input: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn parse_document(&mut self, raw: &str) -> Result<Document, XmlError> {
        self.skip_ws_and_comments()?;
        let (name, self_closing) = self.open_tag(raw)?;
        let mut doc = Document::new(&name);
        let root = doc.root;
        if !self_closing {
            self.parse_children(raw, &mut doc, root, &name)?;
        }
        self.skip_ws_and_comments()?;
        if self.pos != self.input.len() {
            return Err(self.err("trailing content after document element"));
        }
        Ok(doc)
    }

    fn parse_children(
        &mut self,
        raw: &str,
        doc: &mut Document,
        parent: NodeId,
        parent_name: &str,
    ) -> Result<(), XmlError> {
        loop {
            // Text run until '<'.
            let start = self.pos;
            while self.pos < self.input.len() && self.input[self.pos] != b'<' {
                self.pos += 1;
            }
            let text = raw[start..self.pos].trim();
            if !text.is_empty() {
                let existing = &mut doc.nodes[parent.index()].text;
                let merged = match existing.take() {
                    Some(prev) => format!("{prev} {}", unescape(text)),
                    None => unescape(text),
                };
                *existing = Some(merged);
            }
            if self.pos >= self.input.len() {
                return Err(self.err(&format!("unexpected end of input inside <{parent_name}>")));
            }
            // Comment?
            if self.input[self.pos..].starts_with(b"<!--") {
                self.skip_comment()?;
                continue;
            }
            // Closing tag?
            if self.input[self.pos..].starts_with(b"</") {
                self.pos += 2;
                let name = self.name(raw)?;
                self.expect(b'>')?;
                if name != parent_name {
                    return Err(self.err(&format!(
                        "mismatched closing tag </{name}> for <{parent_name}>"
                    )));
                }
                return Ok(());
            }
            // Child element.
            let (name, self_closing) = self.open_tag(raw)?;
            let child = doc.add_child(parent, &name);
            if !self_closing {
                self.parse_children(raw, doc, child, &name)?;
            }
        }
    }

    fn open_tag(&mut self, raw: &str) -> Result<(String, bool), XmlError> {
        self.expect(b'<')?;
        let name = self.name(raw)?;
        if name.is_empty() {
            return Err(self.err("empty element name"));
        }
        self.skip_ws();
        if self.input.get(self.pos) == Some(&b'/') {
            self.pos += 1;
            self.expect(b'>')?;
            return Ok((name, true));
        }
        self.expect(b'>')?;
        Ok((name, false))
    }

    fn name(&mut self, raw: &str) -> Result<String, XmlError> {
        let start = self.pos;
        while self.pos < self.input.len() {
            let b = self.input[self.pos];
            if b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'.' {
                self.pos += 1;
            } else {
                break;
            }
        }
        Ok(raw[start..self.pos].to_string())
    }

    fn expect(&mut self, byte: u8) -> Result<(), XmlError> {
        if self.input.get(self.pos) == Some(&byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", byte as char)))
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.input.len() && self.input[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn skip_comment(&mut self) -> Result<(), XmlError> {
        // self.pos is at "<!--".
        let close = self.input[self.pos..]
            .windows(3)
            .position(|w| w == b"-->")
            .ok_or_else(|| self.err("unterminated comment"))?;
        self.pos += close + 3;
        Ok(())
    }

    fn skip_ws_and_comments(&mut self) -> Result<(), XmlError> {
        loop {
            self.skip_ws();
            if self.input[self.pos..].starts_with(b"<!--") {
                self.skip_comment()?;
            } else {
                return Ok(());
            }
        }
    }

    fn err(&self, message: &str) -> XmlError {
        XmlError {
            offset: self.pos,
            message: message.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Document {
        let mut d = Document::new("patient");
        let demo = d.add_child(d.root(), "demographic");
        d.add_text_child(demo, "name", "Ada Pine");
        d.add_text_child(demo, "address", "12 Oak St");
        let rec = d.add_child(d.root(), "record");
        d.add_text_child(rec, "referral", "cardiology");
        let mh = d.add_child(rec, "mental-health");
        d.add_text_child(mh, "psychiatry", "session notes");
        d
    }

    #[test]
    fn construction_and_paths() {
        let d = sample();
        assert_eq!(d.len(), 8);
        let psych = d
            .descendants(d.root())
            .into_iter()
            .find(|&id| d.node(id).name == "psychiatry")
            .unwrap();
        assert_eq!(d.path_of(psych), "/patient/record/mental-health/psychiatry");
        assert_eq!(
            d.segments_of(psych),
            vec!["patient", "record", "mental-health", "psychiatry"]
        );
    }

    #[test]
    fn descendants_are_preorder() {
        let d = sample();
        let names: Vec<&str> = d
            .descendants(d.root())
            .iter()
            .map(|&id| d.node(id).name.as_str())
            .collect();
        assert_eq!(
            names,
            vec![
                "patient",
                "demographic",
                "name",
                "address",
                "record",
                "referral",
                "mental-health",
                "psychiatry"
            ]
        );
    }

    #[test]
    fn xml_roundtrip() {
        let d = sample();
        let xml = d.to_xml();
        let back = Document::parse_xml(&xml).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn parses_self_closing_comments_and_escapes() {
        let xml = "<root><!-- note --><empty/><msg>a &lt; b &amp; c</msg></root>";
        let d = Document::parse_xml(xml).unwrap();
        assert_eq!(d.len(), 3);
        let msg = d
            .descendants(d.root())
            .into_iter()
            .find(|&id| d.node(id).name == "msg")
            .unwrap();
        assert_eq!(d.node(msg).text.as_deref(), Some("a < b & c"));
        // And the round trip re-escapes.
        let back = Document::parse_xml(&d.to_xml()).unwrap();
        assert_eq!(back, d);
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Document::parse_xml("<a><b></a></b>").is_err());
        assert!(Document::parse_xml("<a>").is_err());
        assert!(Document::parse_xml("<a/>junk").is_err());
        assert!(Document::parse_xml("<>x</>").is_err());
        assert!(Document::parse_xml("<a><!-- unterminated</a>").is_err());
    }

    #[test]
    fn copy_subtree_preserves_structure() {
        let d = sample();
        let rec = d
            .descendants(d.root())
            .into_iter()
            .find(|&id| d.node(id).name == "record")
            .unwrap();
        let mut target = Document::new("view");
        let target_root = target.root();
        d.copy_subtree_into(rec, &mut target, target_root);
        assert_eq!(target.len(), 1 + 4); // view + record subtree
        let psych = target
            .descendants(target.root())
            .into_iter()
            .find(|&id| target.node(id).name == "psychiatry")
            .unwrap();
        assert_eq!(target.node(psych).text.as_deref(), Some("session notes"));
    }

    #[test]
    fn is_empty_only_for_bare_root() {
        assert!(Document::new("x").is_empty());
        assert!(!sample().is_empty());
    }
}
