//! Driving the HDB middleware with simulated clinical staff.
//!
//! `prima-workload` synthesizes audit *entries*; this module synthesizes
//! *requests* and pushes them through the real Active Enforcement +
//! Compliance Auditing stack, so the trail PRIMA refines was produced by
//! the same code path a deployment would use (Figure 4, with no shortcuts).

use prima_hdb::{AccessMode, AccessRequest, ControlCenter, HdbError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One request shape staff issue, with a relative frequency.
#[derive(Debug, Clone)]
pub struct ClinicProfile {
    /// The requester's role (users are synthesized as `role-NN`).
    pub role: String,
    /// Declared purpose.
    pub purpose: String,
    /// Target table.
    pub table: String,
    /// Requested columns.
    pub columns: Vec<String>,
    /// Regular (purpose chosen) or break-the-glass.
    pub mode: AccessMode,
    /// Relative weight among the profiles.
    pub weight: f64,
}

impl ClinicProfile {
    /// A regular-flow profile.
    pub fn regular(role: &str, purpose: &str, table: &str, columns: &[&str], weight: f64) -> Self {
        Self {
            role: role.into(),
            purpose: purpose.into(),
            table: table.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            mode: AccessMode::Chosen,
            weight,
        }
    }

    /// A break-the-glass profile (an informal workflow).
    pub fn break_the_glass(
        role: &str,
        purpose: &str,
        table: &str,
        columns: &[&str],
        weight: f64,
    ) -> Self {
        Self {
            mode: AccessMode::BreakTheGlass,
            ..Self::regular(role, purpose, table, columns, weight)
        }
    }
}

/// What a clinic run did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ClinicReport {
    /// Requests issued.
    pub requests: usize,
    /// Served through the regular flow.
    pub served: usize,
    /// Fully denied by policy.
    pub denied: usize,
    /// Served via break-the-glass.
    pub exceptions: usize,
}

/// Issues `n` requests against the control center, drawing profiles by
/// weight, with `staff_per_role` distinct users per role and timestamps
/// starting at `start_time`. Deterministic for a given seed.
pub fn run_clinic(
    cc: &ControlCenter,
    profiles: &[ClinicProfile],
    n: usize,
    seed: u64,
    staff_per_role: usize,
    start_time: i64,
) -> Result<ClinicReport, HdbError> {
    assert!(!profiles.is_empty(), "at least one profile required");
    let mut rng = StdRng::seed_from_u64(seed);
    let total_weight: f64 = profiles.iter().map(|p| p.weight).sum();
    let mut report = ClinicReport::default();
    let mut time = start_time;

    for _ in 0..n {
        time += rng.gen_range(1..=60);
        // Weighted profile choice.
        let mut pick = rng.gen::<f64>() * total_weight;
        let mut profile = &profiles[0];
        for p in profiles {
            if pick < p.weight {
                profile = p;
                break;
            }
            pick -= p.weight;
            profile = p;
        }
        let user = format!(
            "{}-{:02}",
            profile.role,
            rng.gen_range(0..staff_per_role.max(1))
        );
        let request = AccessRequest {
            user,
            role: profile.role.clone(),
            purpose: profile.purpose.clone(),
            table: profile.table.clone(),
            columns: profile.columns.clone(),
            filter: None,
            mode: profile.mode,
            time,
        };
        report.requests += 1;
        match cc.query(&request) {
            Ok(_) if profile.mode == AccessMode::BreakTheGlass => report.exceptions += 1,
            Ok(_) => report.served += 1,
            Err(HdbError::PolicyDenied { .. }) => report.denied += 1,
            Err(other) => return Err(other),
        }
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{PrimaSystem, ReviewMode};
    use prima_vocab::samples::figure_1;

    fn control_center() -> ControlCenter {
        let mut cc = ControlCenter::new(figure_1(), "patient");
        let (encounters, mappings) = prima_hdb::clinical::generate_encounters(50);
        let maps: Vec<(&str, &str)> = mappings
            .iter()
            .map(|(c, k)| (c.as_str(), k.as_str()))
            .collect();
        cc.register_table(encounters, &maps).unwrap();
        cc.define_rule("general-care", "treatment", "nurse")
            .unwrap();
        cc.define_rule("demographic", "billing", "clerk").unwrap();
        cc
    }

    fn profiles() -> Vec<ClinicProfile> {
        vec![
            ClinicProfile::regular("nurse", "treatment", "encounters", &["referral"], 6.0),
            ClinicProfile::break_the_glass(
                "nurse",
                "registration",
                "encounters",
                &["referral"],
                2.0,
            ),
            // Clerks keep trying something policy denies.
            ClinicProfile::regular("clerk", "billing", "encounters", &["referral"], 1.0),
        ]
    }

    #[test]
    fn clinic_is_deterministic_and_classified() {
        let cc = control_center();
        let a = run_clinic(&cc, &profiles(), 300, 5, 6, 0).unwrap();
        assert_eq!(a.requests, 300);
        assert_eq!(a.served + a.denied + a.exceptions, 300);
        assert!(a.served > a.exceptions);
        assert!(a.denied > 0, "{a:?}");

        let cc2 = control_center();
        let b = run_clinic(&cc2, &profiles(), 300, 5, 6, 0).unwrap();
        assert_eq!(a, b, "same seed, same outcome");
    }

    #[test]
    fn middleware_trail_feeds_prima_end_to_end() {
        let cc = control_center();
        run_clinic(&cc, &profiles(), 400, 9, 6, 0).unwrap();

        // The audit store was written by Compliance Auditing, not by the
        // simulator; PRIMA refines it identically.
        let mut prima = PrimaSystem::new(figure_1(), cc.policy().clone());
        prima
            .attach_store(cc.audit_store().clone())
            .expect("unique source name");
        let record = prima.run_round(ReviewMode::AutoAccept).unwrap();
        assert!(record.practice_entries > 0);
        assert_eq!(record.rules_added, 1);
        let rule = &prima.policy().rules()[prima.policy().cardinality() - 1];
        assert_eq!(rule.value_of("purpose"), Some("registration"));
        assert_eq!(rule.value_of("data"), Some("referral"));
    }

    #[test]
    #[should_panic(expected = "at least one profile")]
    fn empty_profiles_panic() {
        let cc = control_center();
        let _ = run_clinic(&cc, &[], 1, 1, 1, 0);
    }
}
