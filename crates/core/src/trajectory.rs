//! The closed refinement loop (experiment E4 / Figure 2).
//!
//! Each round: simulate a period of clinical operation against the
//! *current* policy, refine, fold accepted rules back in, and re-simulate.
//! A workflow that has become policy no longer needs the exception
//! mechanism — its entries turn regular — so coverage climbs round over
//! round toward the floor set by genuine violations, which must never be
//! absorbed. This is exactly the gap-closing picture of Figure 2, as a
//! measurable series.

use crate::system::{PrimaSystem, ReviewMode};
use prima_audit::AuditStore;
use prima_mining::MiningError;
use prima_workload::sim::{entries as strip_labels, SimConfig, Simulator};
use prima_workload::{PracticeCluster, Scenario};

/// Parameters of a trajectory run.
#[derive(Debug, Clone)]
pub struct TrajectoryConfig {
    /// Refinement rounds to run.
    pub rounds: usize,
    /// Entries simulated per round.
    pub entries_per_round: usize,
    /// Base RNG seed (round `i` uses `seed + i`).
    pub seed: u64,
    /// Share of informal-practice entries while a cluster is uncovered.
    pub informal_share: f64,
    /// Share of violation entries (the coverage floor is
    /// `1 − violation_share`).
    pub violation_share: f64,
    /// Mining threshold `f` as a share of the round's expected *practice*
    /// pool (the exception entries Algorithm 3 keeps), with a floor of 5
    /// (Algorithm 4's default). A fixed `f = 5` on a 20k-entry trail finds
    /// even the rarest cluster in round 1; a pool-relative threshold
    /// reproduces the gradual absorption the paper envisions — dominant
    /// workflows first, rare ones in later rounds once the pool
    /// concentrates on them.
    pub min_frequency_share: f64,
}

impl Default for TrajectoryConfig {
    fn default() -> Self {
        Self {
            rounds: 6,
            entries_per_round: 5_000,
            seed: 7,
            informal_share: 0.20,
            violation_share: 0.02,
            min_frequency_share: 0.05,
        }
    }
}

/// One point of the coverage trajectory.
#[derive(Debug, Clone)]
pub struct TrajectoryPoint {
    /// 1-based round number.
    pub round: usize,
    /// Entry-weighted coverage of this round's trail *before* refinement.
    pub entry_coverage: f64,
    /// Set-based coverage of this round's trail before refinement.
    pub set_coverage: f64,
    /// Informal clusters still uncovered when the round started.
    pub open_clusters: usize,
    /// Rules accepted this round.
    pub rules_added: usize,
    /// Policy cardinality after the round.
    pub policy_cardinality: usize,
}

/// Runs the closed loop on a scenario, returning the per-round series.
pub fn run_trajectory(
    scenario: &Scenario,
    config: &TrajectoryConfig,
) -> Result<Vec<TrajectoryPoint>, MiningError> {
    let mut system = PrimaSystem::new(scenario.vocab.clone(), scenario.policy.clone());
    let mut points = Vec::with_capacity(config.rounds);

    for round in 1..=config.rounds {
        // Clusters already absorbed into policy run through the regular
        // flow now; only the still-uncovered ones break the glass.
        let open: Vec<PracticeCluster> = scenario
            .clusters
            .iter()
            .filter(|c| {
                let g = c.to_ground_rule();
                !system
                    .policy()
                    .rules()
                    .iter()
                    .any(|r| r.expansion_contains(&g, &scenario.vocab))
            })
            .cloned()
            .collect();
        let open_count = open.len();

        let sim = Simulator::new(
            scenario.vocab.clone(),
            system.policy().clone(),
            open.clone(),
        );
        // Each cluster's exception rate is a property of that workflow;
        // absorbing one cluster must not inflate the rest. Scale the
        // round's informal share by the weight still open.
        let total_weight: f64 = scenario.clusters.iter().map(|c| c.weight).sum();
        let open_weight: f64 = open.iter().map(|c| c.weight).sum();
        let informal_share = if total_weight > 0.0 {
            config.informal_share * open_weight / total_weight
        } else {
            0.0
        };
        let sim_config = SimConfig {
            seed: config.seed + round as u64,
            n_entries: config.entries_per_round,
            informal_share,
            violation_share: config.violation_share,
            start_time: (round as i64 - 1) * 1_000_000,
            ..SimConfig::default()
        };
        let trail = sim.generate(&sim_config);

        // Fresh store per round: the round's coverage measures *this
        // period's* practice, which is how Figure 2's x-axis reads.
        let practice_estimate =
            (informal_share + config.violation_share) * config.entries_per_round as f64;
        let f = ((practice_estimate * config.min_frequency_share) as usize).max(5);
        let miner = prima_mining::SqlMiner::new(prima_mining::MinerConfig {
            min_frequency: f,
            ..prima_mining::MinerConfig::default()
        });
        let mut round_system = PrimaSystem::new(scenario.vocab.clone(), system.policy().clone())
            .with_miner(Box::new(miner));
        let store = AuditStore::new(&format!("round-{round}"));
        store
            .append_all(&strip_labels(&trail))
            .expect("simulated entries conform to the audit schema");
        round_system
            .attach_store(store)
            .expect("unique source name");

        let entry_cov = round_system.entry_coverage().ratio();
        let set_cov = round_system
            .coverage()
            .map(|r| r.ratio())
            .unwrap_or(f64::NAN);
        let record = round_system.run_round(ReviewMode::AutoAccept)?;

        points.push(TrajectoryPoint {
            round,
            entry_coverage: entry_cov,
            set_coverage: set_cov,
            open_clusters: open_count,
            rules_added: record.rules_added,
            policy_cardinality: record.policy_cardinality,
        });

        // Carry the refined policy forward.
        system = PrimaSystem::new(scenario.vocab.clone(), round_system.policy().clone());
    }
    Ok(points)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coverage_climbs_and_clusters_close() {
        let scenario = Scenario::community_hospital();
        let config = TrajectoryConfig {
            rounds: 4,
            entries_per_round: 4_000,
            ..TrajectoryConfig::default()
        };
        let points = run_trajectory(&scenario, &config).unwrap();
        assert_eq!(points.len(), 4);

        // Round 1 starts with every cluster open and coverage well below 1.
        assert_eq!(points[0].open_clusters, scenario.clusters.len());
        assert!(points[0].entry_coverage < 0.9);

        // Monotone (within noise): later rounds never lose ground.
        for w in points.windows(2) {
            assert!(
                w[1].entry_coverage >= w[0].entry_coverage - 0.02,
                "coverage must not regress: {points:?}"
            );
            assert!(w[1].open_clusters <= w[0].open_clusters);
        }

        // By the end the frequent clusters are absorbed and coverage sits
        // near the violation floor.
        let last = points.last().unwrap();
        assert!(
            last.entry_coverage > 1.0 - config.violation_share - 0.05,
            "final coverage {last:?}"
        );
        assert!(last.policy_cardinality > scenario.policy.cardinality());
    }

    #[test]
    fn zero_rounds_is_empty() {
        let scenario = Scenario::paper_example();
        let config = TrajectoryConfig {
            rounds: 0,
            ..TrajectoryConfig::default()
        };
        assert!(run_trajectory(&scenario, &config).unwrap().is_empty());
    }
}
