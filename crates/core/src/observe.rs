//! Observability for the refinement loop: metrics and spans around
//! [`crate::PrimaSystem`] rounds.
//!
//! [`SystemObs`] bundles a [`MetricsRegistry`] and a [`Tracer`] with the
//! pre-registered handles a round touches, so the hot path never takes
//! the registry mutex. The default is [`SystemObs::disabled`]: every
//! handle is a no-op and a round pays one branch per would-be update.
//!
//! Metric catalog (all under the `prima_round_*` / `prima_coverage_*`
//! prefix; see DESIGN.md for the full table):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `prima_round_stage_seconds{stage}` | histogram | per-stage wall time (`filter`, `mine`, `prune`, `propose`, `coverage`) |
//! | `prima_rounds_total` | counter | refinement rounds run |
//! | `prima_round_deferred_total` | counter | rounds that refused to mine below the completeness floor |
//! | `prima_round_patterns_useful_total` | counter | patterns surviving Prune |
//! | `prima_round_rules_added_total` | counter | rules folded into the policy |
//! | `prima_coverage_entry_ratio` | gauge | latest entry-weighted coverage |
//! | `prima_coverage_completeness_lower` | gauge | lower bound on true coverage |
//! | `prima_coverage_completeness_upper` | gauge | upper bound on true coverage |

use prima_obs::{
    Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, PipelineReport, SloEngine, SloSpec,
    Tracer,
};

/// The histogram family holding per-stage round timings.
pub const STAGE_METRIC: &str = "prima_round_stage_seconds";

/// Pipeline stages recorded into [`STAGE_METRIC`], in execution order.
pub const STAGES: [&str; 5] = ["filter", "mine", "prune", "propose", "coverage"];

/// The refinement loop's service-level objective: at most this fraction
/// of rounds may run (or defer) with the trail's completeness lower
/// bound under the system's floor — sustained federation blindness is an
/// incident, not noise.
const COMPLETENESS_SLO_OBJECTIVE: f64 = 0.05;

/// Metrics and tracing for one [`crate::PrimaSystem`].
///
/// Cloning shares the underlying registry and tracer, so a clone handed
/// to an exporter reads the same cells the system writes.
#[derive(Debug, Clone)]
pub struct SystemObs {
    registry: MetricsRegistry,
    tracer: Tracer,
    /// Black-box ring the round incidents (gate rejections, deferred
    /// rounds) dump — the tracer's own recorder, so dumps replay the
    /// spans leading up to the incident.
    flight: FlightRecorder,
    /// Multi-window burn rates over the refinement loop's objectives
    /// (`prima_slo_*` gauges; see [`SloEngine`]).
    slo: SloEngine,
    pub(crate) rounds_total: Counter,
    pub(crate) deferred_total: Counter,
    pub(crate) patterns_useful_total: Counter,
    pub(crate) rules_added_total: Counter,
    pub(crate) coverage_ratio: Gauge,
    pub(crate) completeness_lower: Gauge,
    pub(crate) completeness_upper: Gauge,
    /// Stage histograms, indexed like [`STAGES`].
    pub(crate) stages: [Histogram; 5],
}

impl SystemObs {
    /// Live observability over a fresh registry and tracer.
    pub fn enabled() -> Self {
        Self::over(MetricsRegistry::new(), Tracer::new())
    }

    /// Live observability whose tracer feeds `flight` — the round
    /// incidents (gate rejections, deferred rounds) then dump a replay
    /// of the spans leading up to them.
    pub fn flight_enabled(flight: FlightRecorder) -> Self {
        Self::over(MetricsRegistry::new(), Tracer::configured(None, flight))
    }

    /// No-op observability — the default wired into every system.
    pub fn disabled() -> Self {
        Self::over(MetricsRegistry::disabled(), Tracer::disabled())
    }

    /// Observability over an existing registry and tracer, so several
    /// subsystems (stream engine, federation, rounds) can share one set
    /// of books and a single span timeline.
    pub fn over(registry: MetricsRegistry, tracer: Tracer) -> Self {
        let stage = |name: &str| {
            registry.histogram_with(
                STAGE_METRIC,
                "Wall-clock seconds per refinement-round stage.",
                &[("stage", name)],
                &prima_obs::DEFAULT_LATENCY_BUCKETS,
            )
        };
        Self {
            rounds_total: registry.counter("prima_rounds_total", "Refinement rounds run."),
            deferred_total: registry.counter(
                "prima_round_deferred_total",
                "Rounds that refused to mine below the completeness floor.",
            ),
            patterns_useful_total: registry.counter(
                "prima_round_patterns_useful_total",
                "Patterns surviving Prune across all rounds.",
            ),
            rules_added_total: registry.counter(
                "prima_round_rules_added_total",
                "Rules folded into the policy across all rounds.",
            ),
            coverage_ratio: registry.gauge(
                "prima_coverage_entry_ratio",
                "Latest entry-weighted coverage of the policy over the trail.",
            ),
            completeness_lower: registry.gauge(
                "prima_coverage_completeness_lower",
                "Lower bound on the true coverage given unreachable entries.",
            ),
            completeness_upper: registry.gauge(
                "prima_coverage_completeness_upper",
                "Upper bound on the true coverage given unreachable entries.",
            ),
            stages: [
                stage("filter"),
                stage("mine"),
                stage("prune"),
                stage("propose"),
                stage("coverage"),
            ],
            flight: tracer.flight(),
            slo: {
                let slo = if registry.is_enabled() {
                    SloEngine::new(&registry)
                } else {
                    SloEngine::disabled()
                };
                slo.track(SloSpec::new(
                    "coverage_completeness",
                    COMPLETENESS_SLO_OBJECTIVE,
                ));
                slo
            },
            registry,
            tracer,
        }
    }

    /// True when metrics are recorded.
    pub fn is_enabled(&self) -> bool {
        self.registry.is_enabled()
    }

    /// The shared metrics registry (for exporters and further handles).
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// The shared tracer (drain it for the JSONL span log).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// The flight recorder the round incidents dump (disabled unless the
    /// tracer was built over one, e.g. via [`SystemObs::flight_enabled`]).
    pub fn flight(&self) -> &FlightRecorder {
        &self.flight
    }

    /// The refinement loop's SLO engine (burn rates over the
    /// completeness objective).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// Records one incident: a black-box dump named `trigger`, marking
    /// `trace_id`'s spans in the replay (0 when no single trace is to
    /// blame).
    pub(crate) fn incident(&self, trigger: &str, trace_id: u64) {
        self.flight.dump(trigger, trace_id);
    }

    /// Per-stage latency profile of every round so far.
    pub fn pipeline_report(&self) -> PipelineReport {
        PipelineReport::gather(&self.registry, STAGE_METRIC)
    }
}

impl Default for SystemObs {
    fn default() -> Self {
        Self::disabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_obs_records_nothing() {
        let obs = SystemObs::disabled();
        assert!(!obs.is_enabled());
        obs.rounds_total.inc();
        obs.stages[0].observe(0.5);
        assert!(obs.registry().gather().is_empty());
        assert!(obs.pipeline_report().stages.is_empty());
    }

    #[test]
    fn enabled_obs_gathers_stage_profiles() {
        let obs = SystemObs::enabled();
        for (i, _) in STAGES.iter().enumerate() {
            obs.stages[i].observe(0.001 * (i + 1) as f64);
        }
        let report = obs.pipeline_report();
        assert_eq!(report.stages.len(), STAGES.len());
        assert!(report.all_stages_observed());
    }

    #[test]
    fn clones_share_the_books() {
        let obs = SystemObs::enabled();
        let clone = obs.clone();
        obs.rounds_total.inc();
        clone.rounds_total.inc();
        assert_eq!(obs.rounds_total.get(), 2);
    }
}
