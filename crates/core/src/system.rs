//! The long-lived PRIMA system object.

use prima_analyze::SafetyGate;
use prima_audit::{
    AuditEntry, AuditFederation, AuditStore, FederationError, FederationHealth, LogSource,
    NoViolations, ResilientFederation,
};
use prima_mining::{Miner, MiningError, SqlMiner};
use prima_model::{
    CompletenessBound, CoverageEngine, CoverageReport, Diagnostic, EntryCoverageReport, ModelError,
    Policy, Strategy,
};
use prima_refine::{refinement_with, RefinementConfig, ReviewQueue};
use prima_vocab::Vocabulary;

use crate::observe::SystemObs;

/// How refinement candidates are decided.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReviewMode {
    /// Every useful pattern is accepted immediately (closed-loop
    /// experiments; Figure 2's idealized trajectory).
    AutoAccept,
    /// Candidates wait in the review queue for stakeholder decisions (the
    /// deployment mode the paper insists on).
    Manual,
}

/// What one refinement round did.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct RoundRecord {
    /// 1-based round number.
    pub round: usize,
    /// Entries visible to this round (federation-wide).
    pub audit_entries: usize,
    /// Entries surviving the Filter stage.
    pub practice_entries: usize,
    /// Patterns the miner surfaced.
    pub patterns_found: usize,
    /// Patterns surviving Prune (proposed to the review queue).
    pub patterns_useful: usize,
    /// Candidates newly enqueued (after dedup against prior decisions).
    pub candidates_enqueued: usize,
    /// Rules folded into the policy this round (auto-accept mode only).
    pub rules_added: usize,
    /// Entry-weighted coverage before the round's policy change.
    pub entry_coverage_before: f64,
    /// Entry-weighted coverage after (same trail, updated policy).
    pub entry_coverage_after: f64,
    /// Policy cardinality after the round.
    pub policy_cardinality: usize,
    /// Lower bound on the true post-round entry coverage, accounting for
    /// trail entries known to exist but unreachable this round (equals
    /// `entry_coverage_after` when every source was healthy).
    pub completeness_lower: f64,
    /// Upper bound on the true post-round entry coverage (see
    /// `completeness_lower`).
    pub completeness_upper: f64,
    /// True when mining was skipped because the consolidated trail fell
    /// below the system's completeness floor — rules proposed from a
    /// trail that degraded would overfit whatever happened to be
    /// reachable.
    pub refinement_deferred: bool,
}

/// The outcome of [`PrimaSystem::run_served_round`]: the refinement
/// round plus the serving layer's state after the republish.
#[derive(Debug)]
pub struct ServedRound {
    /// What the refinement round did.
    pub record: RoundRecord,
    /// Whether the republish actually changed the serving policy (an
    /// unchanged snapshot is a no-op; a rejected or held install also
    /// reports `false` — see `health`).
    pub refreshed: bool,
    /// Service health sampled right after the republish: degraded
    /// (pinned last-known-good), install holds, breaker state, worker
    /// pool status, overload counters.
    pub health: prima_serve::ServeHealth,
}

/// The PRIMA system: Figure 4 as an object.
pub struct PrimaSystem {
    vocab: Vocabulary,
    policy: Policy,
    federation: AuditFederation,
    /// Remote log sources consolidated with retries, circuit breaking,
    /// and quarantine; empty unless [`Self::attach_source`] was used.
    resilient: ResilientFederation,
    /// Minimum trail completeness (`observed ÷ (observed + missing)`)
    /// required before a round is allowed to mine; 0 never defers.
    completeness_floor: f64,
    review: ReviewQueue,
    history: Vec<RoundRecord>,
    miner: Box<dyn Miner + Send + Sync>,
    /// Refinement-safety gate: when set, mined candidates must be strictly
    /// subsumed by the gate's umbrella envelope or they are rejected with
    /// a `PA005` diagnostic instead of widening the policy.
    gate: Option<SafetyGate>,
    /// `PA005` diagnostics from the most recent round (or manual apply);
    /// reset at the start of each.
    last_gate_diagnostics: Vec<Diagnostic>,
    /// Metrics and spans around rounds; disabled (free) by default.
    obs: SystemObs,
}

impl PrimaSystem {
    /// Creates a system with the paper's default miner (SQL group-by with
    /// `f = 5`, `COUNT(DISTINCT user) > 1`).
    pub fn new(vocab: Vocabulary, policy: Policy) -> Self {
        Self {
            vocab,
            policy,
            federation: AuditFederation::new(),
            resilient: ResilientFederation::default(),
            completeness_floor: 0.0,
            review: ReviewQueue::new(),
            history: Vec::new(),
            miner: Box::new(SqlMiner::default()),
            gate: None,
            last_gate_diagnostics: Vec::new(),
            obs: SystemObs::disabled(),
        }
    }

    /// Replaces the miner (e.g. with the Apriori miner of experiment E8).
    pub fn with_miner(mut self, miner: Box<dyn Miner + Send + Sync>) -> Self {
        self.miner = miner;
        self
    }

    /// Installs a refinement-safety envelope: mined candidates must be
    /// strictly subsumed by some rule of `envelope` or they are rejected
    /// with a `PA005` diagnostic — in auto-accept rounds the rule is not
    /// added, and in manual mode an accept decision on a widening
    /// candidate is overturned at apply time. The diagnostics of the most
    /// recent round are available via [`Self::last_gate_diagnostics`].
    ///
    /// The envelope is a *separate* umbrella policy, not the evolving
    /// `P_PS`: Prune already removes patterns the policy store covers, so
    /// gating against `P_PS` itself would reject every surviving pattern.
    pub fn with_safety_envelope(mut self, envelope: Policy) -> Self {
        self.gate = Some(SafetyGate::new(envelope));
        self
    }

    /// The installed refinement-safety gate, if any.
    pub fn safety_gate(&self) -> Option<&SafetyGate> {
        self.gate.as_ref()
    }

    /// `PA005` diagnostics produced by the most recent
    /// [`Self::run_round`] / [`Self::apply_review_decisions`] call (empty
    /// when no gate is installed or nothing widened).
    pub fn last_gate_diagnostics(&self) -> &[Diagnostic] {
        &self.last_gate_diagnostics
    }

    /// Installs observability: rounds record per-stage timings, coverage
    /// gauges, and spans into `obs`. Pass [`SystemObs::enabled`] for a
    /// fresh registry, or [`SystemObs::over`] to share a registry and
    /// tracer with the stream engine and federation.
    ///
    /// The resilient source federation is rewired onto the same registry
    /// and tracer, so one scrape covers rounds and federation alike.
    /// (Stream engines share the books via
    /// [`prima_stream::StreamConfig::observability`] at
    /// [`Self::attach_stream`] time.)
    pub fn with_observability(mut self, obs: SystemObs) -> Self {
        self.resilient = std::mem::take(&mut self.resilient).with_observability(
            prima_audit::FederationObs::over(obs.registry().clone(), obs.tracer().clone()),
        );
        self.obs = obs;
        self
    }

    /// This system's observability handle (registry, tracer, profile).
    pub fn obs(&self) -> &SystemObs {
        &self.obs
    }

    /// Per-stage latency profile of every round run so far.
    pub fn pipeline_report(&self) -> prima_obs::PipelineReport {
        self.obs.pipeline_report()
    }

    /// Sets the completeness floor: a round whose consolidated trail is
    /// less complete than `floor` (because sources were unreachable or
    /// truncated) records its coverage interval but refuses to mine —
    /// patterns from a partial trail would encode the outage, not the
    /// practice. Clamped to `[0, 1]`; the default 0 never defers.
    pub fn with_completeness_floor(mut self, floor: f64) -> Self {
        self.completeness_floor = floor.clamp(0.0, 1.0);
        self
    }

    /// Registers an audit source — e.g. the store an HDB Compliance
    /// Auditing instance writes to, or a per-site trail. Rejects a store
    /// whose name is already registered (a double registration would
    /// double-count every entry in provenance and coverage).
    pub fn attach_store(&mut self, store: AuditStore) -> Result<(), FederationError> {
        self.federation.register(store)
    }

    /// Registers a remote log source behind the resilience layer: it is
    /// fetched with retries and a circuit breaker on every
    /// [`Self::sync_sources`], its malformed records are quarantined,
    /// and its gaps show up in [`Self::federation_health`] rather than
    /// silently shrinking the trail.
    pub fn attach_source(&mut self, source: Box<dyn LogSource>) -> Result<(), FederationError> {
        self.resilient.attach(source)
    }

    /// Runs one consolidation round over the resilient sources and
    /// returns the resulting health report. Call before a refinement
    /// round to refresh the remote slice of the trail.
    pub fn sync_sources(&mut self) -> FederationHealth {
        self.resilient.sync()
    }

    /// Health of the resilient sources after the latest
    /// [`Self::sync_sources`] (a default, all-healthy report when no
    /// sources are attached or no sync has run).
    pub fn federation_health(&self) -> FederationHealth {
        self.resilient.health()
    }

    /// The resilient remote-source federation (retry/breaker tuning).
    pub fn resilient_mut(&mut self) -> &mut ResilientFederation {
        &mut self.resilient
    }

    /// Attaches a live ingestion pipeline: starts a
    /// [`prima_stream::StreamEngine`] classifying against the current
    /// policy, whose durable sink is a fresh store registered with this
    /// system's federation. Streamed entries are therefore visible to
    /// every batch computation (`run_round`, `coverage`, …) while the
    /// engine maintains the same coverage incrementally.
    ///
    /// The caller owns the returned engine and drives ingestion;
    /// [`Self::run_streamed_round`] closes the loop back into
    /// refinement. Ingestion is block-based —
    /// [`prima_stream::StreamConfig::block_size`] entries accumulate
    /// per shard before a flush — but every barrier the engine runs
    /// (snapshot, checkpoint, policy refresh) flushes partial blocks
    /// first, so the rounds this system trains never observe a
    /// block-size-dependent cut of the trail.
    pub fn attach_stream(
        &mut self,
        config: prima_stream::StreamConfig,
    ) -> prima_stream::StreamEngine {
        let store = AuditStore::new(&format!("stream-{}", self.federation.sources().len()));
        self.federation
            .register(store.clone())
            .expect("generated stream sink name is unique");
        let matcher = prima_model::PolicyMatcher::new(&self.policy, &self.vocab);
        prima_stream::StreamEngine::start(config, matcher).with_sink(store)
    }

    /// Attaches the serving layer: starts a [`prima_serve::PolicyService`]
    /// answering decision requests against the current policy, sharing
    /// this system's metrics registry and tracer so one scrape covers
    /// refinement rounds and serving alike. The caller owns the returned
    /// service and its transports; after a refinement round changes the
    /// policy, [`Self::refresh_serve`] (or [`Self::run_served_round`])
    /// republishes it and invalidates the service's decision cache.
    pub fn attach_serve(&self, config: prima_serve::ServeConfig) -> prima_serve::PolicyService {
        let config = config
            .metrics(self.obs.registry().clone())
            .tracer(self.obs.tracer().clone());
        prima_serve::PolicyService::start(config, &self.policy, &self.vocab)
    }

    /// Republishes the current policy store into a serving instance.
    /// Returns `true` when the install took effect (the policy actually
    /// changed since the service last saw it) — every cached decision
    /// from older revisions is invalidated at that instant.
    pub fn refresh_serve(&self, service: &prima_serve::PolicyService) -> bool {
        service.install_policy(&self.policy)
    }

    /// Runs one refinement round, then immediately republishes the
    /// (possibly refined) policy to the serving layer so in-flight
    /// traffic never sees a verdict from the superseded revision.
    ///
    /// The returned [`ServedRound`] carries the service's health sampled
    /// right after the republish: a rejected install (the service pins
    /// last-known-good and serves degraded) or an install hold (crash-
    /// loop breaker open) shows up here instead of vanishing into a
    /// swallowed boolean.
    pub fn run_served_round(
        &mut self,
        service: &prima_serve::PolicyService,
        mode: ReviewMode,
    ) -> Result<ServedRound, MiningError> {
        let record = self.run_round(mode)?;
        let refreshed = self.refresh_serve(service);
        Ok(ServedRound {
            record,
            refreshed,
            health: service.health(),
        })
    }

    /// Runs one refinement round over the stream's trailing training
    /// window, then pushes the (possibly refined) policy back into the
    /// engine so its decision caches re-key against the new epoch.
    ///
    /// Returns `None` when the stream has no windowed stats yet (window
    /// tracking off or no events ingested): there is nothing to train
    /// on, and running an unwindowed round here would silently violate
    /// the "train on the latest period" contract.
    pub fn run_streamed_round(
        &mut self,
        engine: &mut prima_stream::StreamEngine,
        mode: ReviewMode,
    ) -> Result<Option<RoundRecord>, MiningError> {
        let snapshot = engine.snapshot();
        let Some(window) = snapshot.window else {
            return Ok(None);
        };
        let record = self.run_round_windowed(window.window, mode)?;
        engine.refresh_policy(&self.policy);
        Ok(Some(record))
    }

    /// The audit federation (Audit Management component).
    pub fn federation(&self) -> &AuditFederation {
        &self.federation
    }

    /// The current policy store.
    pub fn policy(&self) -> &Policy {
        &self.policy
    }

    /// The vocabulary.
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// The review queue (manual mode drives decisions through this).
    pub fn review_mut(&mut self) -> &mut ReviewQueue {
        &mut self.review
    }

    /// Read access to the review queue.
    pub fn review(&self) -> &ReviewQueue {
        &self.review
    }

    /// Refinement-round history.
    pub fn history(&self) -> &[RoundRecord] {
        &self.history
    }

    /// The full consolidated trail: local federated stores plus the
    /// latest synced view of the resilient sources, merged in timestamp
    /// order (stable — local stores first within a tie, matching each
    /// federation's own documented tie-break).
    fn all_entries(&self) -> Vec<AuditEntry> {
        let mut entries = self.federation.consolidated_entries();
        if !self.resilient.is_empty() {
            entries.extend(self.resilient.consolidated_entries());
            entries.sort_by_key(|e| e.time);
        }
        entries
    }

    /// Set-based coverage (Definition 9) of the current policy with
    /// respect to the consolidated audit trail, using the lazy engine.
    pub fn coverage(&self) -> Result<CoverageReport, ModelError> {
        let trail = if self.resilient.is_empty() {
            self.federation.to_policy()
        } else {
            let grounds: Vec<prima_model::GroundRule> = self
                .all_entries()
                .iter()
                .map(|e| {
                    e.to_ground_rule()
                        .expect("audit entries carry non-empty attributes")
                })
                .collect();
            Policy::from_ground_rules(prima_model::StoreTag::AuditLog, grounds)
        };
        CoverageEngine::new(Strategy::Lazy).coverage(&self.policy, &trail, &self.vocab)
    }

    /// Entry-weighted coverage (the Section 5 computation) over the
    /// consolidated trail.
    pub fn entry_coverage(&self) -> EntryCoverageReport {
        let mut grounds = self.federation.ground_rules();
        if !self.resilient.is_empty() {
            grounds.extend(self.resilient.ground_rules());
        }
        CoverageEngine::default().entry_coverage(&self.policy, &grounds, &self.vocab)
    }

    /// Entry-weighted coverage annotated with its completeness bound:
    /// the interval the *true* coverage (over the trail including
    /// entries currently unreachable or quarantined) must lie in. Exact
    /// when every source is healthy.
    pub fn entry_coverage_with_bound(&self) -> (EntryCoverageReport, CompletenessBound) {
        let report = self.entry_coverage();
        let bound = self
            .federation_health()
            .bound_for(report.covered_entries, report.total_entries);
        (report, bound)
    }

    /// Runs one refinement round over the consolidated trail.
    pub fn run_round(&mut self, mode: ReviewMode) -> Result<RoundRecord, MiningError> {
        let entries = self.all_entries();
        self.run_round_over(entries, mode)
    }

    /// Runs one refinement round over only the entries inside the training
    /// window (Section 4.3's training period) — the deployment shape where
    /// refinement runs "at regular intervals" over the latest period.
    pub fn run_round_windowed(
        &mut self,
        window: prima_audit::TrainingWindow,
        mode: ReviewMode,
    ) -> Result<RoundRecord, MiningError> {
        let entries: Vec<AuditEntry> = self
            .all_entries()
            .into_iter()
            .filter(|e| window.contains(e.time))
            .collect();
        self.run_round_over(entries, mode)
    }

    fn run_round_over(
        &mut self,
        entries: Vec<AuditEntry>,
        mode: ReviewMode,
    ) -> Result<RoundRecord, MiningError> {
        let round = self.history.len() + 1;
        self.last_gate_diagnostics.clear();
        // A round is one trace: nested stage spans (refine, propose,
        // coverage) inherit this root thread-locally, and incident dumps
        // mark its trace in the flight-recorder replay.
        let mut round_span = self
            .obs
            .tracer()
            .root_span("round.run")
            .with_field("round", round)
            .with_field("entries", entries.len());
        let rules: Vec<prima_model::GroundRule> = entries
            .iter()
            .map(|e| {
                e.to_ground_rule()
                    .expect("audit entries carry non-empty attributes")
            })
            .collect();
        let coverage_start = std::time::Instant::now();
        let before = CoverageEngine::default()
            .entry_coverage(&self.policy, &rules, &self.vocab)
            .ratio();
        let before_elapsed = coverage_start.elapsed();

        let health = self.federation_health();
        let deferred = health.completeness() < self.completeness_floor;

        let (practice_entries, patterns_found, patterns_useful, candidates_enqueued, rules_added) =
            if deferred {
                // Below the floor: record the round, but don't mine — a
                // pattern "frequent" in a half-visible trail may only be
                // frequent because the other half is dark.
                self.obs.deferred_total.inc();
                drop(
                    self.obs
                        .tracer()
                        .span("round.deferred")
                        .with_field("completeness", health.completeness()),
                );
                // A blind round is an incident: keep its trace and dump
                // the black box so the spans leading up to it replay.
                round_span.mark_interesting();
                self.obs
                    .incident("round_deferred", round_span.context().trace_id);
                (0, 0, 0, 0, 0)
            } else {
                let mine_span = self.obs.tracer().span("round.refine");
                let classifier = NoViolations;
                let mut config = RefinementConfig::new(&*self.miner, &classifier);
                if let Some(gate) = self.gate.as_ref() {
                    config = config.with_gate(gate);
                }
                let report = refinement_with(&self.policy, &entries, &self.vocab, &config)?;
                drop(
                    mine_span
                        .with_field("practice", report.practice_entries)
                        .with_field("patterns", report.raw_patterns.len()),
                );
                // Widening patterns the gate diverted never reach the
                // review queue; keep their diagnostics for the caller.
                self.last_gate_diagnostics
                    .extend(report.gate_rejected.iter().map(|(_, d)| d.clone()));
                // The refine pipeline hands back its own stage clocks, so
                // the histograms see the true per-stage split rather than
                // one lump.
                self.obs.stages[0].observe_duration(report.filter_duration);
                self.obs.stages[1].observe_duration(report.mine_duration);
                self.obs.stages[2].observe_duration(report.prune_duration);
                let propose_span = self.obs.tracer().span("round.propose");
                let propose_start = std::time::Instant::now();
                let enqueued = self.review.propose(report.useful_patterns.clone(), round);
                let added = match mode {
                    ReviewMode::AutoAccept => {
                        self.review.accept_all_pending();
                        match self.gate.as_ref() {
                            Some(gate) => {
                                let (added, diags) = self.review.apply_accepted_gated(
                                    &mut self.policy,
                                    gate,
                                    &self.vocab,
                                );
                                self.last_gate_diagnostics.extend(diags);
                                added
                            }
                            None => self.review.apply_accepted(&mut self.policy),
                        }
                    }
                    ReviewMode::Manual => 0,
                };
                self.obs.stages[3].observe_duration(propose_start.elapsed());
                drop(propose_span.with_field("enqueued", enqueued));
                self.obs
                    .patterns_useful_total
                    .add(report.useful_patterns.len() as u64);
                self.obs.rules_added_total.add(added as u64);
                (
                    report.practice_entries,
                    report.raw_patterns.len(),
                    report.useful_patterns.len(),
                    enqueued,
                    added,
                )
            };

        let after_span = self.obs.tracer().span("round.coverage");
        let after_start = std::time::Instant::now();
        let after_report =
            CoverageEngine::default().entry_coverage(&self.policy, &rules, &self.vocab);
        // The coverage stage is both passes over the trail (before and
        // after the policy change), so the histogram sees their sum.
        self.obs.stages[4].observe_duration(before_elapsed + after_start.elapsed());
        drop(after_span);
        let after = after_report.ratio();
        let bound = health.bound_for(after_report.covered_entries, after_report.total_entries);

        self.obs.rounds_total.inc();
        self.obs.coverage_ratio.set(after);
        self.obs.completeness_lower.set(bound.lower);
        self.obs.completeness_upper.set(bound.upper);
        // SLO: the fraction of rounds running blind (trail completeness
        // under the floor) feeds the multi-window burn rates.
        self.obs
            .slo()
            .record("coverage_completeness", f64::from(deferred), 1.0);
        round_span.field("coverage", format!("{after:.4}"));
        if !self.last_gate_diagnostics.is_empty() {
            // The safety gate refused at least one candidate this round:
            // always keep the trace, and dump the black box with this
            // round's trace marked (the nested stage spans have already
            // closed into the ring).
            round_span.field("gate_rejections", self.last_gate_diagnostics.len());
            round_span.mark_interesting();
            self.obs
                .incident("gate_rejected", round_span.context().trace_id);
        }

        let record = RoundRecord {
            round,
            audit_entries: entries.len(),
            practice_entries,
            patterns_found,
            patterns_useful,
            candidates_enqueued,
            rules_added,
            entry_coverage_before: before,
            entry_coverage_after: after,
            policy_cardinality: self.policy.cardinality(),
            completeness_lower: bound.lower,
            completeness_upper: bound.upper,
            refinement_deferred: deferred,
        };
        self.history.push(record.clone());
        Ok(record)
    }

    /// Applies accepted manual-review decisions to the policy, returning
    /// the number of rules added. When a safety envelope is installed, an
    /// accepted candidate the gate rejects is *not* applied: its state is
    /// overturned to Rejected with the `PA005` diagnostic as the note,
    /// and the diagnostic lands in [`Self::last_gate_diagnostics`].
    pub fn apply_review_decisions(&mut self) -> usize {
        match self.gate.as_ref() {
            Some(gate) => {
                let (added, diags) =
                    self.review
                        .apply_accepted_gated(&mut self.policy, gate, &self.vocab);
                self.last_gate_diagnostics = diags;
                added
            }
            None => self.review.apply_accepted(&mut self.policy),
        }
    }

    /// Installs restored review/history state (used by
    /// [`crate::snapshot`]).
    pub(crate) fn restore_state(&mut self, review: ReviewQueue, history: Vec<RoundRecord>) {
        self.review = review;
        self.history = history;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_model::samples::figure_3_policy_store;
    use prima_refine::CandidateState;
    use prima_vocab::samples::figure_1;
    use prima_workload::fixtures::table_1;

    fn system_with_table_1() -> PrimaSystem {
        let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store());
        let store = AuditStore::new("main");
        store.append_all(&table_1()).unwrap();
        sys.attach_store(store).unwrap();
        sys
    }

    #[test]
    fn section_5_auto_accept_round() {
        let mut sys = system_with_table_1();
        let before = sys.entry_coverage();
        assert!((before.percent() - 30.0).abs() < 1e-9, "paper's 30%");

        let record = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert_eq!(record.audit_entries, 10);
        assert_eq!(record.practice_entries, 7);
        assert_eq!(record.patterns_found, 1);
        assert_eq!(record.patterns_useful, 1);
        assert_eq!(record.rules_added, 1);
        assert_eq!(record.policy_cardinality, 4);
        // Accepting Referral:Registration:Nurse covers t3, t7-t10: 8/10.
        assert!((record.entry_coverage_after - 0.8).abs() < 1e-9);
        assert!(record.entry_coverage_after > record.entry_coverage_before);
        assert_eq!(sys.history().len(), 1);
    }

    #[test]
    fn manual_mode_waits_for_decisions() {
        let mut sys = system_with_table_1();
        let record = sys.run_round(ReviewMode::Manual).unwrap();
        assert_eq!(record.rules_added, 0);
        assert_eq!(record.candidates_enqueued, 1);
        assert_eq!(sys.policy().cardinality(), 3, "policy unchanged");

        let id = sys.review().pending().next().unwrap().id;
        sys.review_mut()
            .decide(id, CandidateState::Accepted, Some("ward workflow"));
        assert_eq!(sys.apply_review_decisions(), 1);
        assert_eq!(sys.policy().cardinality(), 4);
        assert!((sys.entry_coverage().ratio() - 0.8).abs() < 1e-9);
    }

    #[test]
    fn rejected_patterns_are_not_reproposed() {
        let mut sys = system_with_table_1();
        sys.run_round(ReviewMode::Manual).unwrap();
        let id = sys.review().pending().next().unwrap().id;
        sys.review_mut()
            .decide(id, CandidateState::Rejected, Some("should stop"));
        let second = sys.run_round(ReviewMode::Manual).unwrap();
        assert_eq!(second.patterns_useful, 1, "still mined");
        assert_eq!(second.candidates_enqueued, 0, "but not re-proposed");
    }

    #[test]
    fn safety_envelope_rejects_widening_round_with_pa005() {
        use prima_model::{Rule, StoreTag};
        // Envelope allows only administrative-staff billing access to
        // demographic data; the Table 1 mined pattern
        // referral:registration:nurse widens past it.
        let envelope = Policy::with_rules(
            StoreTag::Named("envelope".into()),
            vec![Rule::of(&[
                ("data", "demographic"),
                ("purpose", "billing"),
                ("authorized", "administrative-staff"),
            ])],
        );
        let mut sys = system_with_table_1().with_safety_envelope(envelope);
        let record = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert_eq!(record.patterns_useful, 0, "gate diverted the pattern");
        assert_eq!(record.rules_added, 0);
        assert_eq!(sys.policy().cardinality(), 3, "policy unchanged");
        let diags = sys.last_gate_diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code.as_str(), "PA005");
        assert!(diags[0].is_error());
        // Coverage stays at the paper's starting 30%.
        assert!((record.entry_coverage_after - 0.3).abs() < 1e-9);
    }

    #[test]
    fn gate_rejection_dumps_the_flight_recorder_with_the_rounds_trace() {
        use prima_model::{Rule, StoreTag};
        use prima_obs::FlightRecorder;
        let envelope = Policy::with_rules(
            StoreTag::Named("envelope".into()),
            vec![Rule::of(&[
                ("data", "demographic"),
                ("purpose", "billing"),
                ("authorized", "administrative-staff"),
            ])],
        );
        let flight = FlightRecorder::new(128);
        let mut sys = system_with_table_1()
            .with_safety_envelope(envelope)
            .with_observability(SystemObs::flight_enabled(flight.clone()));
        sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert_eq!(sys.last_gate_diagnostics().len(), 1);

        // The rejection dumped the black box: the trigger names it, the
        // round's own trace is marked, and the nested stage spans that
        // led up to the rejection replay from the ring.
        let dump = flight.last_dump().expect("gate rejection dumped");
        assert_eq!(dump.trigger, "gate_rejected");
        assert_ne!(dump.trace_id, 0, "the round was traced");
        assert!(
            dump.records
                .iter()
                .any(|r| r.trace_id == dump.trace_id && r.name == "round.refine"),
            "dump replays the round's refine stage: {:?}",
            dump.records
        );
        assert!(dump.to_jsonl().contains("\"marked\":true"));
        // The SLO engine saw a healthy (non-deferred) round.
        assert!(!sys.obs().slo().is_breached("coverage_completeness"));
    }

    #[test]
    fn safety_envelope_admits_specializing_round() {
        use prima_model::{Rule, StoreTag};
        // Generous umbrella: medical-staff access to medical data for
        // administering healthcare. referral:registration:nurse is a
        // strict specialization, so the Section 5 round goes through.
        let envelope = Policy::with_rules(
            StoreTag::Named("envelope".into()),
            vec![Rule::of(&[
                ("data", "medical"),
                ("purpose", "administering-healthcare"),
                ("authorized", "medical-staff"),
            ])],
        );
        let mut sys = system_with_table_1().with_safety_envelope(envelope);
        let record = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert_eq!(record.rules_added, 1);
        assert!((record.entry_coverage_after - 0.8).abs() < 1e-9);
        assert!(sys.last_gate_diagnostics().is_empty());
        assert!(sys.safety_gate().is_some());
    }

    #[test]
    fn manual_accept_of_widening_candidate_is_overturned_at_apply() {
        use prima_model::{Rule, StoreTag};
        let envelope = Policy::with_rules(
            StoreTag::Named("envelope".into()),
            vec![Rule::of(&[
                ("data", "demographic"),
                ("purpose", "billing"),
                ("authorized", "administrative-staff"),
            ])],
        );
        let mut sys = system_with_table_1();
        // Run the round *without* a gate so the candidate reaches the
        // queue, then install the envelope before the reviewer applies —
        // the gated apply must overturn the stale accept.
        let record = sys.run_round(ReviewMode::Manual).unwrap();
        assert_eq!(record.candidates_enqueued, 1);
        let id = sys.review().pending().next().unwrap().id;
        sys.review_mut()
            .decide(id, CandidateState::Accepted, Some("looks fine"));
        sys = sys.with_safety_envelope(envelope);
        assert_eq!(sys.apply_review_decisions(), 0);
        assert_eq!(sys.policy().cardinality(), 3, "widening rule blocked");
        assert_eq!(sys.last_gate_diagnostics().len(), 1);
        assert_eq!(sys.last_gate_diagnostics()[0].code.as_str(), "PA005");
        let overturned = sys
            .review()
            .candidates()
            .iter()
            .find(|c| c.id == id)
            .unwrap();
        assert_eq!(overturned.state, CandidateState::Rejected);
        assert!(overturned.note.as_deref().unwrap().contains("PA005"));
    }

    #[test]
    fn set_coverage_also_available() {
        let sys = system_with_table_1();
        let report = sys.coverage().unwrap();
        // Set view: 6 distinct ground rules, 3 covered (paper's Fig 3).
        assert_eq!(report.target_cardinality, 6);
        assert_eq!(report.overlap, 3);
    }

    #[test]
    fn windowed_round_ignores_entries_outside_the_training_period() {
        let mut sys = system_with_table_1();
        // Window covering only t1..t5: the frequent pattern (t3, t7-t10)
        // has just one occurrence inside, so nothing is mined.
        let early = prima_audit::TrainingWindow::new(1, 6);
        let record = sys
            .run_round_windowed(early, ReviewMode::AutoAccept)
            .unwrap();
        assert_eq!(record.audit_entries, 5);
        assert_eq!(record.patterns_found, 0);
        // The full-trail window reproduces the Section 5 outcome.
        let full = prima_audit::TrainingWindow::new(1, 11);
        let record = sys
            .run_round_windowed(full, ReviewMode::AutoAccept)
            .unwrap();
        assert_eq!(record.audit_entries, 10);
        assert_eq!(record.rules_added, 1);
    }

    #[test]
    fn empty_federation_round_is_graceful() {
        let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store());
        let record = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert_eq!(record.audit_entries, 0);
        assert_eq!(record.patterns_found, 0);
        assert!((record.entry_coverage_before - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn streamed_entries_reach_batch_rounds() {
        use prima_stream::StreamConfig;
        let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store());
        let mut engine = sys.attach_stream(StreamConfig::with_shards(2));
        engine.ingest_all(&table_1());
        engine.drain();
        // The sink store is federated: the batch round sees the streamed
        // trail and reproduces the Section 5 outcome.
        let record = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert_eq!(record.audit_entries, 10);
        assert_eq!(record.rules_added, 1);
        assert!((record.entry_coverage_after - 0.8).abs() < 1e-9);
    }

    #[test]
    fn streamed_round_trains_on_window_and_refreshes_engine() {
        use prima_stream::StreamConfig;
        let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store());
        // Table 1's entries carry times 1..=10; a 100-second window
        // holds them all.
        let mut engine = sys.attach_stream(StreamConfig::with_shards(2).window_secs(100));
        engine.ingest_all(&table_1());

        let record = sys
            .run_streamed_round(&mut engine, ReviewMode::AutoAccept)
            .unwrap()
            .expect("window has events");
        assert_eq!(record.audit_entries, 10);
        assert_eq!(record.rules_added, 1);

        // The engine picked up the refined policy: its incremental view
        // now matches the post-refinement coverage.
        let snap = engine.shutdown();
        assert_eq!(snap.epoch, 1);
        assert!((snap.totals.ratio() - 0.8).abs() < 1e-9);
        assert!((snap.totals.ratio() - sys.entry_coverage().ratio()).abs() < 1e-12);
    }

    #[test]
    fn streamed_round_is_block_size_agnostic() {
        use prima_stream::StreamConfig;
        // The same streamed round at a block size that doesn't divide
        // the trail (partial flush at the snapshot barrier) must train
        // on the identical window and refine identically to the
        // row-at-a-time configuration.
        let run = |block_size: usize| {
            let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store());
            let mut engine = sys.attach_stream(
                StreamConfig::with_shards(2)
                    .window_secs(100)
                    .block_size(block_size),
            );
            engine.ingest_all(&table_1());
            let record = sys
                .run_streamed_round(&mut engine, ReviewMode::AutoAccept)
                .unwrap()
                .expect("window has events");
            (record, engine.shutdown())
        };
        let (record_row, snap_row) = run(1);
        let (record_blk, snap_blk) = run(7);
        assert_eq!(record_row.audit_entries, record_blk.audit_entries);
        assert_eq!(record_row.rules_added, record_blk.rules_added);
        assert_eq!(snap_row.totals, snap_blk.totals);
        assert_eq!(snap_row.epoch, snap_blk.epoch);
    }

    #[test]
    fn healthy_round_records_exact_completeness() {
        let mut sys = system_with_table_1();
        let record = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert!(!record.refinement_deferred);
        assert!((record.completeness_lower - record.entry_coverage_after).abs() < 1e-12);
        assert!((record.completeness_upper - record.entry_coverage_after).abs() < 1e-12);
    }

    #[test]
    fn outage_widens_coverage_to_an_interval_containing_the_truth() {
        use prima_audit::{FaultySource, SourceFaults, StoreSource};
        // Ground truth: both sites reachable. 10 entries from table 1
        // plus 5 uncovered psychiatry accesses at a second site.
        let site_a = AuditStore::new("site-a");
        site_a.append_all(&table_1()).unwrap();
        let site_b = AuditStore::new("site-b");
        for i in 0..5 {
            site_b
                .append(&AuditEntry::regular(
                    100 + i,
                    "u9",
                    "psychiatry",
                    "treatment",
                    "nurse",
                ))
                .unwrap();
        }

        let mut truth = PrimaSystem::new(figure_1(), figure_3_policy_store());
        truth
            .attach_source(Box::new(StoreSource::new(site_a.clone())))
            .unwrap();
        truth
            .attach_source(Box::new(StoreSource::new(site_b.clone())))
            .unwrap();
        assert!(truth.sync_sources().all_healthy());
        let true_coverage = truth.entry_coverage().ratio();

        // Degraded run: site-b is down (its manifest still advertises 5
        // entries), so coverage must become an interval containing the
        // true ratio.
        let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store());
        sys.attach_source(Box::new(StoreSource::new(site_a)))
            .unwrap();
        sys.attach_source(Box::new(FaultySource::new(
            site_b,
            SourceFaults::none().permanently_down(),
        )))
        .unwrap();
        let health = sys.sync_sources();
        assert!(!health.all_healthy());
        assert_eq!(health.missing_entries(), 5);

        let (report, bound) = sys.entry_coverage_with_bound();
        assert_eq!(report.total_entries, 10, "only site-a is visible");
        assert!(!bound.is_exact());
        assert!(
            bound.contains(true_coverage),
            "true coverage {true_coverage} outside [{}, {}]",
            bound.lower,
            bound.upper
        );

        let record = sys.run_round(ReviewMode::Manual).unwrap();
        assert!(record.completeness_lower <= true_coverage);
        assert!(record.completeness_upper >= true_coverage);
        assert!(record.completeness_upper > record.completeness_lower);
    }

    #[test]
    fn completeness_floor_defers_mining_until_sources_recover() {
        use prima_audit::{FaultySource, SourceFaults, StoreSource};
        let site_a = AuditStore::new("site-a");
        site_a.append_all(&table_1()).unwrap();
        // A second site as large as the first, unreachable for the first
        // two sync rounds: completeness is 10/20 = 0.5 < 0.75.
        let site_b = AuditStore::new("site-b");
        for i in 0..10 {
            site_b
                .append(&AuditEntry::regular(
                    100 + i,
                    "u9",
                    "referral",
                    "registration",
                    "nurse",
                ))
                .unwrap();
        }
        let mut sys =
            PrimaSystem::new(figure_1(), figure_3_policy_store()).with_completeness_floor(0.75);
        sys.attach_source(Box::new(StoreSource::new(site_a)))
            .unwrap();
        sys.attach_source(Box::new(FaultySource::new(
            site_b,
            SourceFaults::none().fail_first_attempts(8),
        )))
        .unwrap();

        sys.sync_sources();
        let degraded = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert!(degraded.refinement_deferred, "below the floor: no mining");
        assert_eq!(degraded.rules_added, 0);
        assert_eq!(sys.policy().cardinality(), 3, "policy untouched");

        // Retries eventually reach the source; the next round mines.
        let mut recovered = sys.sync_sources();
        while !recovered.all_healthy() {
            recovered = sys.sync_sources();
        }
        let healthy = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert!(!healthy.refinement_deferred);
        assert_eq!(healthy.audit_entries, 20);
        assert!(healthy.rules_added >= 1, "registration pattern now mined");
    }

    #[test]
    fn observed_round_profiles_every_stage() {
        let mut sys = system_with_table_1().with_observability(SystemObs::enabled());
        sys.run_round(ReviewMode::AutoAccept).unwrap();

        let report = sys.pipeline_report();
        assert_eq!(report.stages.len(), crate::observe::STAGES.len());
        assert!(
            report.all_stages_observed(),
            "every stage observed at least once: {report}"
        );
        assert_eq!(sys.obs().rounds_total.get(), 1);
        assert_eq!(sys.obs().rules_added_total.get(), 1);
        let coverage = sys.obs().coverage_ratio.get();
        assert!((coverage - 0.8).abs() < 1e-9, "gauge tracks the round");

        let spans = sys.obs().tracer().drain();
        let round = spans.iter().find(|s| s.name == "round.run").unwrap();
        let refine = spans.iter().find(|s| s.name == "round.refine").unwrap();
        assert_eq!(refine.parent, round.id, "refine nests under the round");
        assert!(spans.iter().any(|s| s.name == "round.propose"));
        assert!(spans.iter().any(|s| s.name == "round.coverage"));
    }

    #[test]
    fn deferred_round_counts_and_skips_stage_timings() {
        use prima_audit::{FaultySource, SourceFaults};
        let site = AuditStore::new("site");
        site.append_all(&table_1()).unwrap();
        let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store())
            .with_completeness_floor(0.75)
            .with_observability(SystemObs::enabled());
        sys.attach_source(Box::new(FaultySource::new(
            site,
            SourceFaults::none().permanently_down(),
        )))
        .unwrap();
        sys.sync_sources();
        let record = sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert!(record.refinement_deferred);
        assert_eq!(sys.obs().deferred_total.get(), 1);
        let report = sys.pipeline_report();
        let mine = report.stage("mine").unwrap();
        assert_eq!(mine.count, 0, "deferred rounds never mine");
    }

    #[test]
    fn unobserved_round_exports_nothing() {
        let mut sys = system_with_table_1();
        sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert!(!sys.obs().is_enabled());
        assert!(sys.pipeline_report().stages.is_empty());
        assert!(sys.obs().tracer().drain().is_empty());
    }

    #[test]
    fn served_round_republishes_the_refined_policy() {
        use prima_serve::{DecisionRequest, ServeConfig, Transport};
        let mut sys = system_with_table_1();
        let service = sys.attach_serve(ServeConfig::new().workers(2));
        let handle = service.handle();

        // Before refinement, the Section 5 informal workflow is denied.
        let req = DecisionRequest::new("u3", "nurse", "referral", "registration", "granted");
        let before = handle.decide(req.clone()).unwrap();
        assert!(!before.verdict.is_allow());
        assert_eq!(before.policy_revision, sys.policy().revision());

        // The auto-accept round promotes referral:registration:nurse and
        // pushes it straight to the serving layer: the very next decision
        // (which would otherwise hit the cached denial) allows.
        let outcome = sys
            .run_served_round(&service, ReviewMode::AutoAccept)
            .unwrap();
        assert_eq!(outcome.record.rules_added, 1);
        assert!(outcome.refreshed, "the refined policy was republished");
        assert!(
            outcome.health.healthy(),
            "clean round leaves full service: {:?}",
            outcome.health
        );
        assert_eq!(outcome.health.policy_revision, sys.policy().revision());
        let after = handle.decide(req).unwrap();
        assert!(after.verdict.is_allow(), "refined rule visible immediately");
        assert_eq!(after.policy_revision, sys.policy().revision());
        assert!(after.policy_revision > before.policy_revision);

        let snap = service.shutdown();
        assert!(snap.cache.invalidations >= 1, "republish invalidated");
    }

    #[test]
    fn refresh_serve_is_idempotent_until_the_policy_changes() {
        use prima_serve::ServeConfig;
        let mut sys = system_with_table_1();
        let service = sys.attach_serve(ServeConfig::new().workers(1));
        assert!(!sys.refresh_serve(&service), "unchanged policy: no-op");
        sys.run_round(ReviewMode::AutoAccept).unwrap();
        assert!(sys.refresh_serve(&service), "refined policy installs");
        assert!(!sys.refresh_serve(&service), "and only once");
        service.shutdown();
    }

    #[test]
    fn attached_service_shares_the_system_metrics_registry() {
        use prima_serve::{DecisionRequest, ServeConfig};
        let sys = system_with_table_1().with_observability(SystemObs::enabled());
        let service = sys.attach_serve(ServeConfig::new().workers(1));
        let req = DecisionRequest::new("u1", "nurse", "prescription", "treatment", "granted");
        service.engine().decide(&req);
        service.shutdown();
        // The decision counter landed in the *system's* registry.
        let rendered = prima_obs::export::prometheus(sys.obs().registry());
        assert!(
            rendered.contains("prima_serve_decisions_total 1"),
            "serve metrics share the system registry:\n{rendered}"
        );
    }

    #[test]
    fn streamed_round_without_window_is_none() {
        use prima_stream::StreamConfig;
        let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store());
        let mut engine = sys.attach_stream(StreamConfig::with_shards(1));
        engine.ingest_all(&table_1());
        let outcome = sys
            .run_streamed_round(&mut engine, ReviewMode::AutoAccept)
            .unwrap();
        assert!(outcome.is_none(), "no window tracking, no training period");
    }
}
