//! Saving and restoring the PRIMA system's long-lived state.
//!
//! The refinement loop runs for months; what persists between runs is the
//! policy store, the review queue (pending candidates and, crucially, the
//! accept/reject history that suppresses re-proposals), and the per-round
//! records. Audit trails persist separately through their own stores
//! (`prima-audit::export`) — they are data, not system state.

use crate::system::{PrimaSystem, RoundRecord};
use prima_model::Policy;
use prima_refine::ReviewQueue;
use serde::{Deserialize, Serialize};

/// A serializable snapshot of the system's mutable state.
#[derive(Debug, Serialize, Deserialize)]
pub struct SystemSnapshot {
    /// Snapshot format version (for forward compatibility).
    pub version: u32,
    /// The current policy store.
    pub policy: Policy,
    /// The review queue, including decided candidates.
    pub review: ReviewQueue,
    /// Per-round history.
    pub history: Vec<RoundRecord>,
}

/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Snapshot restore error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// Description.
    pub message: String,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot error: {}", self.message)
    }
}

impl std::error::Error for SnapshotError {}

impl PrimaSystem {
    /// Captures the system's mutable state (policy, review queue, round
    /// history). Audit sources are not captured; re-attach them after
    /// [`PrimaSystem::restore`].
    pub fn snapshot(&self) -> SystemSnapshot {
        SystemSnapshot {
            version: SNAPSHOT_VERSION,
            policy: self.policy().clone(),
            review: self.review().clone(),
            history: self.history().to_vec(),
        }
    }

    /// Serializes the snapshot to pretty JSON.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot()).expect("snapshots serialize infallibly")
    }

    /// Rebuilds a system from a snapshot over the given vocabulary. The
    /// review queue's decided-rule cache is rebuilt so rejected patterns
    /// stay suppressed across restarts.
    pub fn restore(
        vocab: prima_vocab::Vocabulary,
        snapshot: SystemSnapshot,
    ) -> Result<PrimaSystem, SnapshotError> {
        if snapshot.version != SNAPSHOT_VERSION {
            return Err(SnapshotError {
                message: format!(
                    "unsupported snapshot version {} (expected {SNAPSHOT_VERSION})",
                    snapshot.version
                ),
            });
        }
        let mut review = snapshot.review;
        review.rebuild_cache();
        let mut system = PrimaSystem::new(vocab, snapshot.policy);
        system.restore_state(review, snapshot.history);
        Ok(system)
    }

    /// Parses and restores from JSON produced by
    /// [`PrimaSystem::snapshot_json`].
    pub fn restore_json(
        vocab: prima_vocab::Vocabulary,
        json: &str,
    ) -> Result<PrimaSystem, SnapshotError> {
        let snapshot: SystemSnapshot = serde_json::from_str(json).map_err(|e| SnapshotError {
            message: e.to_string(),
        })?;
        Self::restore(vocab, snapshot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::ReviewMode;
    use prima_audit::AuditStore;
    use prima_model::samples::figure_3_policy_store;
    use prima_refine::CandidateState;
    use prima_vocab::samples::figure_1;
    use prima_workload::fixtures::table_1;

    fn worked_system() -> PrimaSystem {
        let mut sys = PrimaSystem::new(figure_1(), figure_3_policy_store());
        let store = AuditStore::new("main");
        store.append_all(&table_1()).unwrap();
        sys.attach_store(store).expect("unique source name");
        sys.run_round(ReviewMode::Manual).unwrap();
        sys
    }

    #[test]
    fn snapshot_roundtrip_preserves_state() {
        let mut sys = worked_system();
        let id = sys.review().pending().next().unwrap().id;
        sys.review_mut()
            .decide(id, CandidateState::Rejected, Some("bad practice"));

        let json = sys.snapshot_json();
        let restored = PrimaSystem::restore_json(figure_1(), &json).unwrap();
        assert_eq!(restored.policy(), sys.policy());
        assert_eq!(restored.history().len(), 1);
        assert_eq!(restored.review().candidates().len(), 1);
    }

    #[test]
    fn rejections_survive_restart() {
        let mut sys = worked_system();
        let id = sys.review().pending().next().unwrap().id;
        sys.review_mut()
            .decide(id, CandidateState::Rejected, Some("should stop"));

        let json = sys.snapshot_json();
        let mut restored = PrimaSystem::restore_json(figure_1(), &json).unwrap();
        // Re-attach the trail and run another round: the rejected pattern
        // must not be re-proposed.
        let store = AuditStore::new("main");
        store.append_all(&table_1()).unwrap();
        restored.attach_store(store).expect("unique source name");
        let record = restored.run_round(ReviewMode::Manual).unwrap();
        assert_eq!(record.patterns_useful, 1, "still mined");
        assert_eq!(record.candidates_enqueued, 0, "but suppressed");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let sys = worked_system();
        let mut snapshot = sys.snapshot();
        snapshot.version = 999;
        let json = serde_json::to_string(&snapshot).unwrap();
        assert!(PrimaSystem::restore_json(figure_1(), &json).is_err());
    }

    #[test]
    fn garbage_json_is_rejected() {
        assert!(PrimaSystem::restore_json(figure_1(), "{nope").is_err());
    }
}
