//! # prima-core — the PRIMA system (Figure 4)
//!
//! Wires the paper's architecture together:
//!
//! ```text
//! Stakeholders ──▶ Privacy Policy Definition (P_PS, HDB Control Center)
//!                        │ embedded privacy controls
//!                        ▼
//!                 Clinical environment (prima-hdb AE + CA)
//!                        │ audit entries
//!                        ▼
//!                 Audit Management (prima-audit federation)
//!                        │ P_AL
//!                        ▼
//!                 Policy Refinement (prima-refine)
//!                        │ useful patterns
//!                        ▼
//!                 Review queue ──accepted──▶ back into P_PS
//! ```
//!
//! * [`system::PrimaSystem`] — the long-lived object: current policy
//!   store, federated audit sources, review queue, refinement rounds, and
//!   coverage tracking over time;
//! * [`trajectory`] — the closed-loop driver behind experiment E4
//!   (Figure 2's coverage-gap picture made measurable): simulate a round
//!   of clinical workload, refine, accept, re-simulate — informal
//!   workflows that became policy move into the regular flow, and coverage
//!   climbs toward the violation floor.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod clinic;
pub mod observe;
pub mod snapshot;
pub mod system;
pub mod trajectory;

pub use clinic::{run_clinic, ClinicProfile, ClinicReport};
pub use observe::SystemObs;
pub use snapshot::{SnapshotError, SystemSnapshot};
pub use system::{PrimaSystem, ReviewMode, RoundRecord, ServedRound};
pub use trajectory::{run_trajectory, TrajectoryConfig, TrajectoryPoint};
