//! The Zipf-driven load benchmark behind `prima serve-bench`.
//!
//! Simulates a hospital-scale request stream against a running
//! [`PolicyService`]: a Zipf-ranked population of ≥1M principals (a few
//! workhorse clinicians dominate, per the access-log literature), each
//! bound to a ground role of the scenario vocabulary, issuing decision
//! requests with a realistic consent mix — including a trickle of
//! malformed tokens the service must deny structurally, never panic on.
//!
//! While clients hammer the service, a *promoter* thread replays the
//! refinement loop: every `promote_every` decisions it pushes one more
//! mined rule into the policy and installs it, bumping the revision and
//! invalidating the decision cache — so the measured hit rate includes
//! realistic invalidation churn, not an idealized warm cache.
//!
//! Clients also audit coherence online: every `coherence_sample`-th
//! reply is re-derived through the uncached oracle path and compared.
//! Replies that raced a concurrent install (revisions differ) are
//! skipped-and-counted rather than compared — the verdict legitimately
//! changed under the request.

use crate::api::DecisionRequest;
use crate::service::{PolicyService, ServeConfig, Transport};
use prima_model::Rule;
use prima_obs::{FlightRecorder, MetricsRegistry, SamplePolicy, Tracer};
use prima_vocab::{ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};
use prima_workload::{Scenario, ZipfPopulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde_json::Value;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Tail-sampling policy of the instrumented bench: every interesting
/// trace (denials, shed, deadline-expired, emergency) is kept, plus
/// 1-in-this-many of the boring ones.
const BENCH_KEEP_EVERY: u64 = 1_024;

/// Traces containing a span at least this slow (µs) are always kept.
const BENCH_SLOW_TRACE_US: u64 = 1_000;

/// The tracer the instrumented bench (and its calibration passes) runs
/// under: tail sampling plus a live flight recorder.
fn bench_tracer() -> Tracer {
    Tracer::configured(
        Some(
            SamplePolicy::keep_1_in(BENCH_KEEP_EVERY)
                .with_latency_threshold_us(BENCH_SLOW_TRACE_US),
        ),
        FlightRecorder::new(256),
    )
}

/// Load-run parameters.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Simulated principal population (the acceptance floor is 1M).
    pub principals: usize,
    /// Total decision requests across all clients.
    pub requests: usize,
    /// Client threads driving the service.
    pub clients: usize,
    /// Worker threads serving it.
    pub workers: usize,
    /// Decision-cache shard count.
    pub cache_shards: usize,
    /// Requests per batched transport call (1 = unbatched round-trips).
    pub batch: usize,
    /// Zipf exponent of the principal population.
    pub zipf: f64,
    /// RNG seed (request streams are deterministic given the seed).
    pub seed: u64,
    /// Install one promoted rule every this many decisions (0 = never).
    pub promote_every: usize,
    /// Audit one of every this many replies against the uncached oracle
    /// (0 = no auditing).
    pub coherence_sample: usize,
    /// Smoke mode: relaxes the throughput gate (CI machines vary); the
    /// correctness and hit-rate gates still apply.
    pub smoke: bool,
    /// Interleaved calibration passes per side (baseline vs
    /// instrumented) for the instrumentation-overhead measurement.
    pub overhead_passes: usize,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            principals: 1_000_000,
            requests: 2_000_000,
            clients: 4,
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(4),
            cache_shards: 64,
            batch: 64,
            zipf: 1.05,
            seed: 42,
            promote_every: 250_000,
            coherence_sample: 1_000,
            smoke: false,
            overhead_passes: 3,
        }
    }
}

impl LoadConfig {
    /// A small preset for CI smoke runs: the full machinery (promotions,
    /// coherence auditing, gates) over a population and request count
    /// that finish in seconds on a shared runner.
    pub fn smoke() -> Self {
        Self {
            principals: 10_000,
            requests: 150_000,
            clients: 2,
            promote_every: 40_000,
            coherence_sample: 500,
            smoke: true,
            ..Self::default()
        }
    }
}

/// What a load run measured.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// The configuration that produced this report.
    pub config: LoadConfig,
    /// Wall-clock seconds over the request phase.
    pub elapsed_secs: f64,
    /// Sustained decisions per second.
    pub decisions_per_sec: f64,
    /// Decisions served (must equal `config.requests`).
    pub decisions: u64,
    /// Allow verdicts.
    pub allows: u64,
    /// Deny verdicts.
    pub denials: u64,
    /// Cache hits.
    pub cache_hits: u64,
    /// Cache misses.
    pub cache_misses: u64,
    /// Whole-cache invalidations observed.
    pub invalidations: u64,
    /// Rules promoted (policy installs that took effect).
    pub promotions: u64,
    /// Final policy revision.
    pub policy_revision: u64,
    /// Median decision latency in microseconds (histogram estimate).
    pub p50_us: f64,
    /// 99th-percentile decision latency in microseconds.
    pub p99_us: f64,
    /// Replies audited against the uncached oracle.
    pub coherence_checked: u64,
    /// Audits skipped because an install raced the reply.
    pub coherence_skipped: u64,
    /// Audited replies that disagreed with the oracle (must be 0).
    pub coherence_mismatches: u64,
    /// Best uninstrumented calibration throughput (no metrics, no
    /// tracer) over the interleaved overhead passes.
    pub baseline_qps: f64,
    /// Best fully-instrumented calibration throughput (metrics + tail
    /// sampling + flight recorder) over the same passes.
    pub instrumented_qps: f64,
    /// Traces the tail sampler kept during the measured run.
    pub traces_kept: u64,
    /// Traces the tail sampler dropped whole during the measured run.
    pub traces_dropped: u64,
}

impl LoadReport {
    /// Cache hit fraction in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// No audited reply disagreed with the uncached oracle.
    pub fn coherent(&self) -> bool {
        self.coherence_mismatches == 0 && self.coherence_checked > 0
    }

    /// Every decision was counted and timed by the serve metrics.
    pub fn instrumented(&self) -> bool {
        self.decisions == self.config.requests as u64
            && self.allows + self.denials == self.decisions
            && self.p99_us > 0.0
    }

    /// Slowdown of the instrumented calibration run relative to the
    /// uninstrumented baseline, in percent (negative = noise in the
    /// instrumented side's favour).
    pub fn overhead_pct(&self) -> f64 {
        if self.baseline_qps <= 0.0 {
            0.0
        } else {
            (1.0 - self.instrumented_qps / self.baseline_qps) * 100.0
        }
    }

    /// The acceptance gates. Throughput and instrumentation overhead are
    /// only gated in full mode — smoke runs on shared CI hardware
    /// measure correctness, not speed.
    pub fn gates(&self) -> Vec<(&'static str, bool)> {
        let mut gates = vec![
            ("coherent", self.coherent()),
            ("hit_rate_ge_90", self.hit_rate() >= 0.90),
            ("instrumented", self.instrumented()),
            ("invalidations_observed", self.invalidations > 0),
        ];
        if !self.config.smoke {
            gates.push(("throughput_ge_100k", self.decisions_per_sec >= 100_000.0));
            gates.push(("population_ge_1m", self.config.principals >= 1_000_000));
            gates.push((
                "instrumentation_overhead_lt_5pct",
                self.overhead_pct() < 5.0,
            ));
        }
        gates
    }

    /// True iff every gate passes.
    pub fn passed(&self) -> bool {
        self.gates().iter().all(|(_, ok)| *ok)
    }

    /// The report as a JSON value tree (the `BENCH_serve.json` shape).
    pub fn to_json(&self) -> Value {
        let gates = self
            .gates()
            .into_iter()
            .map(|(name, ok)| (name.to_string(), Value::Bool(ok)))
            .collect();
        Value::Map(vec![
            ("bench".into(), Value::Str("serve_load".into())),
            (
                "config".into(),
                Value::Map(vec![
                    (
                        "principals".into(),
                        Value::U64(self.config.principals as u64),
                    ),
                    ("requests".into(), Value::U64(self.config.requests as u64)),
                    ("clients".into(), Value::U64(self.config.clients as u64)),
                    ("workers".into(), Value::U64(self.config.workers as u64)),
                    (
                        "cache_shards".into(),
                        Value::U64(self.config.cache_shards as u64),
                    ),
                    ("batch".into(), Value::U64(self.config.batch as u64)),
                    ("zipf_exponent".into(), Value::F64(self.config.zipf)),
                    ("seed".into(), Value::U64(self.config.seed)),
                    (
                        "promote_every".into(),
                        Value::U64(self.config.promote_every as u64),
                    ),
                    (
                        "coherence_sample".into(),
                        Value::U64(self.config.coherence_sample as u64),
                    ),
                    ("smoke".into(), Value::Bool(self.config.smoke)),
                ]),
            ),
            ("elapsed_secs".into(), Value::F64(self.elapsed_secs)),
            (
                "decisions_per_sec".into(),
                Value::F64(self.decisions_per_sec),
            ),
            ("decisions".into(), Value::U64(self.decisions)),
            ("allows".into(), Value::U64(self.allows)),
            ("denials".into(), Value::U64(self.denials)),
            ("cache_hits".into(), Value::U64(self.cache_hits)),
            ("cache_misses".into(), Value::U64(self.cache_misses)),
            ("hit_rate".into(), Value::F64(self.hit_rate())),
            ("invalidations".into(), Value::U64(self.invalidations)),
            ("promotions".into(), Value::U64(self.promotions)),
            ("policy_revision".into(), Value::U64(self.policy_revision)),
            ("p50_us".into(), Value::F64(self.p50_us)),
            ("p99_us".into(), Value::F64(self.p99_us)),
            (
                "coherence".into(),
                Value::Map(vec![
                    ("checked".into(), Value::U64(self.coherence_checked)),
                    (
                        "skipped_racing_install".into(),
                        Value::U64(self.coherence_skipped),
                    ),
                    ("mismatches".into(), Value::U64(self.coherence_mismatches)),
                ]),
            ),
            (
                "instrumentation".into(),
                Value::Map(vec![
                    ("baseline_qps".into(), Value::F64(self.baseline_qps)),
                    ("instrumented_qps".into(), Value::F64(self.instrumented_qps)),
                    ("overhead_pct".into(), Value::F64(self.overhead_pct())),
                    (
                        "sampling".into(),
                        Value::Map(vec![
                            ("keep_every".into(), Value::U64(BENCH_KEEP_EVERY)),
                            ("slow_trace_us".into(), Value::U64(BENCH_SLOW_TRACE_US)),
                            ("traces_kept".into(), Value::U64(self.traces_kept)),
                            ("traces_dropped".into(), Value::U64(self.traces_dropped)),
                        ]),
                    ),
                ]),
            ),
            ("gates".into(), Value::Map(gates)),
        ])
    }
}

/// One client's share of the request stream plus its audit tallies.
struct ClientTally {
    checked: u64,
    skipped: u64,
    mismatches: u64,
}

/// Builds the pool of promotable rules: ground cluster rules the
/// scenario's policy is missing (the very rules the refinement loop
/// would mine), cycled if the run promotes more than exist.
fn promotion_pool(scenario: &Scenario) -> Vec<Rule> {
    scenario
        .ground_truth()
        .iter()
        .map(Rule::from_ground)
        .collect()
}

/// The Zipf-shaped request generator, shared by the measured run and
/// the overhead-calibration passes so both sides do identical work.
struct Workload {
    population: ZipfPopulation,
    roles: Vec<String>,
    ops: Vec<String>,
    purposes: Vec<String>,
    op_skew: ZipfPopulation,
    purpose_skew: ZipfPopulation,
}

impl Workload {
    fn of(scenario: &Scenario, config: &LoadConfig) -> Arc<Self> {
        // Ground leaves of each decision dimension, by name.
        let leaves = |attr: &str| -> Vec<String> {
            let t = scenario.vocab.attribute(attr).expect("scenario attribute");
            t.all_leaves()
                .iter()
                .map(|&id| t.name(id).to_string())
                .collect()
        };
        let roles = leaves(ATTR_AUTHORIZED);
        let ops = leaves(ATTR_DATA);
        let purposes = leaves(ATTR_PURPOSE);
        // Access categories and purposes are heavily skewed too (a
        // ward's day is referrals and vitals, not one-off audit pulls);
        // the skew is what concentrates the decision-key working set and
        // lets the cache earn its hit rate against invalidation churn.
        let op_skew = ZipfPopulation::new(ops.len(), 1.8);
        let purpose_skew = ZipfPopulation::new(purposes.len(), 1.8);
        Arc::new(Self {
            population: ZipfPopulation::new(config.principals, config.zipf),
            roles,
            ops,
            purposes,
            op_skew,
            purpose_skew,
        })
    }

    fn request(&self, rng: &mut StdRng) -> DecisionRequest {
        let rank = self.population.sample(rng);
        // Role is a stable property of the principal.
        let role = &self.roles[rank % self.roles.len()];
        let op = &self.ops[self.op_skew.sample(rng)];
        let purpose = &self.purposes[self.purpose_skew.sample(rng)];
        // Realistic consent mix, including malformed tokens the service
        // must absorb structurally.
        let p: f64 = rng.gen();
        let consent = if p < 0.90 {
            "granted"
        } else if p < 0.95 {
            "opted-out"
        } else if p < 0.99 {
            "unspecified"
        } else {
            "malformed-⚠"
        };
        DecisionRequest::new(
            &ZipfPopulation::principal_name(rank),
            role,
            op,
            purpose,
            consent,
        )
    }
}

/// One overhead-calibration pass: a fresh service (no promoter, no
/// coherence auditing) absorbs `requests` workload decisions; returns
/// the sustained QPS. The instrumented side runs the full observability
/// stack — live metrics, tail-sampled tracer, flight recorder — the
/// baseline runs none of it; everything else is identical.
fn calibration_pass(
    config: &LoadConfig,
    scenario: &Scenario,
    workload: &Arc<Workload>,
    requests: usize,
    instrumented: bool,
) -> f64 {
    let mut serve = ServeConfig::new()
        .workers(config.workers)
        .cache_shards(config.cache_shards)
        .queue_capacity(config.clients * 4);
    if instrumented {
        serve = serve.metrics(MetricsRegistry::new()).tracer(bench_tracer());
    }
    let service = PolicyService::start(serve, &scenario.policy, &scenario.vocab);
    let clients_n = config.clients.max(1);
    let per_client = requests / clients_n;
    let batch = config.batch.max(1);
    let start = Instant::now();
    let clients: Vec<_> = (0..clients_n)
        .map(|c| {
            let transport = service.handle();
            let workload = Arc::clone(workload);
            let seed = config.seed ^ (0xCA11_B8A7 + c as u64);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut sent = 0usize;
                while sent < per_client {
                    let n = batch.min(per_client - sent);
                    let reqs = (0..n).map(|_| workload.request(&mut rng)).collect();
                    transport.decide_batch(reqs).expect("service up");
                    sent += n;
                }
            })
        })
        .collect();
    for c in clients {
        c.join().expect("calibration client");
    }
    let elapsed = start.elapsed().as_secs_f64();
    service.shutdown();
    (per_client * clients_n) as f64 / elapsed.max(1e-9)
}

/// Runs the load benchmark and returns the measured report.
pub fn run_load(config: LoadConfig) -> LoadReport {
    let scenario = Scenario::community_hospital();
    let registry = MetricsRegistry::new();
    // The measured run is the *instrumented* configuration: the report's
    // throughput includes live metrics and the tail-sampled tracer, and
    // the overhead gate proves that costs <5% against a bare baseline.
    let tracer = bench_tracer();
    let service = PolicyService::start(
        ServeConfig::new()
            .workers(config.workers)
            .cache_shards(config.cache_shards)
            .queue_capacity(config.clients * 4)
            .metrics(registry.clone())
            .tracer(tracer.clone()),
        &scenario.policy,
        &scenario.vocab,
    );

    let workload = Workload::of(&scenario, &config);
    let engine = Arc::clone(service.engine());

    // The promoter replays the refinement loop while clients run: one
    // mined rule installed every `promote_every` decisions.
    let stop = Arc::new(AtomicBool::new(false));
    let promotions = Arc::new(AtomicU64::new(0));
    let promoter = if config.promote_every > 0 {
        let engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let promotions = Arc::clone(&promotions);
        let decisions = engine.obs().decisions.clone();
        let pool = promotion_pool(&scenario);
        let mut policy = scenario.policy.clone();
        let every = config.promote_every as u64;
        Some(std::thread::spawn(move || {
            let mut next = every;
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                if decisions.get() >= next {
                    policy.push(pool[i % pool.len()].clone());
                    if engine.install_policy(&policy) {
                        promotions.fetch_add(1, Ordering::Relaxed);
                    }
                    i += 1;
                    next += every;
                } else {
                    std::thread::sleep(std::time::Duration::from_micros(200));
                }
            }
        }))
    } else {
        None
    };

    let per_client = config.requests / config.clients.max(1);
    let remainder = config.requests - per_client * config.clients.max(1);
    let start = Instant::now();
    let clients: Vec<_> = (0..config.clients.max(1))
        .map(|c| {
            let transport = service.handle();
            let engine = Arc::clone(&engine);
            let workload = Arc::clone(&workload);
            let quota = per_client + if c == 0 { remainder } else { 0 };
            let batch = config.batch.max(1);
            let sample_every = config.coherence_sample;
            let seed = config.seed.wrapping_add(c as u64);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut tally = ClientTally {
                    checked: 0,
                    skipped: 0,
                    mismatches: 0,
                };
                let mut sent = 0usize;
                while sent < quota {
                    let n = batch.min(quota - sent);
                    let reqs: Vec<DecisionRequest> =
                        (0..n).map(|_| workload.request(&mut rng)).collect();
                    let replies = transport
                        .decide_batch(reqs.clone())
                        .expect("service up for the whole run");
                    sent += n;
                    if sample_every > 0 {
                        for (i, reply) in replies.iter().enumerate() {
                            if !(sent + i).is_multiple_of(sample_every) {
                                continue;
                            }
                            // Oracle probe: recompute uncached and compare.
                            let fresh = engine.decide_uncached(&reqs[i]);
                            if fresh.policy_revision != reply.policy_revision {
                                tally.skipped += 1; // raced an install
                            } else {
                                tally.checked += 1;
                                if fresh.verdict != reply.verdict {
                                    tally.mismatches += 1;
                                }
                            }
                        }
                    }
                }
                tally
            })
        })
        .collect();

    let mut checked = 0u64;
    let mut skipped = 0u64;
    let mut mismatches = 0u64;
    for c in clients {
        let t = c.join().expect("client thread");
        checked += t.checked;
        skipped += t.skipped;
        mismatches += t.mismatches;
    }
    let elapsed = start.elapsed().as_secs_f64();
    stop.store(true, Ordering::Release);
    if let Some(p) = promoter {
        let _ = p.join();
    }

    let obs = engine.obs().clone();
    let qps = obs.decisions.get() as f64 / elapsed.max(1e-9);
    obs.qps.set(qps);
    let latency = obs.decision_latency.snapshot();
    let snapshot = service.shutdown();
    let samples = tracer.sample_stats();

    // Interleaved A/B calibration for the overhead gate: alternate bare
    // and instrumented passes (best-of-N each) so thermal / scheduler
    // drift hits both sides equally rather than biasing whichever ran
    // last.
    let calib_requests = (config.requests / 10).clamp(20_000, 500_000);
    let mut baseline_qps = 0.0f64;
    let mut instrumented_qps = 0.0f64;
    for _ in 0..config.overhead_passes.max(3) {
        baseline_qps = baseline_qps.max(calibration_pass(
            &config,
            &scenario,
            &workload,
            calib_requests,
            false,
        ));
        instrumented_qps = instrumented_qps.max(calibration_pass(
            &config,
            &scenario,
            &workload,
            calib_requests,
            true,
        ));
    }

    LoadReport {
        elapsed_secs: elapsed,
        decisions_per_sec: qps,
        decisions: snapshot.decisions,
        allows: obs.allows.get(),
        denials: obs.denials.get(),
        cache_hits: snapshot.cache.hits,
        cache_misses: snapshot.cache.misses,
        invalidations: snapshot.cache.invalidations,
        promotions: promotions.load(Ordering::Relaxed),
        policy_revision: snapshot.policy_revision,
        p50_us: latency.quantile(0.50).unwrap_or(0.0) * 1e6,
        p99_us: latency.quantile(0.99).unwrap_or(0.0) * 1e6,
        coherence_checked: checked,
        coherence_skipped: skipped,
        coherence_mismatches: mismatches,
        baseline_qps,
        instrumented_qps,
        traces_kept: samples.kept_traces,
        traces_dropped: samples.dropped_traces,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_load_run_passes_every_gate() {
        let mut config = LoadConfig::smoke();
        config.requests = 60_000;
        config.promote_every = 20_000;
        config.coherence_sample = 200;
        let report = run_load(config);
        assert_eq!(report.decisions, 60_000);
        assert!(report.invalidations > 0, "promoter must have fired");
        assert!(report.coherence_checked > 0);
        assert_eq!(report.coherence_mismatches, 0);
        assert!(report.passed(), "gates: {:?}", report.gates());
    }

    #[test]
    fn report_json_carries_the_gates() {
        let mut config = LoadConfig::smoke();
        config.requests = 5_000;
        config.principals = 1_000;
        config.promote_every = 1_000;
        let report = run_load(config);
        let json = serde_json::to_string_pretty(&report.to_json()).unwrap();
        assert!(json.contains("\"bench\": \"serve_load\""));
        assert!(json.contains("hit_rate_ge_90"));
        assert!(json.contains("decisions_per_sec"));
    }
}
