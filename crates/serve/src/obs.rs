//! Serve-layer instrumentation: the metric catalog of the decision
//! service, wired through `prima-obs`.
//!
//! Catalog (all names stable — dashboards and the CI gate key on them):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `prima_serve_decisions_total` | counter | decisions served (cached or fresh) |
//! | `prima_serve_allows_total` | counter | `Allow` verdicts |
//! | `prima_serve_denials_total` | counter | `Deny` verdicts (any reason) |
//! | `prima_serve_cache_hits_total` | counter | decisions answered from the cache |
//! | `prima_serve_cache_misses_total` | counter | decisions that probed the matcher |
//! | `prima_serve_cache_invalidations_total` | counter | whole-cache epoch advances |
//! | `prima_serve_policy_installs_total` | counter | policy snapshots installed |
//! | `prima_serve_decisions_per_sec` | gauge | sustained QPS, set by the bench |
//! | `prima_serve_decision_seconds` | histogram | per-decision latency |
//! | `prima_serve_shed_total` | counter | requests shed under overload (`SRV-011`) |
//! | `prima_serve_deadline_expired_total` | counter | requests abandoned past deadline (`SRV-012`) |
//! | `prima_serve_emergency_total` | counter | emergency-lane (break-the-glass) decisions served |
//! | `prima_serve_worker_panics_total` | counter | worker panics caught |
//! | `prima_serve_worker_restarts_total` | counter | workers respawned by the supervisor |
//! | `prima_serve_install_failures_total` | counter | policy installs rejected (validation or hold) |
//! | `prima_serve_breaker_open_total` | counter | service-level breaker openings (crash loops) |
//! | `prima_serve_degraded` | gauge | 1 while serving degraded (pinned last-known-good) |
//! | `prima_serve_flight_dumps_total` | counter | flight-recorder dumps triggered |
//! | `prima_slo_burn_rate{slo,window}` | gauge | SLO burn rate per window (via [`prima_obs::SloEngine`]) |
//! | `prima_slo_breached{slo}` | gauge | 1 while both windows burn past the factor |
//!
//! The latency histogram uses sub-microsecond buckets: a cache hit is a
//! hash probe under an uncontended mutex and lands well below the 1µs
//! floor of the pipeline-wide default buckets.

use prima_obs::{Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, Tracer};

/// Decision-latency bucket upper bounds, 50ns–10ms. Cache hits cluster
/// in the sub-µs range; misses (full matcher probe) in the µs range.
pub const DECISION_LATENCY_BUCKETS: [f64; 12] = [
    50e-9, 100e-9, 250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 50e-6, 100e-6, 1e-3, 10e-3,
];

/// Handles to every serve-layer metric. Cheap to clone; a disabled set
/// (all no-ops) costs nothing on the hot path.
#[derive(Debug, Clone)]
pub struct ServeObs {
    /// Total decisions served.
    pub decisions: Counter,
    /// Allow verdicts.
    pub allows: Counter,
    /// Deny verdicts.
    pub denials: Counter,
    /// Cache hits.
    pub cache_hits: Counter,
    /// Cache misses.
    pub cache_misses: Counter,
    /// Whole-cache invalidations (epoch advances).
    pub cache_invalidations: Counter,
    /// Policy snapshots installed into the engine.
    pub policy_installs: Counter,
    /// Sustained decisions per second, published by the load bench.
    pub qps: Gauge,
    /// Per-decision latency.
    pub decision_latency: Histogram,
    /// Requests shed under overload (answered `SRV-011`).
    pub shed: Counter,
    /// Requests abandoned past their deadline (answered `SRV-012`).
    pub deadline_expired: Counter,
    /// Emergency-lane (break-the-glass) decisions served.
    pub emergency: Counter,
    /// Worker panics caught by the supervision layer.
    pub worker_panics: Counter,
    /// Workers respawned by the supervisor after a panic.
    pub worker_restarts: Counter,
    /// Policy installs rejected (failed validation, or held while the
    /// service breaker is open).
    pub install_failures: Counter,
    /// Service-level circuit-breaker openings (worker crash loops).
    pub breaker_open: Counter,
    /// 1 while the engine serves degraded from the pinned
    /// last-known-good snapshot, 0 otherwise.
    pub degraded: Gauge,
    /// Flight-recorder dumps triggered by incidents.
    pub flight_dumps: Counter,
    /// Span source for install/coherence events.
    pub tracer: Tracer,
    /// Black-box ring the incident paths dump (disabled by default).
    pub flight: FlightRecorder,
}

impl ServeObs {
    /// Registers the catalog on `registry`, emitting spans to `tracer`.
    pub fn over(registry: &MetricsRegistry, tracer: Tracer) -> Self {
        Self::with_flight(registry, tracer, FlightRecorder::disabled())
    }

    /// [`ServeObs::over`] plus a live flight recorder for the incident
    /// paths (worker panic, breaker open, degraded entry) to dump.
    pub fn with_flight(registry: &MetricsRegistry, tracer: Tracer, flight: FlightRecorder) -> Self {
        Self {
            decisions: registry.counter(
                "prima_serve_decisions_total",
                "Policy decisions served (cached or fresh)",
            ),
            allows: registry.counter("prima_serve_allows_total", "Allow verdicts served"),
            denials: registry.counter("prima_serve_denials_total", "Deny verdicts served"),
            cache_hits: registry.counter(
                "prima_serve_cache_hits_total",
                "Decisions answered from the sharded cache",
            ),
            cache_misses: registry.counter(
                "prima_serve_cache_misses_total",
                "Decisions that fell through to a matcher probe",
            ),
            cache_invalidations: registry.counter(
                "prima_serve_cache_invalidations_total",
                "Whole-cache epoch invalidations",
            ),
            policy_installs: registry.counter(
                "prima_serve_policy_installs_total",
                "Policy snapshots installed into the decision engine",
            ),
            qps: registry.gauge(
                "prima_serve_decisions_per_sec",
                "Sustained decision throughput measured by the load bench",
            ),
            decision_latency: registry.histogram_with(
                "prima_serve_decision_seconds",
                "Per-decision latency (cache hits and misses)",
                &[],
                &DECISION_LATENCY_BUCKETS,
            ),
            shed: registry.counter(
                "prima_serve_shed_total",
                "Requests shed under overload (SRV-011)",
            ),
            deadline_expired: registry.counter(
                "prima_serve_deadline_expired_total",
                "Requests abandoned past their deadline (SRV-012)",
            ),
            emergency: registry.counter(
                "prima_serve_emergency_total",
                "Emergency-lane (break-the-glass) decisions served",
            ),
            worker_panics: registry.counter(
                "prima_serve_worker_panics_total",
                "Worker panics caught by the supervision layer",
            ),
            worker_restarts: registry.counter(
                "prima_serve_worker_restarts_total",
                "Workers respawned by the supervisor",
            ),
            install_failures: registry.counter(
                "prima_serve_install_failures_total",
                "Policy installs rejected by validation or an install hold",
            ),
            breaker_open: registry.counter(
                "prima_serve_breaker_open_total",
                "Service-level circuit-breaker openings (worker crash loops)",
            ),
            degraded: registry.gauge(
                "prima_serve_degraded",
                "1 while serving degraded from the pinned last-known-good policy",
            ),
            flight_dumps: registry.counter(
                "prima_serve_flight_dumps_total",
                "Flight-recorder dumps triggered by incidents",
            ),
            tracer,
            flight,
        }
    }

    /// Dumps the flight recorder for an incident and counts it; a no-op
    /// when no recorder is attached.
    pub fn incident(&self, trigger: &str, trace_id: u64) {
        if self.flight.dump(trigger, trace_id).is_some() {
            self.flight_dumps.inc();
        }
    }

    /// An all-no-op set for callers that don't observe.
    pub fn disabled() -> Self {
        Self::over(&MetricsRegistry::disabled(), Tracer::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_and_counts() {
        let registry = MetricsRegistry::new();
        let obs = ServeObs::over(&registry, Tracer::disabled());
        obs.decisions.inc();
        obs.cache_hits.add(3);
        obs.qps.set(125_000.0);
        obs.decision_latency.observe(75e-9);

        assert_eq!(obs.decisions.get(), 1);
        assert_eq!(obs.cache_hits.get(), 3);
        let snap = obs.decision_latency.snapshot();
        assert_eq!(snap.count(), 1);
        // Sub-µs observation lands inside the bucket range, not overflow.
        assert_eq!(snap.overflow(), 0);
        let families = registry.gather();
        assert!(families
            .iter()
            .any(|f| f.name == "prima_serve_decision_seconds"));
    }

    #[test]
    fn disabled_catalog_is_inert() {
        let obs = ServeObs::disabled();
        obs.decisions.inc();
        obs.decision_latency.observe(1.0);
        obs.incident("worker_panic", 3);
        assert_eq!(obs.decisions.get(), 0);
        assert_eq!(obs.decision_latency.snapshot().count(), 0);
        assert_eq!(obs.flight_dumps.get(), 0, "no recorder, no dump");
    }

    #[test]
    fn incident_dumps_and_counts_when_a_recorder_is_attached() {
        let registry = MetricsRegistry::new();
        let flight = FlightRecorder::new(16);
        let obs = ServeObs::with_flight(&registry, Tracer::disabled(), flight.clone());
        obs.flight.note("breadcrumb", &[]);
        obs.incident("breaker_open", 0);
        assert_eq!(obs.flight_dumps.get(), 1);
        let dump = flight.last_dump().unwrap();
        assert_eq!(dump.trigger, "breaker_open");
        assert_eq!(dump.records.len(), 1);
    }
}
