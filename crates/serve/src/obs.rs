//! Serve-layer instrumentation: the metric catalog of the decision
//! service, wired through `prima-obs`.
//!
//! Catalog (all names stable — dashboards and the CI gate key on them):
//!
//! | metric | kind | meaning |
//! |---|---|---|
//! | `prima_serve_decisions_total` | counter | decisions served (cached or fresh) |
//! | `prima_serve_allows_total` | counter | `Allow` verdicts |
//! | `prima_serve_denials_total` | counter | `Deny` verdicts (any reason) |
//! | `prima_serve_cache_hits_total` | counter | decisions answered from the cache |
//! | `prima_serve_cache_misses_total` | counter | decisions that probed the matcher |
//! | `prima_serve_cache_invalidations_total` | counter | whole-cache epoch advances |
//! | `prima_serve_policy_installs_total` | counter | policy snapshots installed |
//! | `prima_serve_decisions_per_sec` | gauge | sustained QPS, set by the bench |
//! | `prima_serve_decision_seconds` | histogram | per-decision latency |
//!
//! The latency histogram uses sub-microsecond buckets: a cache hit is a
//! hash probe under an uncontended mutex and lands well below the 1µs
//! floor of the pipeline-wide default buckets.

use prima_obs::{Counter, Gauge, Histogram, MetricsRegistry, Tracer};

/// Decision-latency bucket upper bounds, 50ns–10ms. Cache hits cluster
/// in the sub-µs range; misses (full matcher probe) in the µs range.
pub const DECISION_LATENCY_BUCKETS: [f64; 12] = [
    50e-9, 100e-9, 250e-9, 500e-9, 1e-6, 2.5e-6, 5e-6, 10e-6, 50e-6, 100e-6, 1e-3, 10e-3,
];

/// Handles to every serve-layer metric. Cheap to clone; a disabled set
/// (all no-ops) costs nothing on the hot path.
#[derive(Debug, Clone)]
pub struct ServeObs {
    /// Total decisions served.
    pub decisions: Counter,
    /// Allow verdicts.
    pub allows: Counter,
    /// Deny verdicts.
    pub denials: Counter,
    /// Cache hits.
    pub cache_hits: Counter,
    /// Cache misses.
    pub cache_misses: Counter,
    /// Whole-cache invalidations (epoch advances).
    pub cache_invalidations: Counter,
    /// Policy snapshots installed into the engine.
    pub policy_installs: Counter,
    /// Sustained decisions per second, published by the load bench.
    pub qps: Gauge,
    /// Per-decision latency.
    pub decision_latency: Histogram,
    /// Span source for install/coherence events.
    pub tracer: Tracer,
}

impl ServeObs {
    /// Registers the catalog on `registry`, emitting spans to `tracer`.
    pub fn over(registry: &MetricsRegistry, tracer: Tracer) -> Self {
        Self {
            decisions: registry.counter(
                "prima_serve_decisions_total",
                "Policy decisions served (cached or fresh)",
            ),
            allows: registry.counter("prima_serve_allows_total", "Allow verdicts served"),
            denials: registry.counter("prima_serve_denials_total", "Deny verdicts served"),
            cache_hits: registry.counter(
                "prima_serve_cache_hits_total",
                "Decisions answered from the sharded cache",
            ),
            cache_misses: registry.counter(
                "prima_serve_cache_misses_total",
                "Decisions that fell through to a matcher probe",
            ),
            cache_invalidations: registry.counter(
                "prima_serve_cache_invalidations_total",
                "Whole-cache epoch invalidations",
            ),
            policy_installs: registry.counter(
                "prima_serve_policy_installs_total",
                "Policy snapshots installed into the decision engine",
            ),
            qps: registry.gauge(
                "prima_serve_decisions_per_sec",
                "Sustained decision throughput measured by the load bench",
            ),
            decision_latency: registry.histogram_with(
                "prima_serve_decision_seconds",
                "Per-decision latency (cache hits and misses)",
                &[],
                &DECISION_LATENCY_BUCKETS,
            ),
            tracer,
        }
    }

    /// An all-no-op set for callers that don't observe.
    pub fn disabled() -> Self {
        Self::over(&MetricsRegistry::disabled(), Tracer::disabled())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_registers_and_counts() {
        let registry = MetricsRegistry::new();
        let obs = ServeObs::over(&registry, Tracer::disabled());
        obs.decisions.inc();
        obs.cache_hits.add(3);
        obs.qps.set(125_000.0);
        obs.decision_latency.observe(75e-9);

        assert_eq!(obs.decisions.get(), 1);
        assert_eq!(obs.cache_hits.get(), 3);
        let snap = obs.decision_latency.snapshot();
        assert_eq!(snap.count(), 1);
        // Sub-µs observation lands inside the bucket range, not overflow.
        assert_eq!(snap.overflow(), 0);
        let families = registry.gather();
        assert!(families
            .iter()
            .any(|f| f.name == "prima_serve_decision_seconds"));
    }

    #[test]
    fn disabled_catalog_is_inert() {
        let obs = ServeObs::disabled();
        obs.decisions.inc();
        obs.decision_latency.observe(1.0);
        assert_eq!(obs.decisions.get(), 0);
        assert_eq!(obs.decision_latency.snapshot().count(), 0);
    }
}
