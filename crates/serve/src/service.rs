//! The service: a worker pool behind a transport trait.
//!
//! [`Transport`] is the request/reply seam a remote carrier (HTTP, gRPC,
//! a message bus) would implement; this crate ships two in-process
//! implementations:
//!
//! * [`InProcessTransport`] — the real service shape: requests flow over
//!   a bounded crossbeam channel to a pool of worker threads, each
//!   request carrying its own rendezvous reply channel. Clone the handle
//!   freely; it is the client stub.
//! * [`DirectTransport`] — calls the engine inline on the caller's
//!   thread. Zero queueing; the harness for tests and for measuring the
//!   engine floor without channel overhead.
//!
//! Both share one [`DecisionEngine`], so a policy install through the
//! service is visible to every worker's next decision.

use crate::api::{DecisionReply, DecisionRequest, RewriteReply, RewriteRequest};
use crate::cache::ServeCacheStats;
use crate::engine::DecisionEngine;
use crate::obs::ServeObs;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use prima_hdb::ColumnMap;
use prima_model::Policy;
use prima_obs::{MetricsRegistry, Tracer};
use prima_vocab::Vocabulary;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Service configuration. Builder-style; the defaults serve a test
/// deployment (workers = available parallelism, 64 shards).
#[derive(Debug)]
pub struct ServeConfig {
    workers: usize,
    cache_shards: usize,
    queue_capacity: usize,
    metrics: MetricsRegistry,
    tracer: Tracer,
    columns: Option<ColumnMap>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            workers,
            cache_shards: 64,
            queue_capacity: 1024,
            metrics: MetricsRegistry::disabled(),
            tracer: Tracer::disabled(),
            columns: None,
        }
    }
}

impl ServeConfig {
    /// Starts from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker-pool size (clamped to ≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Decision-cache shard count.
    pub fn cache_shards(mut self, n: usize) -> Self {
        self.cache_shards = n;
        self
    }

    /// Request-queue depth before senders block (back-pressure bound).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Registers serve metrics on `registry`.
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = registry;
        self
    }

    /// Emits serve spans to `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Installs a column→category schema map for rewrite requests.
    pub fn columns(mut self, map: ColumnMap) -> Self {
        self.columns = Some(map);
        self
    }
}

/// Transport-level failures: the service is unreachable (shut down), not
/// a decision outcome — decisions themselves always reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The worker pool has shut down; the request was not served.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Closed => write!(f, "policy-decision service is shut down"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The request/reply seam. Implementations must be shareable across
/// client threads.
pub trait Transport: Send + Sync {
    /// Decides one request.
    fn decide(&self, req: DecisionRequest) -> Result<DecisionReply, ServeError>;

    /// Decides a batch in request order. The default round-trips one by
    /// one; [`InProcessTransport`] ships the whole batch in one message.
    fn decide_batch(&self, reqs: Vec<DecisionRequest>) -> Result<Vec<DecisionReply>, ServeError> {
        reqs.into_iter().map(|r| self.decide(r)).collect()
    }

    /// Rewrites a multi-column query.
    fn rewrite(&self, req: RewriteRequest) -> Result<RewriteReply, ServeError>;
}

/// One queued unit of work, carrying its rendezvous reply channel.
enum Job {
    Decide(DecisionRequest, Sender<DecisionReply>),
    DecideBatch(Vec<DecisionRequest>, Sender<Vec<DecisionReply>>),
    Rewrite(RewriteRequest, Sender<RewriteReply>),
    /// Poison pill: the receiving worker exits. One is queued per worker
    /// on shutdown, behind all in-flight requests.
    Shutdown,
}

/// The cloneable client stub of a running [`PolicyService`].
#[derive(Clone)]
pub struct InProcessTransport {
    queue: Sender<Job>,
}

impl Transport for InProcessTransport {
    fn decide(&self, req: DecisionRequest) -> Result<DecisionReply, ServeError> {
        let (tx, rx) = bounded(1);
        self.queue
            .send(Job::Decide(req, tx))
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    fn decide_batch(&self, reqs: Vec<DecisionRequest>) -> Result<Vec<DecisionReply>, ServeError> {
        let (tx, rx) = bounded(1);
        self.queue
            .send(Job::DecideBatch(reqs, tx))
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }

    fn rewrite(&self, req: RewriteRequest) -> Result<RewriteReply, ServeError> {
        let (tx, rx) = bounded(1);
        self.queue
            .send(Job::Rewrite(req, tx))
            .map_err(|_| ServeError::Closed)?;
        rx.recv().map_err(|_| ServeError::Closed)
    }
}

/// A transport that calls the engine inline on the caller's thread — no
/// queue, no workers. Shares the engine (and cache) with the pool.
#[derive(Clone)]
pub struct DirectTransport {
    engine: Arc<DecisionEngine>,
}

impl Transport for DirectTransport {
    fn decide(&self, req: DecisionRequest) -> Result<DecisionReply, ServeError> {
        Ok(self.engine.decide(&req))
    }

    fn rewrite(&self, req: RewriteRequest) -> Result<RewriteReply, ServeError> {
        Ok(self.engine.rewrite(&req))
    }
}

/// A point-in-time view of service health, taken by [`PolicyService::snapshot`]
/// (and returned once more by [`PolicyService::shutdown`]).
#[derive(Debug, Clone, Copy)]
pub struct ServeSnapshot {
    /// Cache counters.
    pub cache: ServeCacheStats,
    /// Total decisions served.
    pub decisions: u64,
    /// The revision of the installed policy.
    pub policy_revision: u64,
}

/// The running service: engine + worker pool.
pub struct PolicyService {
    engine: Arc<DecisionEngine>,
    queue: Sender<Job>,
    workers: Vec<JoinHandle<()>>,
}

fn worker_loop(engine: Arc<DecisionEngine>, jobs: Receiver<Job>) {
    // Runs until a poison pill arrives or every sender is dropped;
    // replies to dead clients are silently discarded.
    while let Ok(job) = jobs.recv() {
        match job {
            Job::Decide(req, reply) => {
                let _ = reply.send(engine.decide(&req));
            }
            Job::DecideBatch(reqs, reply) => {
                let out = reqs.iter().map(|r| engine.decide(r)).collect();
                let _ = reply.send(out);
            }
            Job::Rewrite(req, reply) => {
                let _ = reply.send(engine.rewrite(&req));
            }
            Job::Shutdown => break,
        }
    }
}

impl PolicyService {
    /// Builds the engine over `policy`/`vocab` and starts the worker pool.
    pub fn start(config: ServeConfig, policy: &Policy, vocab: &Vocabulary) -> Self {
        let obs = ServeObs::over(&config.metrics, config.tracer.clone());
        let engine = Arc::new(DecisionEngine::new(
            policy,
            Arc::new(vocab.clone()),
            config.cache_shards,
            config.columns,
            obs,
        ));
        // The vendored bounded channel blocks senders at capacity, giving
        // natural back-pressure; unbounded would hide overload.
        let (tx, rx) = if config.queue_capacity == usize::MAX {
            unbounded()
        } else {
            bounded(config.queue_capacity)
        };
        let workers = (0..config.workers)
            .map(|i| {
                let engine = Arc::clone(&engine);
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("prima-serve-{i}"))
                    .spawn(move || worker_loop(engine, rx))
                    .expect("spawn serve worker")
            })
            .collect();
        Self {
            engine,
            queue: tx,
            workers,
        }
    }

    /// A cloneable client stub over the worker pool.
    pub fn handle(&self) -> InProcessTransport {
        InProcessTransport {
            queue: self.queue.clone(),
        }
    }

    /// A transport that bypasses the pool and calls the shared engine
    /// inline (tests; engine-floor measurements).
    pub fn direct(&self) -> DirectTransport {
        DirectTransport {
            engine: Arc::clone(&self.engine),
        }
    }

    /// The shared engine (for installs and uncached oracle probes).
    pub fn engine(&self) -> &Arc<DecisionEngine> {
        &self.engine
    }

    /// Installs a new policy snapshot; every worker's next decision sees
    /// it. Returns `true` when the snapshot differed.
    pub fn install_policy(&self, policy: &Policy) -> bool {
        self.engine.install_policy(policy)
    }

    /// Samples service health.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            cache: self.engine.cache_stats(),
            decisions: self.engine.obs().decisions.get(),
            policy_revision: self.engine.policy_revision(),
        }
    }

    /// Drains the pool: queues one poison pill per worker (behind all
    /// in-flight requests), joins them, and returns the final snapshot.
    /// Once every worker has exited the channel is fully disconnected,
    /// so surviving handles fail closed with [`ServeError::Closed`].
    pub fn shutdown(self) -> ServeSnapshot {
        let Self {
            engine,
            queue,
            workers,
        } = self;
        for _ in 0..workers.len() {
            let _ = queue.send(Job::Shutdown);
        }
        drop(queue);
        for w in workers {
            let _ = w.join();
        }
        ServeSnapshot {
            cache: engine.cache_stats(),
            decisions: engine.obs().decisions.get(),
            policy_revision: engine.policy_revision(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{DenyReason, Verdict};
    use prima_model::{Rule, StoreTag};
    use prima_vocab::{ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};

    fn fixture() -> (Policy, Vocabulary) {
        let vocab = Vocabulary::builder()
            .attribute(ATTR_DATA)
            .category("clinical", &["referral", "lab-result"])
            .attribute(ATTR_PURPOSE)
            .category("care", &["treatment"])
            .attribute(ATTR_AUTHORIZED)
            .category("staff", &["nurse", "physician"])
            .build()
            .expect("test vocabulary");
        let policy = Policy::with_rules(
            StoreTag::PolicyStore,
            vec![Rule::of(&[
                (ATTR_DATA, "referral"),
                (ATTR_PURPOSE, "treatment"),
                (ATTR_AUTHORIZED, "nurse"),
            ])],
        );
        (policy, vocab)
    }

    fn allow_req() -> DecisionRequest {
        DecisionRequest::new("p-1", "nurse", "referral", "treatment", "granted")
    }

    #[test]
    fn pool_serves_decisions_from_many_clients() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(
            ServeConfig::new()
                .workers(4)
                .metrics(MetricsRegistry::new()),
            &policy,
            &vocab,
        );
        let handle = service.handle();
        let clients: Vec<_> = (0..8)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    (0..50)
                        .map(|_| h.decide(allow_req()).expect("service up"))
                        .filter(|r| r.verdict.is_allow())
                        .count()
                })
            })
            .collect();
        let allowed: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(allowed, 400);
        let snap = service.shutdown();
        assert_eq!(snap.decisions, 400);
        // Concurrent cold misses can race before the first insert lands,
        // but once warm every decision hits.
        assert!(snap.cache.hits >= 390, "cache hits: {}", snap.cache.hits);
    }

    #[test]
    fn batch_replies_preserve_request_order() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(2), &policy, &vocab);
        let batch = vec![
            allow_req(),
            DecisionRequest::new("p-2", "physician", "referral", "treatment", "granted"),
            DecisionRequest::new("p-3", "nurse", "referral", "treatment", "opted-out"),
        ];
        let replies = service.handle().decide_batch(batch).expect("service up");
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0].verdict, Verdict::Allow);
        assert_eq!(replies[1].verdict, Verdict::Deny(DenyReason::PolicyDenied));
        assert_eq!(
            replies[2].verdict,
            Verdict::Deny(DenyReason::ConsentWithheld)
        );
        service.shutdown();
    }

    #[test]
    fn install_through_the_service_reaches_every_worker() {
        let (mut policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(3), &policy, &vocab);
        let handle = service.handle();
        let denied = DecisionRequest::new("p-1", "physician", "lab-result", "treatment", "granted");
        assert!(!handle.decide(denied.clone()).unwrap().verdict.is_allow());

        policy.push(Rule::of(&[
            (ATTR_DATA, "lab-result"),
            (ATTR_PURPOSE, "treatment"),
            (ATTR_AUTHORIZED, "physician"),
        ]));
        assert!(service.install_policy(&policy));
        // Every subsequent decision — from any worker — sees the new rule.
        for _ in 0..20 {
            assert!(handle.decide(denied.clone()).unwrap().verdict.is_allow());
        }
        service.shutdown();
    }

    #[test]
    fn requests_after_shutdown_fail_closed() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(1), &policy, &vocab);
        let handle = service.handle();
        service.shutdown();
        assert_eq!(handle.decide(allow_req()), Err(ServeError::Closed));
    }

    #[test]
    fn direct_transport_shares_the_pool_cache() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(1), &policy, &vocab);
        service.handle().decide(allow_req()).unwrap(); // warm via pool
        let direct = service.direct();
        direct.decide(allow_req()).unwrap(); // hit via direct path
        let snap = service.shutdown();
        assert_eq!(snap.cache.hits, 1);
        assert_eq!(snap.cache.misses, 1);
    }
}
