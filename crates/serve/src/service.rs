//! The service: a supervised worker pool behind a transport trait.
//!
//! [`Transport`] is the request/reply seam a remote carrier (HTTP, gRPC,
//! a message bus) would implement; this crate ships two in-process
//! implementations:
//!
//! * [`InProcessTransport`] — the real service shape: requests flow over
//!   bounded crossbeam channels to a pool of worker threads, each
//!   request carrying its own rendezvous reply channel. Clone the handle
//!   freely; it is the client stub.
//! * [`DirectTransport`] — calls the engine inline on the caller's
//!   thread. Zero queueing; the harness for tests and for measuring the
//!   engine floor without channel overhead.
//!
//! Both share one [`DecisionEngine`], so a policy install through the
//! service is visible to every worker's next decision.
//!
//! # Overload protection (SRV-011 / SRV-012)
//!
//! Admission is two-lane. [`Priority::Emergency`] (break-the-glass)
//! requests go to a dedicated bounded lane that workers always drain
//! first and that is never load-shed; [`Priority::Bulk`] requests go to
//! the main lane. With a [`ServeConfig::shed_threshold`] configured, a
//! bulk request arriving while the lane is at or past the threshold is
//! rejected *at admission* with a [`DenyReason::Overloaded`] (`SRV-011`)
//! reply — the caller learns immediately instead of queueing into a
//! collapse; without a threshold the lane exerts classic back-pressure
//! (senders block at capacity). A [`ServeConfig::max_queue_age`] adds
//! age-based shedding at dequeue: bulk work that sat queued longer than
//! the bound is answered `SRV-011` without burning a worker.
//!
//! Requests may carry a deadline budget ([`DecisionRequest::deadline_us`],
//! measured from admission). Deadlines are checked at enqueue, at
//! dequeue, and again at reply; expired work is abandoned with
//! [`DenyReason::DeadlineExceeded`] (`SRV-012`).
//!
//! # Supervision and degraded mode
//!
//! Every job runs under `catch_unwind`: a panicking decision answers its
//! client fail-closed (`SRV-010`) and the worker thread exits. A
//! supervisor thread joins dead workers and respawns them (mirroring
//! prima-stream's dead-shard respawn), counting restarts into the
//! `prima_serve_*` metrics. Repeated crash loops trip a service-level
//! [`CircuitBreaker`]: while it is open, respawns pause for the cooldown
//! and policy installs are held ([`InstallError::InstallsHeld`]) — the
//! engine keeps answering from the pinned last-known-good snapshot with
//! the cache read-only. [`PolicyService::health`] surfaces the whole
//! state machine as a [`ServeHealth`] report.

use crate::api::{
    DecisionReply, DecisionRequest, DenyReason, Priority, RewriteReply, RewriteRequest, Verdict,
};
use crate::cache::ServeCacheStats;
use crate::engine::{DecisionEngine, InstallError};
use crate::obs::ServeObs;
use crossbeam::channel::{bounded, Receiver, Sender, TryRecvError, TrySendError};
use parking_lot::Mutex;
use prima_audit::{BreakerConfig, BreakerState, CircuitBreaker};
use prima_hdb::ColumnMap;
use prima_model::Policy;
use prima_obs::{
    FlightRecorder, MetricsRegistry, SloEngine, SloHealth, SloSpec, SpanGuard, Tracer,
};
use prima_vocab::Vocabulary;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How long an idle worker blocks on the bulk lane before re-checking
/// the emergency lane. Bounds the extra latency an emergency request
/// can see when every worker is parked on an empty bulk lane.
const EMERGENCY_POLL: Duration = Duration::from_micros(100);

/// Service configuration. Builder-style; the defaults serve a test
/// deployment (workers = available parallelism, 64 shards, back-pressure
/// admission, no shedding, no supervision-breaker tripping in practice).
#[derive(Debug)]
pub struct ServeConfig {
    workers: usize,
    cache_shards: usize,
    queue_capacity: usize,
    emergency_capacity: usize,
    shed_threshold: Option<usize>,
    max_queue_age: Option<Duration>,
    supervision_interval: Duration,
    breaker: BreakerConfig,
    decision_delay: Duration,
    panic_token: Option<Arc<str>>,
    metrics: MetricsRegistry,
    tracer: Tracer,
    flight: Option<FlightRecorder>,
    columns: Option<ColumnMap>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        let workers = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(4);
        Self {
            workers,
            cache_shards: 64,
            queue_capacity: 1024,
            emergency_capacity: 1024,
            shed_threshold: None,
            max_queue_age: None,
            supervision_interval: Duration::from_millis(2),
            breaker: BreakerConfig {
                failure_threshold: 3,
                cooldown_rounds: 5,
            },
            decision_delay: Duration::ZERO,
            panic_token: None,
            metrics: MetricsRegistry::disabled(),
            tracer: Tracer::disabled(),
            flight: None,
            columns: None,
        }
    }
}

impl ServeConfig {
    /// Starts from the defaults.
    pub fn new() -> Self {
        Self::default()
    }

    /// Worker-pool size (clamped to ≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n.max(1);
        self
    }

    /// Decision-cache shard count.
    pub fn cache_shards(mut self, n: usize) -> Self {
        self.cache_shards = n;
        self
    }

    /// Bulk-lane depth before senders block (back-pressure bound).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n.max(1);
        self
    }

    /// Emergency-lane depth. Emergency admission blocks (never sheds)
    /// when the lane is full, so this bounds worst-case emergency queue
    /// wait to `capacity / service_rate`.
    pub fn emergency_capacity(mut self, n: usize) -> Self {
        self.emergency_capacity = n.max(1);
        self
    }

    /// Enables admission-control shedding: a bulk request arriving while
    /// the bulk lane holds ≥ `n` queued jobs is answered `SRV-011`
    /// immediately instead of queueing. Without this, bulk admission
    /// exerts back-pressure (blocks at capacity) — the right default for
    /// cooperative in-process clients; a fronting RPC server enables
    /// shedding so overload is rejected early instead of queued into
    /// collapse.
    pub fn shed_threshold(mut self, n: usize) -> Self {
        self.shed_threshold = Some(n);
        self
    }

    /// Enables age-based shedding at dequeue: bulk work that waited
    /// longer than `age` in the queue is answered `SRV-011` without
    /// occupying a worker.
    pub fn max_queue_age(mut self, age: Duration) -> Self {
        self.max_queue_age = Some(age);
        self
    }

    /// Supervisor poll interval (also the service breaker's round clock).
    pub fn supervision_interval(mut self, interval: Duration) -> Self {
        self.supervision_interval = interval.max(Duration::from_micros(100));
        self
    }

    /// Tunes the service-level crash-loop breaker: `failure_threshold`
    /// consecutive supervision ticks with worker crashes open it;
    /// respawns and policy installs resume after `cooldown_rounds` ticks
    /// if the probe respawn survives.
    pub fn breaker(mut self, config: BreakerConfig) -> Self {
        self.breaker = config;
        self
    }

    /// Adds a fixed simulated per-decision service time (surge bench and
    /// chaos suites use this to model downstream HDB latency and make
    /// offered load exceed capacity deterministically).
    pub fn decision_delay(mut self, delay: Duration) -> Self {
        self.decision_delay = delay;
        self
    }

    /// Arms deterministic panic injection: a request whose `principal`
    /// equals `token` panics the worker that picks it up (the client
    /// still gets a fail-closed `SRV-010` reply). Chaos suites pair this
    /// with [`crate::FaultyTransport`]'s panic-inject script.
    pub fn panic_token(mut self, token: &str) -> Self {
        self.panic_token = Some(Arc::from(token));
        self
    }

    /// Registers serve metrics on `registry`.
    pub fn metrics(mut self, registry: MetricsRegistry) -> Self {
        self.metrics = registry;
        self
    }

    /// Emits serve spans to `tracer`.
    pub fn tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Attaches a flight recorder for the incident paths (worker panic,
    /// breaker open, degraded entry) to dump. Defaults to the tracer's
    /// own recorder (see [`Tracer::configured`]), so a traced service
    /// gets black-box dumps without extra wiring.
    pub fn flight(mut self, recorder: FlightRecorder) -> Self {
        self.flight = Some(recorder);
        self
    }

    /// Installs a column→category schema map for rewrite requests.
    pub fn columns(mut self, map: ColumnMap) -> Self {
        self.columns = Some(map);
        self
    }
}

/// Transport-level failures: the request was not decided — distinct
/// from a `Deny` verdict, which *is* a decision.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The worker pool has shut down; the request was not served.
    Closed,
    /// An injected transport fault dropped the request before it reached
    /// the service (see [`crate::FaultyTransport`]).
    Dropped,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Closed => write!(f, "policy-decision service is shut down"),
            ServeError::Dropped => write!(f, "request dropped by an injected transport fault"),
        }
    }
}

impl std::error::Error for ServeError {}

/// The request/reply seam. Implementations must be shareable across
/// client threads.
pub trait Transport: Send + Sync {
    /// Decides one request.
    fn decide(&self, req: DecisionRequest) -> Result<DecisionReply, ServeError>;

    /// Decides a batch in request order. The default round-trips one by
    /// one; [`InProcessTransport`] ships the whole batch in one message.
    fn decide_batch(&self, reqs: Vec<DecisionRequest>) -> Result<Vec<DecisionReply>, ServeError> {
        reqs.into_iter().map(|r| self.decide(r)).collect()
    }

    /// Rewrites a multi-column query.
    fn rewrite(&self, req: RewriteRequest) -> Result<RewriteReply, ServeError>;
}

/// One queued unit of work, carrying its rendezvous reply channel.
enum Job {
    Decide(DecisionRequest, Sender<DecisionReply>),
    DecideBatch(Vec<DecisionRequest>, Sender<Vec<DecisionReply>>),
    Rewrite(RewriteRequest, Sender<RewriteReply>),
    /// Poison pill: the receiving worker exits. One is queued per live
    /// worker on shutdown, behind all in-flight bulk requests.
    Shutdown,
}

/// A job plus its admission instant — the clock deadlines and queue-age
/// shedding are measured against.
struct Envelope {
    admitted: Instant,
    job: Job,
}

/// How a worker thread ended.
enum WorkerExit {
    /// Orderly: poison pill or disconnected channels.
    Shutdown,
    /// A job panicked; the supervisor should respawn.
    Crashed,
}

/// Everything a worker (or a respawn of one) needs. Cheap to clone.
#[derive(Clone)]
struct WorkerCtx {
    engine: Arc<DecisionEngine>,
    bulk: Receiver<Envelope>,
    emergency: Receiver<Envelope>,
    max_queue_age: Option<Duration>,
    decision_delay: Duration,
    panic_token: Option<Arc<str>>,
}

/// The cloneable client stub of a running [`PolicyService`].
#[derive(Clone)]
pub struct InProcessTransport {
    bulk: Sender<Envelope>,
    emergency: Sender<Envelope>,
    engine: Arc<DecisionEngine>,
    closed: Arc<AtomicBool>,
    shed_threshold: Option<usize>,
}

/// Attaches decision provenance to the root span of a traced request:
/// the verdict (and structured deny code), the policy revision that
/// answered, and whether the cache did. Denied decisions are marked
/// interesting so tail-based sampling always keeps them.
fn finish_root(root: &mut SpanGuard, reply: &DecisionReply) {
    root.field("policy_revision", reply.policy_revision);
    root.field("cached", reply.cached);
    match &reply.verdict {
        Verdict::Allow => root.field("verdict", "allow"),
        Verdict::Deny(reason) => {
            root.field("verdict", "deny");
            root.field("deny_code", reason.code());
            root.mark_interesting();
        }
    }
}

impl InProcessTransport {
    fn deny(&self, reason: DenyReason) -> DecisionReply {
        DecisionReply {
            verdict: Verdict::Deny(reason),
            rewritten_query: None,
            policy_revision: self.engine.policy_revision(),
            cached: false,
        }
    }

    /// Sheds one bulk request at admission.
    fn shed(&self) -> DecisionReply {
        self.engine.obs().shed.inc();
        self.deny(DenyReason::Overloaded)
    }

    /// True when admission control should reject more bulk work now.
    fn bulk_saturated(&self) -> bool {
        self.shed_threshold
            .is_some_and(|limit| self.bulk.len() >= limit)
    }

    /// Routes an envelope to its lane. Emergency traffic bypasses the
    /// shedder entirely (blocking send — bounded by the lane capacity);
    /// bulk traffic is shed when the lane is saturated.
    fn admit(&self, priority: Priority, env: Envelope) -> Result<(), Rejected> {
        if self.closed.load(Ordering::Acquire) {
            return Err(Rejected::Closed);
        }
        match priority {
            Priority::Emergency => self.emergency.send(env).map_err(|_| Rejected::Closed),
            Priority::Bulk => {
                if self.bulk_saturated() {
                    return Err(Rejected::Shed);
                }
                match self.shed_threshold {
                    // Shedding mode: never block the caller.
                    Some(_) => self.bulk.try_send(env).map_err(|e| match e {
                        TrySendError::Full(_) => Rejected::Shed,
                        TrySendError::Disconnected(_) => Rejected::Closed,
                    }),
                    // Back-pressure mode: block at capacity.
                    None => self.bulk.send(env).map_err(|_| Rejected::Closed),
                }
            }
        }
    }
}

/// Why admission refused an envelope.
enum Rejected {
    /// Bulk lane saturated — answer `SRV-011` without queueing.
    Shed,
    /// Service closed (or the lane disconnected mid-send).
    Closed,
}

impl Transport for InProcessTransport {
    fn decide(&self, mut req: DecisionRequest) -> Result<DecisionReply, ServeError> {
        let admitted = Instant::now();
        // The trace starts at admission: the root span owns the whole
        // client-observed latency, and its context rides the request
        // through the queue so the worker span parents under it.
        let mut root = self.engine.obs().tracer.root_span("serve.decide");
        req = req.with_trace(root.context());
        root.field("priority", req.priority.label());
        if req.priority == Priority::Emergency {
            // Break-the-glass is always interesting to the tail sampler.
            root.mark_interesting();
        }
        // Enqueue-time deadline check: a zero (or already-spent) budget
        // never enters the queue.
        if req.deadline_us == Some(0) {
            self.engine.obs().deadline_expired.inc();
            let reply = self.deny(DenyReason::DeadlineExceeded);
            finish_root(&mut root, &reply);
            return Ok(reply);
        }
        let (tx, rx) = bounded(1);
        let priority = req.priority;
        let env = Envelope {
            admitted,
            job: Job::Decide(req, tx),
        };
        match self.admit(priority, env) {
            Ok(()) => {
                let reply = rx.recv().map_err(|_| ServeError::Closed)?;
                finish_root(&mut root, &reply);
                Ok(reply)
            }
            Err(Rejected::Shed) => {
                let reply = self.shed();
                finish_root(&mut root, &reply);
                Ok(reply)
            }
            Err(Rejected::Closed) => Err(ServeError::Closed),
        }
    }

    fn decide_batch(
        &self,
        mut reqs: Vec<DecisionRequest>,
    ) -> Result<Vec<DecisionReply>, ServeError> {
        let admitted = Instant::now();
        // One root span covers the batch; every member is stamped with
        // its context so per-request worker spans share the trace.
        let mut root = self.engine.obs().tracer.root_span("serve.decide_batch");
        let ctx = root.context();
        for req in &mut reqs {
            req.trace_id = ctx.trace_id;
            req.trace_span = ctx.parent_span;
        }
        root.field("batch", reqs.len());
        // A batch rides the emergency lane iff any member is emergency.
        let priority = if reqs.iter().any(|r| r.priority == Priority::Emergency) {
            Priority::Emergency
        } else {
            Priority::Bulk
        };
        root.field("priority", priority.label());
        if priority == Priority::Emergency {
            root.mark_interesting();
        }
        let n = reqs.len();
        let (tx, rx) = bounded(1);
        let env = Envelope {
            admitted,
            job: Job::DecideBatch(reqs, tx),
        };
        match self.admit(priority, env) {
            Ok(()) => {
                let replies = rx.recv().map_err(|_| ServeError::Closed)?;
                if replies.iter().any(|r| !matches!(r.verdict, Verdict::Allow)) {
                    root.mark_interesting();
                }
                Ok(replies)
            }
            Err(Rejected::Shed) => {
                root.mark_interesting();
                Ok((0..n).map(|_| self.shed()).collect())
            }
            Err(Rejected::Closed) => Err(ServeError::Closed),
        }
    }

    fn rewrite(&self, req: RewriteRequest) -> Result<RewriteReply, ServeError> {
        let (tx, rx) = bounded(1);
        let env = Envelope {
            admitted: Instant::now(),
            job: Job::Rewrite(req, tx),
        };
        match self.admit(Priority::Bulk, env) {
            Ok(()) => rx.recv().map_err(|_| ServeError::Closed),
            // A rewrite has no single-verdict shed shape; saturation is
            // reported as unavailability.
            Err(_) => Err(ServeError::Closed),
        }
    }
}

/// A transport that calls the engine inline on the caller's thread — no
/// queue, no workers. Shares the engine (and cache) with the pool.
#[derive(Clone)]
pub struct DirectTransport {
    engine: Arc<DecisionEngine>,
}

impl Transport for DirectTransport {
    fn decide(&self, req: DecisionRequest) -> Result<DecisionReply, ServeError> {
        Ok(self.engine.decide(&req))
    }

    fn rewrite(&self, req: RewriteRequest) -> Result<RewriteReply, ServeError> {
        Ok(self.engine.rewrite(&req))
    }
}

/// A point-in-time view of service counters, taken by
/// [`PolicyService::snapshot`] (and returned once more by
/// [`PolicyService::shutdown`]).
#[derive(Debug, Clone, Copy)]
pub struct ServeSnapshot {
    /// Cache counters.
    pub cache: ServeCacheStats,
    /// Total decisions served.
    pub decisions: u64,
    /// The revision of the installed policy.
    pub policy_revision: u64,
}

/// The service's overall condition, derived in [`PolicyService::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceState {
    /// Full service: all workers alive, breaker closed, installs flowing.
    Healthy,
    /// Serving, but something is pinned or reduced: a failed install
    /// pinned the last-known-good policy, installs are held, or part of
    /// the worker pool is down awaiting respawn.
    Degraded,
    /// The crash-loop breaker is open (or probing): respawns paused,
    /// installs held, decisions served from the pinned snapshot.
    CrashLoop,
}

/// A structured health report: the supervisor state machine, the
/// engine's degraded/pinned status, and the overload counters, in one
/// sample.
#[derive(Debug, Clone, Copy)]
pub struct ServeHealth {
    /// Derived overall state.
    pub state: ServiceState,
    /// The policy revision currently serving (the pinned last-known-good
    /// revision while degraded).
    pub policy_revision: u64,
    /// True while the engine is pinned to last-known-good after a failed
    /// install (cache read-only).
    pub degraded: bool,
    /// True while policy installs are held (service breaker not closed).
    pub installs_held: bool,
    /// Service-level crash-loop breaker state.
    pub breaker: BreakerState,
    /// Configured worker-pool size.
    pub workers_configured: usize,
    /// Workers currently alive.
    pub workers_alive: usize,
    /// Workers respawned by the supervisor since start.
    pub worker_restarts: u64,
    /// Worker panics caught since start.
    pub worker_panics: u64,
    /// Requests shed under overload (`SRV-011`) since start.
    pub shed: u64,
    /// Requests expired past their deadline (`SRV-012`) since start.
    pub deadline_expired: u64,
    /// Bulk-lane depth at sampling time.
    pub queued_bulk: usize,
    /// Emergency-lane depth at sampling time.
    pub queued_emergency: usize,
    /// Burn-rate roll-up of the serving SLOs (p99 latency, shed rate,
    /// worker-panic rate), clocked on supervision ticks.
    pub slo: SloHealth,
    /// Flight-recorder dumps triggered by incidents since start.
    pub flight_dumps: u64,
}

impl ServeHealth {
    /// True iff the service is fully healthy.
    pub fn healthy(&self) -> bool {
        self.state == ServiceState::Healthy
    }
}

/// Supervisor bookkeeping shared between the service handle and the
/// supervisor thread.
struct SupervisorShared {
    /// One slot per configured worker; `None` while dead/awaiting respawn.
    slots: Mutex<Vec<Option<JoinHandle<WorkerExit>>>>,
    breaker: Mutex<CircuitBreaker>,
    restarts: AtomicU64,
    shutting_down: AtomicBool,
}

/// The running service: engine + supervised worker pool.
pub struct PolicyService {
    engine: Arc<DecisionEngine>,
    bulk_tx: Sender<Envelope>,
    emergency_tx: Sender<Envelope>,
    bulk_rx: Receiver<Envelope>,
    emergency_rx: Receiver<Envelope>,
    closed: Arc<AtomicBool>,
    sup: Arc<SupervisorShared>,
    supervisor: Option<JoinHandle<()>>,
    workers_configured: usize,
    shed_threshold: Option<usize>,
    slo: SloEngine,
}

/// Processes one decision; returns the reply, or `None` when the job
/// panicked (the panic is already counted and the worker must restart).
fn decide_one(
    ctx: &WorkerCtx,
    admitted: Instant,
    req: &DecisionRequest,
    batched: bool,
) -> Option<DecisionReply> {
    let obs = ctx.engine.obs();
    // Restore the admission-side trace context: the worker span parents
    // under the `serve.decide` root even though it runs on a pool thread
    // on the far side of the queue hop. Batch members share their
    // batch's worker span instead (one span per channel hop, not one per
    // request — the instrumentation-overhead gate depends on it) and
    // only materialize a per-request span for an interesting outcome.
    let mut span = (!batched).then(|| {
        let mut s = obs.tracer.span_in("serve.worker", req.trace_context());
        s.field("queue_wait_us", admitted.elapsed().as_micros());
        s
    });
    let deny = |reason| DecisionReply {
        verdict: Verdict::Deny(reason),
        rewritten_query: None,
        policy_revision: ctx.engine.policy_revision(),
        cached: false,
    };
    // Age-based shedding: stale bulk work is not worth a worker.
    if req.priority == Priority::Bulk {
        if let Some(max_age) = ctx.max_queue_age {
            if admitted.elapsed() > max_age {
                obs.shed.inc();
                let s = span
                    .get_or_insert_with(|| obs.tracer.span_in("serve.worker", req.trace_context()));
                s.field("outcome", "aged_out");
                s.mark_interesting();
                return Some(deny(DenyReason::Overloaded));
            }
        }
    }
    let deadline = req
        .deadline_us
        .map(|us| admitted + Duration::from_micros(us));
    // Dequeue-time deadline check: work whose remaining budget cannot
    // cover the known decision latency is abandoned unstarted — a
    // worker's time is never spent computing a verdict that could only
    // ever be reported late.
    if deadline.is_some_and(|d| Instant::now() + ctx.decision_delay >= d) {
        obs.deadline_expired.inc();
        let s = span.get_or_insert_with(|| obs.tracer.span_in("serve.worker", req.trace_context()));
        s.field("outcome", "deadline_at_dequeue");
        s.mark_interesting();
        return Some(deny(DenyReason::DeadlineExceeded));
    }
    let outcome = catch_unwind(AssertUnwindSafe(|| {
        if let Some(token) = &ctx.panic_token {
            assert!(
                req.principal != token.as_ref(),
                "injected worker panic (chaos)"
            );
        }
        if !ctx.decision_delay.is_zero() {
            std::thread::sleep(ctx.decision_delay);
        }
        ctx.engine.decide(req)
    }));
    match outcome {
        Ok(reply) => {
            // Reply-time deadline check: a verdict computed too late is
            // answered honestly as expired, never as a late Allow.
            if deadline.is_some_and(|d| Instant::now() >= d) {
                obs.deadline_expired.inc();
                let s = span
                    .get_or_insert_with(|| obs.tracer.span_in("serve.worker", req.trace_context()));
                s.field("outcome", "deadline_at_reply");
                s.mark_interesting();
                return Some(deny(DenyReason::DeadlineExceeded));
            }
            if req.priority == Priority::Emergency {
                obs.emergency.inc();
            }
            Some(reply)
        }
        Err(_) => {
            obs.worker_panics.inc();
            let s =
                span.get_or_insert_with(|| obs.tracer.span_in("serve.worker", req.trace_context()));
            s.field("outcome", "panic");
            s.mark_interesting();
            // Close the span *before* dumping so the panicking
            // request's own span is in the black box it triggers.
            drop(span);
            obs.incident("worker_panic", req.trace_id);
            None
        }
    }
}

/// Runs one envelope. Returns `true` when the worker must exit because a
/// job panicked. Replies to dead clients are silently discarded.
fn process(ctx: &WorkerCtx, env: Envelope) -> bool {
    match env.job {
        Job::Decide(req, reply) => match decide_one(ctx, env.admitted, &req, false) {
            Some(out) => {
                let _ = reply.send(out);
                false
            }
            None => {
                // Fail closed to the client, then crash the worker.
                let _ = reply.send(DecisionReply {
                    verdict: Verdict::Deny(DenyReason::Internal),
                    rewritten_query: None,
                    policy_revision: ctx.engine.policy_revision(),
                    cached: false,
                });
                true
            }
        },
        Job::DecideBatch(reqs, reply) => {
            // One worker span covers the whole batch (its members were
            // all stamped with the same admission context).
            let batch_ctx = reqs
                .first()
                .map(|r| r.trace_context())
                .unwrap_or(prima_obs::TraceContext::NONE);
            let mut batch_span = ctx
                .engine
                .obs()
                .tracer
                .span_in("serve.worker_batch", batch_ctx);
            batch_span.field("batch", reqs.len());
            batch_span.field("queue_wait_us", env.admitted.elapsed().as_micros());
            let mut crashed = false;
            let mut out = Vec::with_capacity(reqs.len());
            for req in &reqs {
                if crashed {
                    // The worker is already doomed; answer the rest of
                    // the batch fail-closed rather than deciding under a
                    // possibly-poisoned thread state.
                    out.push(DecisionReply {
                        verdict: Verdict::Deny(DenyReason::Internal),
                        rewritten_query: None,
                        policy_revision: ctx.engine.policy_revision(),
                        cached: false,
                    });
                    continue;
                }
                match decide_one(ctx, env.admitted, req, true) {
                    Some(r) => out.push(r),
                    None => {
                        crashed = true;
                        batch_span.mark_interesting();
                        out.push(DecisionReply {
                            verdict: Verdict::Deny(DenyReason::Internal),
                            rewritten_query: None,
                            policy_revision: ctx.engine.policy_revision(),
                            cached: false,
                        });
                    }
                }
            }
            let _ = reply.send(out);
            crashed
        }
        Job::Rewrite(req, reply) => {
            match catch_unwind(AssertUnwindSafe(|| ctx.engine.rewrite(&req))) {
                Ok(out) => {
                    let _ = reply.send(out);
                    false
                }
                Err(_) => {
                    ctx.engine.obs().worker_panics.inc();
                    true
                }
            }
        }
        Job::Shutdown => unreachable!("pills are intercepted by worker_loop"),
    }
}

fn worker_loop(ctx: WorkerCtx) -> WorkerExit {
    loop {
        // Emergency lane first, always: break-the-glass work never waits
        // behind bulk.
        match ctx.emergency.try_recv() {
            Ok(env) => {
                if matches!(env.job, Job::Shutdown) {
                    return WorkerExit::Shutdown;
                }
                if process(&ctx, env) {
                    return WorkerExit::Crashed;
                }
                continue;
            }
            Err(TryRecvError::Empty) | Err(TryRecvError::Disconnected) => {}
        }
        // Then block (briefly) on the bulk lane; the timeout bounds how
        // long an emergency request can wait for a parked worker.
        match ctx.bulk.recv_timeout(EMERGENCY_POLL) {
            Ok(env) => {
                if matches!(env.job, Job::Shutdown) {
                    return WorkerExit::Shutdown;
                }
                if process(&ctx, env) {
                    return WorkerExit::Crashed;
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {}
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                // Bulk senders all gone; drain any emergency leftovers,
                // then exit cleanly.
                while let Ok(env) = ctx.emergency.try_recv() {
                    if matches!(env.job, Job::Shutdown) {
                        return WorkerExit::Shutdown;
                    }
                    if process(&ctx, env) {
                        return WorkerExit::Crashed;
                    }
                }
                return WorkerExit::Shutdown;
            }
        }
    }
}

fn spawn_worker(index: usize, generation: u64, ctx: WorkerCtx) -> JoinHandle<WorkerExit> {
    std::thread::Builder::new()
        .name(format!("prima-serve-{index}.{generation}"))
        .spawn(move || worker_loop(ctx))
        .expect("spawn serve worker")
}

/// The supervisor: joins dead workers, respawns them, and trips the
/// service breaker on crash loops. The breaker is clocked on supervision
/// ticks (a logical round clock, like the federation breaker), so its
/// behaviour is a function of the configured interval, not wall-clock
/// noise.
/// How slow a per-tick p99 decision latency may be before the tick
/// counts against the `decision_p99` SLO budget (seconds).
const SLO_P99_TARGET_SECONDS: f64 = 1e-3;

/// Per-tick SLO accounting state: the previous tick's counter values,
/// so each supervision tick feeds the burn-rate windows a delta.
struct SloTicker {
    decisions: u64,
    shed: u64,
    panics: u64,
    latency: prima_obs::HistogramSnapshot,
}

impl SloTicker {
    fn new(obs: &ServeObs) -> Self {
        Self {
            decisions: obs.decisions.get(),
            shed: obs.shed.get(),
            panics: obs.worker_panics.get(),
            latency: obs.decision_latency.snapshot(),
        }
    }

    /// Feeds one supervision tick into the burn-rate windows.
    fn tick(&mut self, obs: &ServeObs, slo: &SloEngine) {
        let decisions = obs.decisions.get();
        let shed = obs.shed.get();
        let panics = obs.worker_panics.get();
        let d_dec = decisions.saturating_sub(self.decisions) as f64;
        let d_shed = shed.saturating_sub(self.shed) as f64;
        let d_panics = panics.saturating_sub(self.panics) as f64;
        // Shed rate: shed admissions never reach the decisions counter,
        // so offered load this tick is decided + shed.
        slo.record("shed_rate", d_shed, d_dec + d_shed);
        // Panic rate: a panicked request is abandoned before the
        // decisions counter, so it joins the denominator explicitly.
        slo.record("worker_panic_rate", d_panics, d_dec + d_panics);
        // Latency: a tick is bad when its own p99 (the delta histogram,
        // not the lifetime one) exceeds the target.
        let latency = obs.decision_latency.snapshot();
        if let Some(this_tick) = latency.delta(&self.latency) {
            let (bad, total) = if this_tick.count() == 0 {
                (0.0, 0.0) // quiet tick still ages the windows
            } else {
                match this_tick.quantile(0.99) {
                    Some(p99) if p99 > SLO_P99_TARGET_SECONDS => (1.0, 1.0),
                    _ => (0.0, 1.0),
                }
            };
            slo.record("decision_p99", bad, total);
        }
        self.decisions = decisions;
        self.shed = shed;
        self.panics = panics;
        self.latency = latency;
    }
}

fn supervisor_loop(
    shared: Arc<SupervisorShared>,
    ctx: WorkerCtx,
    interval: Duration,
    obs: ServeObs,
    slo: SloEngine,
) {
    let mut tick = 0u64;
    let mut slo_ticker = SloTicker::new(&obs);
    let mut was_degraded = ctx.engine.is_degraded();
    while !shared.shutting_down.load(Ordering::Acquire) {
        std::thread::sleep(interval);
        tick += 1;
        let mut crashed = 0usize;
        let mut dead: Vec<usize> = Vec::new();
        {
            let mut slots = shared.slots.lock();
            for (i, slot) in slots.iter_mut().enumerate() {
                match slot {
                    Some(handle) if handle.is_finished() => {
                        let exit = slot.take().expect("slot checked Some").join();
                        match exit {
                            Ok(WorkerExit::Shutdown) => {}
                            // A caught crash, or a panic that escaped the
                            // per-job guard entirely.
                            Ok(WorkerExit::Crashed) | Err(_) => {
                                crashed += 1;
                                dead.push(i);
                            }
                        }
                    }
                    None => dead.push(i),
                    Some(_) => {}
                }
            }
        }
        let mut breaker = shared.breaker.lock();
        let before = breaker.state();
        if crashed > 0 {
            breaker.record_failure(tick);
        }
        if breaker.allows(tick) {
            if !dead.is_empty() {
                let mut slots = shared.slots.lock();
                for i in dead {
                    if slots[i].is_none() {
                        slots[i] = Some(spawn_worker(i, tick, ctx.clone()));
                        shared.restarts.fetch_add(1, Ordering::Relaxed);
                        obs.worker_restarts.inc();
                    }
                }
            } else if crashed == 0 && breaker.state() == BreakerState::HalfOpen {
                // The probe respawn survived a full tick: close.
                breaker.record_success();
            }
        }
        let after = breaker.state();
        if before != BreakerState::Open && after == BreakerState::Open {
            obs.breaker_open.inc();
            let mut span = obs.tracer.span("serve.breaker_open");
            span.field("tick", tick);
            drop(span);
            // The crash loop is exactly when the recent past matters:
            // dump the black box before the evidence is overwritten.
            obs.incident("breaker_open", 0);
        }
        // Installs are held (and the cache is read-only) until the
        // breaker proves the pool stable again.
        ctx.engine.hold_installs(after != BreakerState::Closed);
        // Degraded-mode *entry* (a failed install pinned last-known-good)
        // is an incident; staying degraded is not.
        let degraded = ctx.engine.is_degraded();
        if degraded && !was_degraded {
            obs.incident("degraded", 0);
        }
        was_degraded = degraded;
        slo_ticker.tick(&obs, &slo);
    }
}

impl PolicyService {
    /// Builds the engine over `policy`/`vocab` and starts the supervised
    /// worker pool.
    pub fn start(config: ServeConfig, policy: &Policy, vocab: &Vocabulary) -> Self {
        // The incident recorder: an explicit one wins, otherwise the
        // tracer's own (so a traced service dumps the spans it records).
        let flight = config
            .flight
            .clone()
            .unwrap_or_else(|| config.tracer.flight());
        let obs = ServeObs::with_flight(&config.metrics, config.tracer.clone(), flight);
        // The serving SLOs (burn-rate windows are clocked on supervision
        // ticks): p99 decision latency under 1ms, at most 5% of offered
        // load shed, at most 0.1% of requests lost to worker panics.
        let slo = SloEngine::new(&config.metrics);
        slo.track(SloSpec::new("decision_p99", 0.01));
        slo.track(SloSpec::new("shed_rate", 0.05));
        slo.track(SloSpec::new("worker_panic_rate", 0.001));
        let engine = Arc::new(DecisionEngine::new(
            policy,
            Arc::new(vocab.clone()),
            config.cache_shards,
            config.columns,
            obs.clone(),
        ));
        // Two bounded lanes: bulk exerts back-pressure (or sheds, when a
        // threshold is configured); emergency is drained first and never
        // shed.
        let (bulk_tx, bulk_rx) = bounded(config.queue_capacity);
        let (emergency_tx, emergency_rx) = bounded(config.emergency_capacity);
        let ctx = WorkerCtx {
            engine: Arc::clone(&engine),
            bulk: bulk_rx.clone(),
            emergency: emergency_rx.clone(),
            max_queue_age: config.max_queue_age,
            decision_delay: config.decision_delay,
            panic_token: config.panic_token.clone(),
        };
        let slots = (0..config.workers)
            .map(|i| Some(spawn_worker(i, 0, ctx.clone())))
            .collect();
        let sup = Arc::new(SupervisorShared {
            slots: Mutex::new(slots),
            breaker: Mutex::new(CircuitBreaker::new(config.breaker)),
            restarts: AtomicU64::new(0),
            shutting_down: AtomicBool::new(false),
        });
        let supervisor = {
            let shared = Arc::clone(&sup);
            let obs = obs.clone();
            let slo = slo.clone();
            let interval = config.supervision_interval;
            let ctx = ctx.clone();
            std::thread::Builder::new()
                .name("prima-serve-supervisor".into())
                .spawn(move || supervisor_loop(shared, ctx, interval, obs, slo))
                .expect("spawn serve supervisor")
        };
        Self {
            engine,
            bulk_tx,
            emergency_tx,
            bulk_rx,
            emergency_rx,
            closed: Arc::new(AtomicBool::new(false)),
            sup,
            supervisor: Some(supervisor),
            workers_configured: config.workers,
            shed_threshold: config.shed_threshold,
            slo,
        }
    }

    /// A cloneable client stub over the worker pool.
    pub fn handle(&self) -> InProcessTransport {
        InProcessTransport {
            bulk: self.bulk_tx.clone(),
            emergency: self.emergency_tx.clone(),
            engine: Arc::clone(&self.engine),
            closed: Arc::clone(&self.closed),
            shed_threshold: self.shed_threshold,
        }
    }

    /// A transport that bypasses the pool and calls the shared engine
    /// inline (tests; engine-floor measurements).
    pub fn direct(&self) -> DirectTransport {
        DirectTransport {
            engine: Arc::clone(&self.engine),
        }
    }

    /// The shared engine (for installs and uncached oracle probes).
    pub fn engine(&self) -> &Arc<DecisionEngine> {
        &self.engine
    }

    /// The serving-SLO burn-rate engine (dashboards, tests).
    pub fn slo(&self) -> &SloEngine {
        &self.slo
    }

    /// The flight recorder the incident paths dump into (disabled unless
    /// configured via [`ServeConfig::flight`] or a recording tracer).
    pub fn flight(&self) -> FlightRecorder {
        self.engine.obs().flight.clone()
    }

    /// Installs a new policy snapshot; every worker's next decision sees
    /// it. Returns `true` when the snapshot differed. A rejected or held
    /// install returns `false` and pins the last-known-good snapshot —
    /// use [`Self::try_install_policy`] to observe the reason.
    pub fn install_policy(&self, policy: &Policy) -> bool {
        self.engine.install_policy(policy)
    }

    /// Fallible install: surfaces validation failures and install holds
    /// (see [`DecisionEngine::try_install_policy`]).
    pub fn try_install_policy(&self, policy: &Policy) -> Result<bool, InstallError> {
        self.engine.try_install_policy(policy)
    }

    /// Samples service counters.
    pub fn snapshot(&self) -> ServeSnapshot {
        ServeSnapshot {
            cache: self.engine.cache_stats(),
            decisions: self.engine.obs().decisions.get(),
            policy_revision: self.engine.policy_revision(),
        }
    }

    /// Samples the full health state machine: supervisor, breaker,
    /// degraded/pinned engine status, overload counters, lane depths.
    pub fn health(&self) -> ServeHealth {
        let workers_alive = {
            let slots = self.sup.slots.lock();
            slots
                .iter()
                .filter(|s| s.as_ref().is_some_and(|h| !h.is_finished()))
                .count()
        };
        let breaker = self.sup.breaker.lock().state();
        let obs = self.engine.obs();
        let degraded = self.engine.is_degraded();
        let installs_held = self.engine.installs_held();
        let state = if breaker != BreakerState::Closed {
            ServiceState::CrashLoop
        } else if degraded || installs_held || workers_alive < self.workers_configured {
            ServiceState::Degraded
        } else {
            ServiceState::Healthy
        };
        ServeHealth {
            state,
            policy_revision: self.engine.policy_revision(),
            degraded,
            installs_held,
            breaker,
            workers_configured: self.workers_configured,
            workers_alive,
            worker_restarts: self.sup.restarts.load(Ordering::Relaxed),
            worker_panics: obs.worker_panics.get(),
            shed: obs.shed.get(),
            deadline_expired: obs.deadline_expired.get(),
            queued_bulk: self.bulk_rx.len(),
            queued_emergency: self.emergency_rx.len(),
            slo: self.slo.health(),
            flight_dumps: obs.flight.dump_count(),
        }
    }

    /// Drains the pool and returns the final snapshot.
    ///
    /// Order matters for the no-hang guarantee: (1) new admissions are
    /// refused (`closed`), (2) the supervisor stops (no more respawns),
    /// (3) one poison pill per live worker is queued on the bulk lane —
    /// behind in-flight bulk work — and the workers are joined, (4) a
    /// detached reaper drains both lanes until every transport handle is
    /// dropped. Step (4) closes the classic shutdown race: a client that
    /// passed the `closed` check concurrently with shutdown may enqueue
    /// *behind* the pills; its envelope (and rendezvous reply sender) is
    /// dropped by the reaper, so its `recv` fails with
    /// [`ServeError::Closed`] instead of hanging forever.
    pub fn shutdown(mut self) -> ServeSnapshot {
        self.closed.store(true, Ordering::Release);
        self.sup.shutting_down.store(true, Ordering::Release);
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        let handles: Vec<JoinHandle<WorkerExit>> = {
            let mut slots = self.sup.slots.lock();
            slots.iter_mut().filter_map(|s| s.take()).collect()
        };
        for _ in 0..handles.len() {
            let _ = self.bulk_tx.send(Envelope {
                admitted: Instant::now(),
                job: Job::Shutdown,
            });
        }
        for handle in handles {
            let _ = handle.join();
        }
        // The reaper: drop leftover envelopes (failing their clients
        // closed) until both lanes disconnect — i.e. until the service's
        // own senders (dropped below) and every client handle are gone.
        let bulk_rx = self.bulk_rx.clone();
        let emergency_rx = self.emergency_rx.clone();
        std::thread::Builder::new()
            .name("prima-serve-reaper".into())
            .spawn(move || loop {
                let mut drained = false;
                let mut disconnected = 0;
                for rx in [&bulk_rx, &emergency_rx] {
                    match rx.try_recv() {
                        Ok(env) => {
                            drop(env);
                            drained = true;
                        }
                        Err(TryRecvError::Disconnected) => disconnected += 1,
                        Err(TryRecvError::Empty) => {}
                    }
                }
                if disconnected == 2 {
                    return;
                }
                if !drained {
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
            .expect("spawn serve reaper");
        ServeSnapshot {
            cache: self.engine.cache_stats(),
            decisions: self.engine.obs().decisions.get(),
            policy_revision: self.engine.policy_revision(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{DenyReason, Verdict};
    use prima_model::{Rule, StoreTag};
    use prima_vocab::{ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};

    fn fixture() -> (Policy, Vocabulary) {
        let vocab = Vocabulary::builder()
            .attribute(ATTR_DATA)
            .category("clinical", &["referral", "lab-result"])
            .attribute(ATTR_PURPOSE)
            .category("care", &["treatment"])
            .attribute(ATTR_AUTHORIZED)
            .category("staff", &["nurse", "physician"])
            .build()
            .expect("test vocabulary");
        let policy = Policy::with_rules(
            StoreTag::PolicyStore,
            vec![Rule::of(&[
                (ATTR_DATA, "referral"),
                (ATTR_PURPOSE, "treatment"),
                (ATTR_AUTHORIZED, "nurse"),
            ])],
        );
        (policy, vocab)
    }

    fn allow_req() -> DecisionRequest {
        DecisionRequest::new("p-1", "nurse", "referral", "treatment", "granted")
    }

    #[test]
    fn pool_serves_decisions_from_many_clients() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(
            ServeConfig::new()
                .workers(4)
                .metrics(MetricsRegistry::new()),
            &policy,
            &vocab,
        );
        let handle = service.handle();
        let clients: Vec<_> = (0..8)
            .map(|_| {
                let h = handle.clone();
                std::thread::spawn(move || {
                    (0..50)
                        .map(|_| h.decide(allow_req()).expect("service up"))
                        .filter(|r| r.verdict.is_allow())
                        .count()
                })
            })
            .collect();
        let allowed: usize = clients.into_iter().map(|c| c.join().unwrap()).sum();
        assert_eq!(allowed, 400);
        let snap = service.shutdown();
        assert_eq!(snap.decisions, 400);
        // Concurrent cold misses can race before the first insert lands,
        // but once warm every decision hits.
        assert!(snap.cache.hits >= 390, "cache hits: {}", snap.cache.hits);
    }

    #[test]
    fn batch_replies_preserve_request_order() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(2), &policy, &vocab);
        let batch = vec![
            allow_req(),
            DecisionRequest::new("p-2", "physician", "referral", "treatment", "granted"),
            DecisionRequest::new("p-3", "nurse", "referral", "treatment", "opted-out"),
        ];
        let replies = service.handle().decide_batch(batch).expect("service up");
        assert_eq!(replies.len(), 3);
        assert_eq!(replies[0].verdict, Verdict::Allow);
        assert_eq!(replies[1].verdict, Verdict::Deny(DenyReason::PolicyDenied));
        assert_eq!(
            replies[2].verdict,
            Verdict::Deny(DenyReason::ConsentWithheld)
        );
        service.shutdown();
    }

    #[test]
    fn install_through_the_service_reaches_every_worker() {
        let (mut policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(3), &policy, &vocab);
        let handle = service.handle();
        let denied = DecisionRequest::new("p-1", "physician", "lab-result", "treatment", "granted");
        assert!(!handle.decide(denied.clone()).unwrap().verdict.is_allow());

        policy.push(Rule::of(&[
            (ATTR_DATA, "lab-result"),
            (ATTR_PURPOSE, "treatment"),
            (ATTR_AUTHORIZED, "physician"),
        ]));
        assert!(service.install_policy(&policy));
        // Every subsequent decision — from any worker — sees the new rule.
        for _ in 0..20 {
            assert!(handle.decide(denied.clone()).unwrap().verdict.is_allow());
        }
        service.shutdown();
    }

    #[test]
    fn requests_after_shutdown_fail_closed() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(1), &policy, &vocab);
        let handle = service.handle();
        service.shutdown();
        assert_eq!(handle.decide(allow_req()), Err(ServeError::Closed));
    }

    #[test]
    fn direct_transport_shares_the_pool_cache() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(1), &policy, &vocab);
        service.handle().decide(allow_req()).unwrap(); // warm via pool
        let direct = service.direct();
        direct.decide(allow_req()).unwrap(); // hit via direct path
        let snap = service.shutdown();
        assert_eq!(snap.cache.hits, 1);
        assert_eq!(snap.cache.misses, 1);
    }

    /// Regression (shutdown race): clients racing the poison pills must
    /// all resolve — a reply or `ServeError::Closed` — never a hang. The
    /// whole race runs under a watchdog so a regression fails fast
    /// instead of wedging the suite.
    #[test]
    fn clients_racing_shutdown_never_hang() {
        let (done_tx, done_rx) = bounded(1);
        std::thread::spawn(move || {
            for round in 0..20 {
                let (policy, vocab) = fixture();
                let service = PolicyService::start(ServeConfig::new().workers(2), &policy, &vocab);
                let handle = service.handle();
                let clients: Vec<_> = (0..4)
                    .map(|c| {
                        let h = handle.clone();
                        std::thread::spawn(move || {
                            let mut served = 0usize;
                            let mut closed = 0usize;
                            for _ in 0..50 {
                                match h.decide(allow_req()) {
                                    Ok(_) => served += 1,
                                    Err(ServeError::Closed) => closed += 1,
                                    Err(e) => panic!("unexpected error: {e} (client {c})"),
                                }
                            }
                            (served, closed)
                        })
                    })
                    .collect();
                // Shut down mid-flight: some decide() calls race the pills.
                if round % 2 == 0 {
                    std::thread::sleep(Duration::from_micros(50 * round as u64));
                }
                service.shutdown();
                for client in clients {
                    let (served, closed) = client.join().expect("client panicked");
                    assert_eq!(served + closed, 50, "every call resolved");
                }
            }
            let _ = done_tx.send(());
        });
        done_rx
            .recv_timeout(Duration::from_secs(60))
            .expect("shutdown race deadlocked: a racing client hung");
    }

    #[test]
    fn bulk_is_shed_with_srv011_while_emergency_is_served() {
        let (policy, vocab) = fixture();
        // Threshold 0: every bulk request is saturated at admission.
        let service = PolicyService::start(
            ServeConfig::new()
                .workers(1)
                .shed_threshold(0)
                .metrics(MetricsRegistry::new()),
            &policy,
            &vocab,
        );
        let handle = service.handle();
        let shed = handle.decide(allow_req()).unwrap();
        assert_eq!(shed.verdict, Verdict::Deny(DenyReason::Overloaded));
        // Emergency bypasses the shedder entirely.
        let urgent = handle.decide(allow_req().emergency()).unwrap();
        assert_eq!(urgent.verdict, Verdict::Allow);
        let health = service.health();
        assert_eq!(health.shed, 1);
        service.shutdown();
    }

    #[test]
    fn zero_deadline_budget_expires_at_enqueue() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(
            ServeConfig::new()
                .workers(1)
                .metrics(MetricsRegistry::new()),
            &policy,
            &vocab,
        );
        let reply = service
            .handle()
            .decide(allow_req().with_deadline_us(0))
            .unwrap();
        assert_eq!(reply.verdict, Verdict::Deny(DenyReason::DeadlineExceeded));
        assert_eq!(service.health().deadline_expired, 1);
        service.shutdown();
    }

    #[test]
    fn queued_work_past_its_deadline_is_abandoned() {
        let (policy, vocab) = fixture();
        // One slow worker: the first request occupies it long enough
        // that the second's 1µs budget expires in the queue.
        let service = PolicyService::start(
            ServeConfig::new()
                .workers(1)
                .decision_delay(Duration::from_millis(20)),
            &policy,
            &vocab,
        );
        let handle = service.handle();
        let occupy = {
            let h = handle.clone();
            std::thread::spawn(move || h.decide(allow_req()).unwrap())
        };
        std::thread::sleep(Duration::from_millis(2)); // let it reach the worker
        let reply = handle.decide(allow_req().with_deadline_us(1)).unwrap();
        assert_eq!(reply.verdict, Verdict::Deny(DenyReason::DeadlineExceeded));
        assert!(occupy.join().unwrap().verdict.is_allow());
        service.shutdown();
    }

    #[test]
    fn worker_panic_answers_fail_closed_and_supervisor_respawns() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(
            ServeConfig::new()
                .workers(2)
                .panic_token("☠")
                .supervision_interval(Duration::from_millis(1))
                .metrics(MetricsRegistry::new()),
            &policy,
            &vocab,
        );
        let handle = service.handle();
        let boom = DecisionRequest::new("☠", "nurse", "referral", "treatment", "granted");
        let reply = handle.decide(boom).unwrap();
        assert_eq!(reply.verdict, Verdict::Deny(DenyReason::Internal));
        // The supervisor notices the dead worker and respawns it.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let health = service.health();
            if health.worker_restarts >= 1 && health.workers_alive == 2 {
                break;
            }
            assert!(Instant::now() < deadline, "supervisor never respawned");
            std::thread::sleep(Duration::from_millis(1));
        }
        assert_eq!(service.health().worker_panics, 1);
        // Full service continues.
        assert!(handle.decide(allow_req()).unwrap().verdict.is_allow());
        service.shutdown();
    }

    #[test]
    fn crash_loop_trips_breaker_holds_installs_then_recovers() {
        let (mut policy, vocab) = fixture();
        let service = PolicyService::start(
            ServeConfig::new()
                .workers(1)
                .panic_token("☠")
                .supervision_interval(Duration::from_millis(1))
                .breaker(BreakerConfig {
                    failure_threshold: 1,
                    cooldown_rounds: 3,
                }),
            &policy,
            &vocab,
        );
        let handle = service.handle();
        let boom = DecisionRequest::new("☠", "nurse", "referral", "treatment", "granted");
        // Crash workers until the breaker opens.
        let deadline = Instant::now() + Duration::from_secs(10);
        while service.health().breaker == BreakerState::Closed {
            let _ = handle.decide(boom.clone());
            assert!(Instant::now() < deadline, "breaker never opened");
        }
        let health = service.health();
        assert_eq!(health.state, ServiceState::CrashLoop);
        assert!(health.installs_held);
        // Widening promotions are held while the breaker is open.
        policy.push(Rule::of(&[
            (ATTR_DATA, "lab-result"),
            (ATTR_PURPOSE, "treatment"),
            (ATTR_AUTHORIZED, "physician"),
        ]));
        assert_eq!(
            service.try_install_policy(&policy),
            Err(InstallError::InstallsHeld)
        );
        // Faults clear (no more panic traffic): cooldown elapses, the
        // probe respawn survives, the breaker closes, installs flow.
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let health = service.health();
            if health.breaker == BreakerState::Closed && health.workers_alive == 1 {
                break;
            }
            assert!(Instant::now() < deadline, "breaker never closed");
            std::thread::sleep(Duration::from_millis(2));
        }
        assert_eq!(service.try_install_policy(&policy), Ok(true));
        let denied = DecisionRequest::new("p", "physician", "lab-result", "treatment", "granted");
        assert!(handle.decide(denied).unwrap().verdict.is_allow());
        assert!(service.health().healthy());
        service.shutdown();
    }

    #[test]
    fn failed_install_pins_last_known_good_and_reports_degraded() {
        let (policy, vocab) = fixture();
        let service = PolicyService::start(ServeConfig::new().workers(1), &policy, &vocab);
        let handle = service.handle();
        assert!(handle.decide(allow_req()).unwrap().verdict.is_allow());

        // A policy referencing a concept the vocabulary does not know.
        let mut bad = policy.clone();
        bad.push(Rule::of(&[
            (ATTR_DATA, "quantum-flux"),
            (ATTR_PURPOSE, "treatment"),
            (ATTR_AUTHORIZED, "nurse"),
        ]));
        let err = service.try_install_policy(&bad).unwrap_err();
        assert!(
            matches!(err, InstallError::UnknownConcept { ref concept, .. }
            if concept == "quantum-flux")
        );
        let health = service.health();
        assert!(health.degraded);
        assert_eq!(health.state, ServiceState::Degraded);
        // Pinned last-known-good still answers (fail-closed posture).
        assert_eq!(health.policy_revision, policy.revision());
        assert!(handle.decide(allow_req()).unwrap().verdict.is_allow());

        // The next valid install restores full service.
        assert_eq!(service.try_install_policy(&policy), Ok(false));
        assert!(service.health().healthy());
        service.shutdown();
    }
}
