//! The overload benchmark behind `prima serve-bench --surge`.
//!
//! Where [`crate::bench`] measures the happy path (sustained throughput
//! against a cooperative client fleet), this bench measures *graceful
//! degradation*: a [`SurgeProfile`] burst offers 10–100× the pool's
//! capacity with an elevated break-the-glass rate, and the report scores
//! the overload contract rather than raw QPS:
//!
//! * **Emergency certainty** — every [`crate::api::Priority::Emergency`]
//!   request is decided within its deadline: the emergency lane bypasses
//!   the shedder, workers drain it first, and its bounded capacity
//!   clamps queue wait far below the deadline budget.
//! * **Honest shedding** — bulk requests the service cannot serve are
//!   rejected *early* with `SRV-011` (or expired with `SRV-012`), never
//!   silently queued into collapse, never answered with anything else.
//! * **Coherence under pressure** — sampled decided replies still agree
//!   with the uncached oracle; overload must not surface stale verdicts.
//!
//! Capacity is made deliberately scarce: each decision carries a fixed
//! simulated downstream latency ([`ServeConfig::decision_delay`] — a
//! sleep, so it costs no CPU), which fixes `capacity = workers / delay`
//! exactly and lets a single host offer a genuine 10–100× overload.
//!
//! Traffic is two-population, mirroring a real incident: a fleet of
//! *bulk* clients blasts open-throttle (the reporting storm / mass
//! influx), while dedicated *emergency* clients fire break-the-glass
//! requests **paced** at [`SurgeProfile::emergency_share`] of capacity —
//! the elevated exception rate of an incident is driven by clinicians,
//! not by the runaway batch job, so it scales with the hospital, not
//! with the storm.

use crate::api::{DecisionRequest, DenyReason, Verdict};
use crate::service::{PolicyService, ServeConfig, Transport};
use prima_obs::{MetricsRegistry, Tracer};
use prima_vocab::{ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};
use prima_workload::{Scenario, SurgeProfile, ZipfPopulation};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::Value;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Surge-run parameters.
#[derive(Debug, Clone)]
pub struct SurgeConfig {
    /// The burst shape. `emergency_share` is read as the fraction of
    /// service *capacity* the paced break-the-glass population consumes.
    pub profile: SurgeProfile,
    /// Simulated principal population.
    pub principals: usize,
    /// Bulk client threads blasting the service open-throttle. Clients
    /// are synchronous (one request in flight each), so the bulk lane
    /// can only reach `bulk_clients` deep — this must comfortably exceed
    /// `shed_threshold + workers` for admission control to engage.
    pub bulk_clients: usize,
    /// Dedicated emergency client threads (paced, never blasting).
    pub emergency_clients: usize,
    /// Wall-clock length of the burst. Every client — bulk and emergency
    /// — stops offering at the same instant, so the measured offered
    /// rate reflects the storm itself, not a straggler tail of blocked
    /// closed-loop clients draining through the scarce worker.
    pub duration_ms: u64,
    /// Worker threads serving the pool.
    pub workers: usize,
    /// Simulated downstream latency per decision, in microseconds;
    /// fixes capacity at `workers / delay`.
    pub decision_delay_us: u64,
    /// Bulk-lane shed threshold (admission control).
    pub shed_threshold: usize,
    /// Emergency-lane capacity (bounds emergency queue wait at
    /// `emergency_capacity × delay / workers`).
    pub emergency_capacity: usize,
    /// Zipf exponent of the principal population.
    pub zipf: f64,
    /// RNG seed.
    pub seed: u64,
    /// Audit one of every this many decided replies against the
    /// uncached oracle (0 = no auditing).
    pub coherence_sample: usize,
    /// Smoke preset marker (smaller volumes; same gates).
    pub smoke: bool,
}

impl Default for SurgeConfig {
    fn default() -> Self {
        Self {
            profile: SurgeProfile::mass_casualty(),
            principals: 100_000,
            // Enough clients to saturate admission control, few enough
            // that a small host isn't scheduler-thrashed: the blast rate
            // is CPU-bound, so extra spinning threads only add latency
            // jitter that lands on the emergency deadline.
            bulk_clients: 12,
            emergency_clients: 4,
            duration_ms: 10_000,
            workers: 4,
            decision_delay_us: 1_000,
            shed_threshold: 8,
            emergency_capacity: 16,
            zipf: 1.05,
            seed: 42,
            coherence_sample: 64,
            smoke: false,
        }
    }
}

impl SurgeConfig {
    /// A small preset for CI smoke runs. Capacity is made very scarce
    /// (one worker, 5 ms/decision → 200/s) so even a debug-mode,
    /// single-core client fleet offers a genuine ≥10× surge, and the
    /// deadlines are widened to sit far above OS scheduling jitter.
    pub fn smoke() -> Self {
        Self {
            profile: SurgeProfile {
                bulk_deadline_us: 20_000,
                emergency_deadline_us: 250_000,
                ..SurgeProfile::mass_casualty()
            },
            principals: 10_000,
            bulk_clients: 12,
            emergency_clients: 4,
            duration_ms: 4_000,
            workers: 1,
            decision_delay_us: 5_000,
            shed_threshold: 4,
            coherence_sample: 8,
            smoke: true,
            ..Self::default()
        }
    }

    /// Known service capacity, decisions per second.
    pub fn capacity_per_sec(&self) -> f64 {
        self.workers as f64 / (self.decision_delay_us as f64 * 1e-6)
    }

    /// Pacing interval per emergency client so the population together
    /// offers `emergency_share × capacity`.
    fn emergency_interval(&self) -> Duration {
        let rate = (self.profile.emergency_share * self.capacity_per_sec()).max(1.0);
        Duration::from_secs_f64(self.emergency_clients.max(1) as f64 / rate)
    }
}

/// Per-lane outcome tallies.
#[derive(Debug, Clone, Copy, Default)]
pub struct LaneOutcomes {
    /// Requests offered to the lane.
    pub offered: u64,
    /// Requests decided (a real Allow/Deny verdict, within deadline).
    pub decided: u64,
    /// Requests shed with `SRV-011`.
    pub shed: u64,
    /// Requests expired with `SRV-012`.
    pub expired: u64,
    /// Replies with any other shape (worker-crash denials, transport
    /// errors) — must be 0 in a clean surge.
    pub unexpected: u64,
}

impl LaneOutcomes {
    fn absorb(&mut self, other: LaneOutcomes) {
        self.offered += other.offered;
        self.decided += other.decided;
        self.shed += other.shed;
        self.expired += other.expired;
        self.unexpected += other.unexpected;
    }
}

/// What a surge run measured.
#[derive(Debug, Clone)]
pub struct SurgeReport {
    /// The configuration that produced this report.
    pub config: SurgeConfig,
    /// Wall-clock seconds until the last client finished.
    pub elapsed_secs: f64,
    /// Known service capacity (`workers / decision_delay`).
    pub capacity_per_sec: f64,
    /// Measured offered load: bulk blast rate over the bulk phase plus
    /// the paced emergency rate over the emergency phase.
    pub offered_per_sec: f64,
    /// `offered / capacity` — must be ≥ 10 for the run to count as a
    /// surge.
    pub surge_factor: f64,
    /// Bulk-lane outcomes.
    pub bulk: LaneOutcomes,
    /// Emergency-lane outcomes.
    pub emergency: LaneOutcomes,
    /// Decided replies audited against the uncached oracle.
    pub coherence_checked: u64,
    /// Audited replies that disagreed (must be 0).
    pub coherence_mismatches: u64,
}

impl SurgeReport {
    /// The overload-contract gates.
    pub fn gates(&self) -> Vec<(&'static str, bool)> {
        vec![
            ("surge_factor_ge_10", self.surge_factor >= 10.0),
            (
                "emergency_all_decided_within_deadline",
                self.emergency.offered > 0 && self.emergency.decided == self.emergency.offered,
            ),
            (
                "bulk_overflow_all_srv011_or_srv012",
                self.bulk.shed > 0 && self.bulk.unexpected == 0 && self.emergency.unexpected == 0,
            ),
            (
                "coherent_under_overload",
                self.coherence_checked > 0 && self.coherence_mismatches == 0,
            ),
        ]
    }

    /// True iff every gate passes.
    pub fn passed(&self) -> bool {
        self.gates().iter().all(|(_, ok)| *ok)
    }

    /// The report as a JSON value tree (the `BENCH_serve.json` surge
    /// section).
    pub fn to_json(&self) -> Value {
        let lane = |o: &LaneOutcomes| {
            Value::Map(vec![
                ("offered".into(), Value::U64(o.offered)),
                ("decided".into(), Value::U64(o.decided)),
                ("shed_srv011".into(), Value::U64(o.shed)),
                ("expired_srv012".into(), Value::U64(o.expired)),
                ("unexpected".into(), Value::U64(o.unexpected)),
            ])
        };
        let gates = self
            .gates()
            .into_iter()
            .map(|(name, ok)| (name.to_string(), Value::Bool(ok)))
            .collect();
        Value::Map(vec![
            ("bench".into(), Value::Str("serve_surge".into())),
            (
                "config".into(),
                Value::Map(vec![
                    (
                        "emergency_share_of_capacity".into(),
                        Value::F64(self.config.profile.emergency_share),
                    ),
                    (
                        "bulk_deadline_us".into(),
                        Value::U64(self.config.profile.bulk_deadline_us),
                    ),
                    (
                        "emergency_deadline_us".into(),
                        Value::U64(self.config.profile.emergency_deadline_us),
                    ),
                    (
                        "principals".into(),
                        Value::U64(self.config.principals as u64),
                    ),
                    (
                        "bulk_clients".into(),
                        Value::U64(self.config.bulk_clients as u64),
                    ),
                    (
                        "emergency_clients".into(),
                        Value::U64(self.config.emergency_clients as u64),
                    ),
                    ("duration_ms".into(), Value::U64(self.config.duration_ms)),
                    ("workers".into(), Value::U64(self.config.workers as u64)),
                    (
                        "decision_delay_us".into(),
                        Value::U64(self.config.decision_delay_us),
                    ),
                    (
                        "shed_threshold".into(),
                        Value::U64(self.config.shed_threshold as u64),
                    ),
                    (
                        "emergency_capacity".into(),
                        Value::U64(self.config.emergency_capacity as u64),
                    ),
                    ("seed".into(), Value::U64(self.config.seed)),
                    ("smoke".into(), Value::Bool(self.config.smoke)),
                ]),
            ),
            ("elapsed_secs".into(), Value::F64(self.elapsed_secs)),
            ("capacity_per_sec".into(), Value::F64(self.capacity_per_sec)),
            ("offered_per_sec".into(), Value::F64(self.offered_per_sec)),
            ("surge_factor".into(), Value::F64(self.surge_factor)),
            ("bulk".into(), lane(&self.bulk)),
            ("emergency".into(), lane(&self.emergency)),
            (
                "coherence".into(),
                Value::Map(vec![
                    ("checked".into(), Value::U64(self.coherence_checked)),
                    ("mismatches".into(), Value::U64(self.coherence_mismatches)),
                ]),
            ),
            ("gates".into(), Value::Map(gates)),
        ])
    }
}

struct ClientTally {
    lane: LaneOutcomes,
    elapsed: Duration,
    checked: u64,
    mismatches: u64,
}

/// The request dimensions every client samples from.
struct RequestSpace {
    population: ZipfPopulation,
    roles: Vec<String>,
    ops: Vec<String>,
    purposes: Vec<String>,
}

impl RequestSpace {
    fn sample(&self, rng: &mut StdRng) -> DecisionRequest {
        let rank = self.population.sample(rng);
        DecisionRequest::new(
            &ZipfPopulation::principal_name(rank),
            &self.roles[rank % self.roles.len()],
            &self.ops[rank % self.ops.len()],
            &self.purposes[rank % self.purposes.len()],
            "granted",
        )
    }
}

fn tally_reply(lane: &mut LaneOutcomes, verdict: &Verdict) -> bool {
    match verdict {
        Verdict::Deny(DenyReason::Overloaded) => {
            lane.shed += 1;
            false
        }
        Verdict::Deny(DenyReason::DeadlineExceeded) => {
            lane.expired += 1;
            false
        }
        Verdict::Deny(DenyReason::Internal) => {
            lane.unexpected += 1;
            false
        }
        _ => {
            lane.decided += 1;
            true
        }
    }
}

/// Runs the surge benchmark and returns the measured report.
pub fn run_surge(config: SurgeConfig) -> SurgeReport {
    let scenario = Scenario::community_hospital();
    let service = PolicyService::start(
        ServeConfig::new()
            .workers(config.workers)
            .queue_capacity(config.shed_threshold.max(1) * 2)
            .emergency_capacity(config.emergency_capacity)
            .shed_threshold(config.shed_threshold)
            .max_queue_age(Duration::from_micros(config.profile.bulk_deadline_us))
            .decision_delay(Duration::from_micros(config.decision_delay_us))
            .metrics(MetricsRegistry::new())
            .tracer(Tracer::disabled()),
        &scenario.policy,
        &scenario.vocab,
    );

    let leaves = |attr: &str| -> Vec<String> {
        let t = scenario.vocab.attribute(attr).expect("scenario attribute");
        t.all_leaves()
            .iter()
            .map(|&id| t.name(id).to_string())
            .collect()
    };
    let space = Arc::new(RequestSpace {
        population: ZipfPopulation::new(config.principals, config.zipf),
        roles: leaves(ATTR_AUTHORIZED),
        ops: leaves(ATTR_DATA),
        purposes: leaves(ATTR_PURPOSE),
    });
    let engine = Arc::clone(service.engine());

    let start = Instant::now();
    let until = start + Duration::from_millis(config.duration_ms);
    // The storm: bulk clients blast with no pacing; admission control is
    // the only thing standing between them and queueing collapse.
    let bulk_clients: Vec<_> = (0..config.bulk_clients.max(1))
        .map(|c| {
            let transport = service.handle();
            let engine = Arc::clone(&engine);
            let space = Arc::clone(&space);
            let deadline_us = config.profile.bulk_deadline_us;
            let sample_every = config.coherence_sample;
            let seed = config.seed.wrapping_add(c as u64);
            std::thread::spawn(move || {
                let began = Instant::now();
                let mut rng = StdRng::seed_from_u64(seed);
                let mut tally = ClientTally {
                    lane: LaneOutcomes::default(),
                    elapsed: Duration::ZERO,
                    checked: 0,
                    mismatches: 0,
                };
                let mut i = 0usize;
                while Instant::now() < until {
                    let req = space.sample(&mut rng).with_deadline_us(deadline_us);
                    tally.lane.offered += 1;
                    match transport.decide(req.clone()) {
                        Ok(reply) => {
                            let decided = tally_reply(&mut tally.lane, &reply.verdict);
                            if decided && sample_every > 0 && i.is_multiple_of(sample_every) {
                                let fresh = engine.decide_uncached(&req);
                                // The policy is fixed for the burst, so
                                // every sample is comparable.
                                if fresh.policy_revision == reply.policy_revision {
                                    tally.checked += 1;
                                    if fresh.verdict != reply.verdict {
                                        tally.mismatches += 1;
                                    }
                                }
                            }
                        }
                        Err(_) => tally.lane.unexpected += 1,
                    }
                    i += 1;
                }
                tally.elapsed = began.elapsed();
                tally
            })
        })
        .collect();

    // The clinicians: emergency clients paced so the break-the-glass
    // population offers `emergency_share × capacity`, independent of how
    // hard the storm blows.
    let interval = config.emergency_interval();
    let emergency_clients: Vec<_> = (0..config.emergency_clients.max(1))
        .map(|c| {
            let transport = service.handle();
            let space = Arc::clone(&space);
            let deadline_us = config.profile.emergency_deadline_us;
            let seed = config.seed.wrapping_add(1_000_003 + c as u64);
            std::thread::spawn(move || {
                let began = Instant::now();
                let mut rng = StdRng::seed_from_u64(seed);
                let mut tally = ClientTally {
                    lane: LaneOutcomes::default(),
                    elapsed: Duration::ZERO,
                    checked: 0,
                    mismatches: 0,
                };
                while Instant::now() < until {
                    let req = space
                        .sample(&mut rng)
                        .emergency()
                        .with_deadline_us(deadline_us);
                    tally.lane.offered += 1;
                    match transport.decide(req) {
                        Ok(reply) => {
                            tally_reply(&mut tally.lane, &reply.verdict);
                        }
                        Err(_) => tally.lane.unexpected += 1,
                    }
                    std::thread::sleep(interval);
                }
                tally.elapsed = began.elapsed();
                tally
            })
        })
        .collect();

    let mut bulk = LaneOutcomes::default();
    let mut emergency = LaneOutcomes::default();
    let mut checked = 0u64;
    let mut mismatches = 0u64;
    let mut bulk_phase = Duration::ZERO;
    let mut emergency_phase = Duration::ZERO;
    for client in bulk_clients {
        let t = client.join().expect("surge bulk client");
        bulk.absorb(t.lane);
        bulk_phase = bulk_phase.max(t.elapsed);
        checked += t.checked;
        mismatches += t.mismatches;
    }
    for client in emergency_clients {
        let t = client.join().expect("surge emergency client");
        emergency.absorb(t.lane);
        emergency_phase = emergency_phase.max(t.elapsed);
    }
    let elapsed = start.elapsed().as_secs_f64();
    service.shutdown();

    let capacity = config.capacity_per_sec();
    // Each population's rate over its own phase: the storm's blast rate
    // plus the paced emergency rate (the phases overlap; summing the
    // rates describes the pressure the service was under while both ran).
    let offered = bulk.offered as f64 / bulk_phase.as_secs_f64().max(1e-9)
        + emergency.offered as f64 / emergency_phase.as_secs_f64().max(1e-9);
    SurgeReport {
        elapsed_secs: elapsed,
        capacity_per_sec: capacity,
        offered_per_sec: offered,
        surge_factor: offered / capacity.max(1e-9),
        bulk,
        emergency,
        coherence_checked: checked,
        coherence_mismatches: mismatches,
        config,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_surge_run_passes_every_gate() {
        let report = run_surge(SurgeConfig::smoke());
        assert!(
            report.passed(),
            "gates: {:?}\nreport: bulk {:?} emergency {:?} surge_factor {:.1}",
            report.gates(),
            report.bulk,
            report.emergency,
            report.surge_factor,
        );
        // The burst genuinely exceeded capacity and bulk work was shed.
        assert!(report.bulk.shed > 0);
        assert_eq!(report.emergency.decided, report.emergency.offered);
    }

    #[test]
    fn surge_report_json_carries_the_gates() {
        let mut config = SurgeConfig::smoke();
        config.bulk_clients = 4;
        config.emergency_clients = 2;
        config.duration_ms = 800;
        let report = run_surge(config);
        let json = serde_json::to_string_pretty(&report.to_json()).unwrap();
        assert!(json.contains("\"bench\": \"serve_surge\""));
        assert!(json.contains("emergency_all_decided_within_deadline"));
        assert!(json.contains("shed_srv011"));
    }
}
