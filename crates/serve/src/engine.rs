//! The decision engine: validated request → cached verdict.
//!
//! One engine holds one *policy snapshot* — an owned [`PolicyMatcher`]
//! plus the `Policy::revision` it was built from — behind a `RwLock`,
//! next to the sharded decision cache. The hot path never takes the
//! write side: a cache hit is a shard probe plus two atomic loads, and a
//! miss takes the read lock just long enough to clone the `Arc` of the
//! current matcher.
//!
//! # Invalidation protocol
//!
//! The engine keeps its own monotonic **epoch**, advanced on every
//! effective [`DecisionEngine::install_policy`]. An install is effective
//! when the incoming policy's `(revision, rules-fingerprint)` differs
//! from the installed snapshot — the fingerprint catches the corner
//! where two unrelated fresh policies both sit at revision 0. The
//! install order is what makes the cache coherent:
//!
//! 1. take the state write lock, build the new matcher;
//! 2. bump the epoch **inside the lock** and record it in the state;
//! 3. release the lock, then advance the cache to the new epoch.
//!
//! A worker that decided under the old snapshot carries the old epoch as
//! its stamp; once the cache has advanced, that stamp no longer matches
//! and the entry is dropped on insert (or lazily evicted on probe). So a
//! promoted or overturned rule is visible to the very next decision —
//! the property `tests/coherence.rs` checks under random interleaving.

use crate::api::{
    Consent, DecisionReply, DecisionRequest, DenyReason, RewriteReply, RewriteRequest, Verdict,
};
use crate::cache::{DecisionKey, ServeCacheStats, ShardedDecisionCache};
use crate::obs::ServeObs;
use parking_lot::RwLock;
use prima_hdb::ColumnMap;
use prima_model::{GroundRule, Policy, PolicyMatcher};
use prima_vocab::{Vocabulary, ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};
use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// Why a policy install was refused. The engine pins the last-known-good
/// snapshot either way: a failed install never degrades what is already
/// serving, it only blocks the *new* snapshot from taking effect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum InstallError {
    /// A rule term names a concept absent from the serving vocabulary —
    /// installing it would turn every affected decision into an
    /// unanswerable probe. The engine enters degraded mode (cache
    /// read-only) until a valid snapshot arrives.
    UnknownConcept {
        /// The attribute of the offending term.
        attr: String,
        /// The unresolvable concept name.
        concept: String,
    },
    /// Installs are administratively held — the service-level circuit
    /// breaker is open after a worker crash loop, so widening promotions
    /// wait until the service proves stable again.
    InstallsHeld,
}

impl fmt::Display for InstallError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InstallError::UnknownConcept { attr, concept } => {
                write!(
                    f,
                    "policy rule names unknown concept '{concept}' (attribute '{attr}')"
                )
            }
            InstallError::InstallsHeld => {
                write!(
                    f,
                    "policy installs are held while the service breaker is open"
                )
            }
        }
    }
}

impl std::error::Error for InstallError {}

/// The installed policy snapshot. Guarded by one `RwLock` so matcher,
/// revision and epoch always change together.
#[derive(Debug)]
struct PolicyState {
    matcher: Arc<PolicyMatcher>,
    revision: u64,
    fingerprint: u64,
    epoch: u64,
}

/// The shared decision engine. All methods take `&self`; share it across
/// workers behind an `Arc`.
#[derive(Debug)]
pub struct DecisionEngine {
    vocab: Arc<Vocabulary>,
    state: RwLock<PolicyState>,
    /// Mirror of `state.revision` readable without the lock — the cache
    /// hit path stamps replies from here.
    revision: AtomicU64,
    cache: ShardedDecisionCache,
    columns: Option<ColumnMap>,
    /// Degraded mode: a policy install failed validation. The pinned
    /// last-known-good snapshot keeps answering, but the cache goes
    /// read-only (no new inserts) until a valid snapshot installs.
    degraded: AtomicBool,
    /// Installs administratively held (service breaker open): widening
    /// promotions wait; decisions keep flowing from the pinned snapshot.
    installs_held: AtomicBool,
    obs: ServeObs,
}

fn fingerprint(policy: &Policy) -> u64 {
    let mut h = DefaultHasher::new();
    for rule in policy.rules() {
        rule.hash(&mut h);
    }
    h.finish()
}

impl DecisionEngine {
    /// Builds an engine over `policy`, with a cache of `shards` segments.
    pub fn new(
        policy: &Policy,
        vocab: Arc<Vocabulary>,
        shards: usize,
        columns: Option<ColumnMap>,
        obs: ServeObs,
    ) -> Self {
        let matcher = Arc::new(PolicyMatcher::with_shared_vocab(policy, Arc::clone(&vocab)));
        Self {
            vocab,
            state: RwLock::new(PolicyState {
                matcher,
                revision: policy.revision(),
                fingerprint: fingerprint(policy),
                epoch: 0,
            }),
            revision: AtomicU64::new(policy.revision()),
            cache: ShardedDecisionCache::new(shards),
            columns,
            degraded: AtomicBool::new(false),
            installs_held: AtomicBool::new(false),
            obs,
        }
    }

    /// The revision of the currently installed policy.
    pub fn policy_revision(&self) -> u64 {
        self.revision.load(Ordering::Acquire)
    }

    /// True while the engine serves in degraded mode: a policy install
    /// failed, the last-known-good snapshot is pinned, and the decision
    /// cache is read-only.
    pub fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// True while installs are administratively held (service breaker
    /// open after a worker crash loop).
    pub fn installs_held(&self) -> bool {
        self.installs_held.load(Ordering::Acquire)
    }

    /// Holds or releases policy installs. While held,
    /// [`Self::try_install_policy`] refuses with
    /// [`InstallError::InstallsHeld`] and the cache is read-only — the
    /// supervisor flips this when the service-level breaker opens and
    /// closes.
    pub fn hold_installs(&self, hold: bool) {
        self.installs_held.store(hold, Ordering::Release);
    }

    /// Installs a new policy snapshot, invalidating the whole cache iff
    /// the policy actually changed. Returns `true` when an install took
    /// effect; an install rejected by validation or a hold counts as
    /// "no install" (`false`) and pins the last-known-good snapshot.
    pub fn install_policy(&self, policy: &Policy) -> bool {
        self.try_install_policy(policy).unwrap_or(false)
    }

    /// Fallible install: validates the snapshot before swapping it in.
    ///
    /// Validation requires every rule term to resolve in the serving
    /// vocabulary — a rule over unknown concepts can never match a
    /// request and would silently widen or narrow nothing while claiming
    /// a fresh revision. On failure the engine keeps answering from the
    /// pinned `(matcher, revision)` and enters degraded mode: cached
    /// verdicts are still served, new verdicts are computed but not
    /// cached, and [`crate::ServeHealth`] surfaces the state. The next
    /// valid install clears degradation.
    pub fn try_install_policy(&self, policy: &Policy) -> Result<bool, InstallError> {
        if self.installs_held.load(Ordering::Acquire) {
            self.obs.install_failures.inc();
            return Err(InstallError::InstallsHeld);
        }
        if let Some((attr, concept)) = self.first_unknown_concept(policy) {
            self.degraded.store(true, Ordering::Release);
            self.obs.install_failures.inc();
            self.obs.degraded.set(1.0);
            let mut span = self.obs.tracer.span("serve.install_rejected");
            span.field("attr", attr.clone());
            span.field("concept", concept.clone());
            return Err(InstallError::UnknownConcept { attr, concept });
        }
        let effective = self.install_validated(policy);
        // A valid snapshot (even an unchanged one) restores full service.
        if self.degraded.swap(false, Ordering::AcqRel) {
            self.obs.degraded.set(0.0);
        }
        Ok(effective)
    }

    /// The first rule term that does not resolve in the vocabulary.
    fn first_unknown_concept(&self, policy: &Policy) -> Option<(String, String)> {
        for rule in policy.rules() {
            for term in rule.terms() {
                if self.vocab.resolve(&term.attr, &term.value).is_none() {
                    return Some((term.attr.clone(), term.value.clone()));
                }
            }
        }
        None
    }

    fn install_validated(&self, policy: &Policy) -> bool {
        let fp = fingerprint(policy);
        {
            let state = self.state.read();
            if state.revision == policy.revision() && state.fingerprint == fp {
                return false;
            }
        }
        let new_epoch;
        {
            let mut state = self.state.write();
            // Re-check under the write lock: a racing install may have
            // already brought this exact snapshot in.
            if state.revision == policy.revision() && state.fingerprint == fp {
                return false;
            }
            state.matcher = Arc::new(PolicyMatcher::with_shared_vocab(
                policy,
                Arc::clone(&self.vocab),
            ));
            state.revision = policy.revision();
            state.fingerprint = fp;
            state.epoch += 1;
            new_epoch = state.epoch;
            self.revision.store(policy.revision(), Ordering::Release);
        }
        self.cache.advance(new_epoch);
        self.obs.policy_installs.inc();
        self.obs.cache_invalidations.inc();
        let mut span = self.obs.tracer.span("serve.install_policy");
        span.field("revision", policy.revision());
        span.field("epoch", new_epoch);
        true
    }

    /// Decides a request through the cache. Never panics: malformed or
    /// unknown input maps to a structured denial.
    pub fn decide(&self, req: &DecisionRequest) -> DecisionReply {
        let start = Instant::now();
        let reply = self.decide_inner(req, true);
        self.obs.decision_latency.observe_duration(start.elapsed());
        self.obs.decisions.inc();
        match reply.verdict {
            Verdict::Allow => self.obs.allows.inc(),
            Verdict::Deny(_) => self.obs.denials.inc(),
        }
        reply
    }

    /// Decides a request bypassing the cache entirely — the oracle the
    /// coherence property test and the bench sampling compare against.
    pub fn decide_uncached(&self, req: &DecisionRequest) -> DecisionReply {
        self.decide_inner(req, false)
    }

    fn decide_inner(&self, req: &DecisionRequest, use_cache: bool) -> DecisionReply {
        // Validation runs before the cache: a denial for malformed input
        // is cheap to recompute and must not occupy cache slots.
        if req.role.trim().is_empty() || req.op.trim().is_empty() || req.purpose.trim().is_empty() {
            return self.deny(DenyReason::EmptyField);
        }
        let Some(consent) = Consent::parse(&req.consent) else {
            return self.deny(DenyReason::MalformedConsent);
        };
        if self.vocab.resolve(ATTR_AUTHORIZED, &req.role).is_none() {
            return self.deny(DenyReason::UnknownRole);
        }
        if self.vocab.resolve(ATTR_DATA, &req.op).is_none() {
            return self.deny(DenyReason::UnknownOp);
        }
        if self.vocab.resolve(ATTR_PURPOSE, &req.purpose).is_none() {
            return self.deny(DenyReason::UnknownPurpose);
        }

        let key = DecisionKey {
            role: req.role.clone(),
            op: req.op.clone(),
            purpose: req.purpose.clone(),
            consent,
        };
        if use_cache {
            if let Some(verdict) = self.cache.lookup(&key) {
                self.obs.cache_hits.inc();
                return self.reply(req, verdict, self.policy_revision(), true);
            }
            self.obs.cache_misses.inc();
        }

        // Miss: probe the installed matcher. Clone the Arc under the read
        // lock and probe outside it, remembering the epoch of the
        // snapshot that computes this verdict.
        let (matcher, revision, stamp) = {
            let state = self.state.read();
            (Arc::clone(&state.matcher), state.revision, state.epoch)
        };
        let ground = GroundRule::of(&[
            (ATTR_DATA, &req.op),
            (ATTR_PURPOSE, &req.purpose),
            (ATTR_AUTHORIZED, &req.role),
        ]);
        let verdict = if !matcher.covers(&ground) {
            Verdict::Deny(DenyReason::PolicyDenied)
        } else if consent == Consent::OptedOut {
            Verdict::Deny(DenyReason::ConsentWithheld)
        } else {
            Verdict::Allow
        };
        // Degraded / held service keeps the cache read-only: existing
        // coherent entries still hit, but nothing new is admitted while
        // the policy plane is suspect.
        if use_cache && !self.is_degraded() && !self.installs_held() {
            self.cache.insert(key, stamp, verdict);
        }
        self.reply(req, verdict, revision, false)
    }

    fn deny(&self, reason: DenyReason) -> DecisionReply {
        DecisionReply {
            verdict: Verdict::Deny(reason),
            rewritten_query: None,
            policy_revision: self.policy_revision(),
            cached: false,
        }
    }

    fn reply(
        &self,
        req: &DecisionRequest,
        verdict: Verdict,
        revision: u64,
        cached: bool,
    ) -> DecisionReply {
        let rewritten_query = match verdict {
            Verdict::Allow => Some(format!(
                "SELECT {} FROM records WHERE purpose = '{}' -- role {}",
                req.op, req.purpose, req.role
            )),
            Verdict::Deny(_) => None,
        };
        DecisionReply {
            verdict,
            rewritten_query,
            policy_revision: revision,
            cached,
        }
    }

    /// Rewrites a multi-column query: each column is mapped to its data
    /// category (through the configured [`ColumnMap`]) and decided via
    /// the same cached path; suppressed columns carry structured reasons.
    pub fn rewrite(&self, req: &RewriteRequest) -> RewriteReply {
        let mut served = Vec::new();
        let mut suppressed = Vec::new();
        let revision = self.policy_revision();
        for column in &req.columns {
            let category = match &self.columns {
                Some(map) => match map.category_of(&req.table, column) {
                    Some(c) => c.to_string(),
                    None => {
                        suppressed.push((column.clone(), DenyReason::UnmappedColumn));
                        continue;
                    }
                },
                // No schema mapping configured: treat the column name as
                // the category itself (symbolic-table mode).
                None => column.clone(),
            };
            let decision = self.decide(&DecisionRequest {
                principal: req.principal.clone(),
                role: req.role.clone(),
                op: category,
                purpose: req.purpose.clone(),
                consent: req.consent.clone(),
                priority: crate::api::Priority::Bulk,
                deadline_us: None,
                trace_id: 0,
                trace_span: 0,
            });
            match decision.verdict {
                Verdict::Allow => served.push(column.clone()),
                Verdict::Deny(reason) => suppressed.push((column.clone(), reason)),
            }
        }
        let rewritten_query = if served.is_empty() {
            None
        } else {
            Some(format!(
                "SELECT {} FROM {} WHERE purpose = '{}'",
                served.join(", "),
                req.table,
                req.purpose
            ))
        };
        RewriteReply {
            served,
            suppressed,
            rewritten_query,
            policy_revision: revision,
        }
    }

    /// Cache counters.
    pub fn cache_stats(&self) -> ServeCacheStats {
        self.cache.stats()
    }

    /// The engine's metric handles.
    pub fn obs(&self) -> &ServeObs {
        &self.obs
    }

    /// The shared vocabulary.
    pub fn vocab(&self) -> &Arc<Vocabulary> {
        &self.vocab
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_model::{Rule, StoreTag};

    fn vocab() -> Arc<Vocabulary> {
        let v = Vocabulary::builder()
            .attribute(ATTR_DATA)
            .category("clinical", &["referral", "lab-result"])
            .attribute(ATTR_PURPOSE)
            .category("care", &["treatment"])
            .attribute(ATTR_AUTHORIZED)
            .category("staff", &["nurse", "physician"])
            .build()
            .expect("test vocabulary");
        Arc::new(v)
    }

    fn policy() -> Policy {
        Policy::with_rules(
            StoreTag::PolicyStore,
            vec![Rule::of(&[
                (ATTR_DATA, "referral"),
                (ATTR_PURPOSE, "treatment"),
                (ATTR_AUTHORIZED, "nurse"),
            ])],
        )
    }

    fn engine() -> DecisionEngine {
        DecisionEngine::new(&policy(), vocab(), 8, None, ServeObs::disabled())
    }

    fn req(role: &str, op: &str, purpose: &str, consent: &str) -> DecisionRequest {
        DecisionRequest::new("p-1", role, op, purpose, consent)
    }

    #[test]
    fn allows_sanctioned_access_and_caches_it() {
        let e = engine();
        let r1 = e.decide(&req("nurse", "referral", "treatment", "granted"));
        assert_eq!(r1.verdict, Verdict::Allow);
        assert!(r1.rewritten_query.is_some());
        assert!(!r1.cached, "first decision probes the matcher");
        let r2 = e.decide(&req("nurse", "referral", "treatment", "granted"));
        assert_eq!(r2.verdict, Verdict::Allow);
        assert!(r2.cached, "second decision is a cache hit");
        let s = e.cache_stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn structured_denials_cover_every_malformed_input() {
        let e = engine();
        let cases = [
            (
                req("", "referral", "treatment", "granted"),
                DenyReason::EmptyField,
            ),
            (
                req("nurse", "referral", "treatment", "perhaps"),
                DenyReason::MalformedConsent,
            ),
            (
                req("janitor", "referral", "treatment", "granted"),
                DenyReason::UnknownRole,
            ),
            (
                req("nurse", "billing-code", "treatment", "granted"),
                DenyReason::UnknownOp,
            ),
            (
                req("nurse", "referral", "marketing", "granted"),
                DenyReason::UnknownPurpose,
            ),
            (
                req("physician", "lab-result", "treatment", "granted"),
                DenyReason::PolicyDenied,
            ),
            (
                req("nurse", "referral", "treatment", "opted-out"),
                DenyReason::ConsentWithheld,
            ),
        ];
        for (request, want) in cases {
            let reply = e.decide(&request);
            assert_eq!(reply.verdict, Verdict::Deny(want), "{request:?}");
            assert!(reply.rewritten_query.is_none());
        }
    }

    #[test]
    fn install_invalidates_and_next_decision_sees_new_policy() {
        let e = engine();
        let denied = req("physician", "lab-result", "treatment", "granted");
        assert_eq!(
            e.decide(&denied).verdict,
            Verdict::Deny(DenyReason::PolicyDenied)
        );

        let mut p = policy();
        p.push(Rule::of(&[
            (ATTR_DATA, "lab-result"),
            (ATTR_PURPOSE, "treatment"),
            (ATTR_AUTHORIZED, "physician"),
        ]));
        assert!(e.install_policy(&p));
        assert_eq!(e.policy_revision(), p.revision());

        // The very next decision reflects the promoted rule.
        let reply = e.decide(&denied);
        assert_eq!(reply.verdict, Verdict::Allow);
        assert_eq!(reply.policy_revision, p.revision());
        assert_eq!(e.cache_stats().invalidations, 1);
    }

    #[test]
    fn reinstalling_the_same_snapshot_is_a_noop() {
        let e = engine();
        assert!(!e.install_policy(&policy()));
        assert_eq!(e.cache_stats().invalidations, 0);
    }

    #[test]
    fn distinct_policies_at_the_same_revision_still_invalidate() {
        // Two fresh policies both sit at revision 0; the fingerprint must
        // tell them apart.
        let e = engine();
        let other = Policy::with_rules(
            StoreTag::PolicyStore,
            vec![Rule::of(&[
                (ATTR_DATA, "lab-result"),
                (ATTR_PURPOSE, "treatment"),
                (ATTR_AUTHORIZED, "physician"),
            ])],
        );
        assert_eq!(other.revision(), 0);
        assert!(e.install_policy(&other));
        let reply = e.decide(&req("physician", "lab-result", "treatment", "granted"));
        assert_eq!(reply.verdict, Verdict::Allow);
    }

    #[test]
    fn rejected_install_pins_last_known_good_and_suspends_caching() {
        let e = engine();
        let good_revision = e.policy_revision();
        let allowed = req("nurse", "referral", "treatment", "granted");
        assert_eq!(e.decide(&allowed).verdict, Verdict::Allow);

        // An install referencing a concept the vocabulary cannot resolve
        // must be rejected wholesale, not partially applied.
        let mut bad = policy();
        bad.push(Rule::of(&[
            (ATTR_DATA, "quantum-flux"),
            (ATTR_PURPOSE, "treatment"),
            (ATTR_AUTHORIZED, "nurse"),
        ]));
        let err = e.try_install_policy(&bad).unwrap_err();
        assert_eq!(
            err,
            InstallError::UnknownConcept {
                attr: ATTR_DATA.to_string(),
                concept: "quantum-flux".to_string(),
            }
        );
        assert!(e.is_degraded());
        // Pinned: decisions keep answering at the last-known-good
        // revision, and cached verdicts still serve.
        let pinned = e.decide(&allowed);
        assert_eq!(pinned.verdict, Verdict::Allow);
        assert_eq!(pinned.policy_revision, good_revision);
        // Read-only cache: a fresh key decided while degraded is NOT
        // inserted — deciding it twice misses twice.
        let fresh = req("physician", "referral", "treatment", "granted");
        let misses_before = e.cache_stats().misses;
        e.decide(&fresh);
        e.decide(&fresh);
        assert_eq!(e.cache_stats().misses, misses_before + 2);

        // The next valid install (even the unchanged snapshot) restores
        // full service, caching included.
        assert_eq!(e.try_install_policy(&policy()), Ok(false));
        assert!(!e.is_degraded());
        e.decide(&fresh); // miss + insert
        let hits_before = e.cache_stats().hits;
        e.decide(&fresh); // hit
        assert_eq!(e.cache_stats().hits, hits_before + 1);
    }

    #[test]
    fn held_installs_refuse_and_keep_the_cache_read_only() {
        let e = engine();
        e.hold_installs(true);
        assert!(e.installs_held());
        let mut p = policy();
        p.push(Rule::of(&[
            (ATTR_DATA, "lab-result"),
            (ATTR_PURPOSE, "treatment"),
            (ATTR_AUTHORIZED, "physician"),
        ]));
        assert_eq!(e.try_install_policy(&p), Err(InstallError::InstallsHeld));
        // Decisions still serve, but nothing new is cached while held.
        let fresh = req("nurse", "referral", "treatment", "granted");
        e.decide(&fresh);
        e.decide(&fresh);
        assert_eq!(e.cache_stats().misses, 2);
        assert_eq!(e.cache_stats().hits, 0);
        // Released: the held install now takes effect and caching resumes.
        e.hold_installs(false);
        assert_eq!(e.try_install_policy(&p), Ok(true));
        e.decide(&fresh);
        e.decide(&fresh);
        assert_eq!(e.cache_stats().hits, 1);
    }

    #[test]
    fn cached_and_uncached_decisions_agree() {
        let e = engine();
        for consent in ["granted", "unspecified", "opted-out"] {
            let request = req("nurse", "referral", "treatment", consent);
            let warm = e.decide(&request); // populates cache
            let hit = e.decide(&request); // served from cache
            let fresh = e.decide_uncached(&request);
            assert_eq!(warm.verdict, fresh.verdict, "{consent}");
            assert_eq!(hit.verdict, fresh.verdict, "{consent}");
        }
    }

    #[test]
    fn rewrite_maps_columns_and_suppresses_with_reasons() {
        let mut columns = ColumnMap::new();
        columns.map("records", "referral_note", "referral");
        columns.map("records", "lab_panel", "lab-result");
        let e = DecisionEngine::new(&policy(), vocab(), 4, Some(columns), ServeObs::disabled());
        let reply = e.rewrite(&RewriteRequest::new(
            "p-1",
            "nurse",
            "treatment",
            "records",
            &["referral_note", "lab_panel", "free_text"],
            "granted",
        ));
        assert_eq!(reply.served, vec!["referral_note".to_string()]);
        assert_eq!(
            reply.suppressed,
            vec![
                ("lab_panel".to_string(), DenyReason::PolicyDenied),
                ("free_text".to_string(), DenyReason::UnmappedColumn),
            ]
        );
        let q = reply.rewritten_query.expect("one column survives");
        assert!(q.contains("referral_note") && !q.contains("lab_panel"));
    }

    #[test]
    fn rewrite_with_nothing_served_is_a_denial() {
        let e = engine();
        let reply = e.rewrite(&RewriteRequest::new(
            "p-1",
            "physician",
            "treatment",
            "records",
            &["lab-result"],
            "granted",
        ));
        assert!(reply.denied());
        assert!(reply.rewritten_query.is_none());
    }
}
