//! # prima-serve — the high-QPS policy-decision service
//!
//! The serving layer of the PRIMA pipeline: the refinement loop improves
//! the policy offline, and this crate answers "may this access proceed,
//! right now?" at enforcement-point rates. The design (DESIGN.md §11)
//! is a worker pool behind a [`Transport`] trait whose hot path runs
//! through a sharded decision cache keyed on
//! `(role, op, purpose, consent)` with epoch-based invalidation:
//!
//! * [`api`] — the typed request/reply surface, with structured
//!   fail-closed denial codes (`SRV-xxx`).
//! * [`cache`] — the sharded cache; `O(1)` whole-cache invalidation.
//! * [`engine`] — validated request → cached verdict; installs policy
//!   snapshots under the revision/fingerprint protocol.
//! * [`service`] — the worker pool, the transport trait, the in-process
//!   transports, and the overload/supervision machinery (two-lane
//!   admission, load shedding, deadline propagation, worker respawn,
//!   crash-loop breaker, [`ServeHealth`]).
//! * [`fault`] — [`FaultyTransport`], a chaos wrapper injecting scripted
//!   drops, delays, duplicates and worker panics into any transport.
//! * [`obs`] — the serve metric catalog on `prima-obs`.
//! * [`bench`] — the Zipf-driven load benchmark behind
//!   `prima serve-bench` (emits `BENCH_serve.json`).
//! * [`surge`] — the overload benchmark behind `prima serve-bench
//!   --surge`: 10–100× bursts with elevated break-the-glass rates.
//!
//! The coherence contract: a refinement promotion or a gated overturn
//! bumps `Policy::revision`, the install advances the cache epoch, and
//! the *very next* decision reflects the new policy — property-tested in
//! `tests/coherence.rs` under arbitrary interleavings.
//!
//! The overload contract (DESIGN.md §11): under load beyond capacity the
//! service *degrades*, never collapses — bulk work is shed early with
//! `SRV-011`, expired work is abandoned with `SRV-012`, emergency
//! (break-the-glass) traffic bypasses the shedder, and worker crashes
//! answer fail-closed while the supervisor respawns the pool.

pub mod api;
pub mod bench;
pub mod cache;
pub mod engine;
pub mod fault;
pub mod obs;
pub mod service;
pub mod surge;

pub use api::{
    Consent, DecisionReply, DecisionRequest, DenyReason, Priority, RewriteReply, RewriteRequest,
    Verdict,
};
pub use bench::{run_load, LoadConfig, LoadReport};
pub use cache::{DecisionKey, ServeCacheStats, ShardedDecisionCache};
pub use engine::{DecisionEngine, InstallError};
pub use fault::{FaultyTransport, TransportFaults};
pub use obs::{ServeObs, DECISION_LATENCY_BUCKETS};
pub use service::{
    DirectTransport, InProcessTransport, PolicyService, ServeConfig, ServeError, ServeHealth,
    ServeSnapshot, ServiceState, Transport,
};
pub use surge::{run_surge, LaneOutcomes, SurgeConfig, SurgeReport};
