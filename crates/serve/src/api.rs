//! The wire types: small typed request/reply pairs.
//!
//! Every exchange the service supports is one request struct paired with
//! one reply struct, both plain serializable data — the flight-style
//! surface a remote transport would carry verbatim. Two exchanges exist:
//!
//! * [`DecisionRequest`] → [`DecisionReply`] — "may `role` perform `op`
//!   on behalf of `purpose`, given this consent assertion?" The hot-path
//!   unit the decision cache is keyed on.
//! * [`RewriteRequest`] → [`RewriteReply`] — the HDB Active-Enforcement
//!   contract: a multi-column query is rewritten so only
//!   policy-consistent columns survive, each suppressed column carrying
//!   its structured reason.
//!
//! Denials are never errors: a malformed consent token, an unknown role,
//! or a policy miss all come back as [`Verdict::Deny`] with a stable
//! [`DenyReason`] code, so the service fails closed without panicking on
//! hostile input.

use prima_hdb::HdbError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A parsed consent assertion accompanying a request.
///
/// The wire carries consent as a free-form token (upstream consent
/// registries disagree on spelling); the service parses it strictly and
/// maps anything unrecognized to a [`DenyReason::MalformedConsent`]
/// denial rather than guessing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Consent {
    /// The patient consented to this (category, purpose) use.
    Granted,
    /// The patient opted out: policy permission alone must not serve.
    OptedOut,
    /// No consent information accompanies the request (served under
    /// policy alone, like a row with no opt-out on file).
    Unspecified,
}

impl Consent {
    /// Strictly parses a wire token (case- and whitespace-insensitive).
    /// Unrecognized tokens yield `None` — the caller maps it to a
    /// structured denial, never a panic.
    pub fn parse(token: &str) -> Option<Self> {
        match token.trim().to_ascii_lowercase().as_str() {
            "granted" | "consented" | "yes" => Some(Consent::Granted),
            "opted-out" | "opted_out" | "withheld" | "no" => Some(Consent::OptedOut),
            "unspecified" | "none" | "" => Some(Consent::Unspecified),
            _ => None,
        }
    }

    /// Canonical wire spelling.
    pub fn as_str(&self) -> &'static str {
        match self {
            Consent::Granted => "granted",
            Consent::OptedOut => "opted-out",
            Consent::Unspecified => "unspecified",
        }
    }
}

/// A policy-decision request: may `role` perform `op` for `purpose`?
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct DecisionRequest {
    /// The acting principal (audit `user`); not part of the decision —
    /// decisions are role-based — but carried for audit trails.
    pub principal: String,
    /// The principal's authorization category (vocabulary `authorized`).
    pub role: String,
    /// The requested operation: the data category being accessed
    /// (vocabulary `data`).
    pub op: String,
    /// The declared purpose of access (vocabulary `purpose`).
    pub purpose: String,
    /// Raw consent assertion token; parsed strictly (see [`Consent`]).
    pub consent: String,
    /// Scheduling lane. [`Priority::Emergency`] (break-the-glass) bypasses
    /// load shedding; [`Priority::Bulk`] is dropped first under overload.
    #[serde(default)]
    pub priority: Priority,
    /// Per-request deadline budget, in microseconds from admission.
    /// `None` means no deadline. Work whose deadline has expired is
    /// abandoned with [`DenyReason::DeadlineExceeded`] instead of
    /// occupying a worker.
    #[serde(default)]
    pub deadline_us: Option<u64>,
    /// Trace id stamped at admission (0 = untraced); carried across the
    /// worker-pool hop so far-side spans join the admission trace.
    #[serde(default)]
    pub trace_id: u64,
    /// Span id of the admission-side span, the parent for worker spans.
    #[serde(default)]
    pub trace_span: u64,
}

impl DecisionRequest {
    /// Convenience constructor: a bulk-lane request with no deadline.
    pub fn new(principal: &str, role: &str, op: &str, purpose: &str, consent: &str) -> Self {
        Self {
            principal: principal.into(),
            role: role.into(),
            op: op.into(),
            purpose: purpose.into(),
            consent: consent.into(),
            priority: Priority::Bulk,
            deadline_us: None,
            trace_id: 0,
            trace_span: 0,
        }
    }

    /// Marks the request as break-the-glass traffic: it is admitted on
    /// the emergency lane and never load-shed.
    pub fn emergency(mut self) -> Self {
        self.priority = Priority::Emergency;
        self
    }

    /// Attaches a deadline budget (microseconds from admission).
    pub fn with_deadline_us(mut self, us: u64) -> Self {
        self.deadline_us = Some(us);
        self
    }

    /// Stamps a [`prima_obs::TraceContext`] onto the request so spans on
    /// the far side of the worker-pool hop parent under the admission
    /// span. The service does this automatically at admission.
    pub fn with_trace(mut self, ctx: prima_obs::TraceContext) -> Self {
        self.trace_id = ctx.trace_id;
        self.trace_span = ctx.parent_span;
        self
    }

    /// The trace context stamped onto this request
    /// ([`prima_obs::TraceContext::NONE`] when untraced).
    pub fn trace_context(&self) -> prima_obs::TraceContext {
        prima_obs::TraceContext::new(self.trace_id, self.trace_span)
    }
}

/// The scheduling lane of a [`DecisionRequest`]. Under overload the
/// service sheds bulk traffic first so emergency (break-the-glass)
/// requests keep being decided — a hospital's surge traffic is exactly
/// the traffic that must not be dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum Priority {
    /// Routine traffic: admitted while capacity remains, shed first.
    #[default]
    Bulk,
    /// Break-the-glass / emergency traffic: bypasses the shedder.
    Emergency,
}

impl Priority {
    /// Stable lowercase label for span fields and metric labels.
    pub fn label(&self) -> &'static str {
        match self {
            Priority::Bulk => "bulk",
            Priority::Emergency => "emergency",
        }
    }
}

/// Why a request (or one column of a rewrite) was denied. Codes are
/// stable: downstream alerting keys on them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DenyReason {
    /// No policy-store rule sanctions `(op, purpose, role)`.
    PolicyDenied,
    /// Policy sanctions the access but the patient opted out.
    ConsentWithheld,
    /// The role is not a concept of the `authorized` taxonomy.
    UnknownRole,
    /// The op is not a concept of the `data` taxonomy.
    UnknownOp,
    /// The purpose is not a concept of the `purpose` taxonomy.
    UnknownPurpose,
    /// The consent token did not parse; the service fails closed.
    MalformedConsent,
    /// A required request field was empty.
    EmptyField,
    /// A rewrite column is absent from the table schema.
    UnknownColumn,
    /// A rewrite column has no column→category mapping; enforcement
    /// refuses to guess.
    UnmappedColumn,
    /// The enforcement backend failed (storage, configuration); the
    /// request is denied rather than served un-checked.
    Internal,
    /// The service shed the request under overload before deciding it
    /// (admission control). Retry with backoff; escalate to
    /// [`Priority::Emergency`] only for genuine break-the-glass access.
    Overloaded,
    /// The request's deadline expired before a verdict was computed; the
    /// work was abandoned rather than served late.
    DeadlineExceeded,
}

impl DenyReason {
    /// The stable reason code (`SRV-xxx`).
    pub fn code(&self) -> &'static str {
        match self {
            DenyReason::PolicyDenied => "SRV-001",
            DenyReason::ConsentWithheld => "SRV-002",
            DenyReason::UnknownRole => "SRV-003",
            DenyReason::UnknownOp => "SRV-004",
            DenyReason::UnknownPurpose => "SRV-005",
            DenyReason::MalformedConsent => "SRV-006",
            DenyReason::EmptyField => "SRV-007",
            DenyReason::UnknownColumn => "SRV-008",
            DenyReason::UnmappedColumn => "SRV-009",
            DenyReason::Internal => "SRV-010",
            DenyReason::Overloaded => "SRV-011",
            DenyReason::DeadlineExceeded => "SRV-012",
        }
    }

    /// Every reason, in code order. Exhaustive by construction: adding a
    /// variant without extending this list is a compile error via the
    /// match in [`DenyReason::code`] plus the api test that asserts the
    /// count here matches the variant count.
    pub const ALL: [DenyReason; 12] = [
        DenyReason::PolicyDenied,
        DenyReason::ConsentWithheld,
        DenyReason::UnknownRole,
        DenyReason::UnknownOp,
        DenyReason::UnknownPurpose,
        DenyReason::MalformedConsent,
        DenyReason::EmptyField,
        DenyReason::UnknownColumn,
        DenyReason::UnmappedColumn,
        DenyReason::Internal,
        DenyReason::Overloaded,
        DenyReason::DeadlineExceeded,
    ];
}

impl fmt::Display for DenyReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self {
            DenyReason::PolicyDenied => "policy denies the access",
            DenyReason::ConsentWithheld => "patient consent withheld",
            DenyReason::UnknownRole => "unknown role",
            DenyReason::UnknownOp => "unknown operation/data category",
            DenyReason::UnknownPurpose => "unknown purpose",
            DenyReason::MalformedConsent => "malformed consent token",
            DenyReason::EmptyField => "empty request field",
            DenyReason::UnknownColumn => "unknown column",
            DenyReason::UnmappedColumn => "column has no data-category mapping",
            DenyReason::Internal => "enforcement backend failure",
            DenyReason::Overloaded => "request shed under overload",
            DenyReason::DeadlineExceeded => "deadline expired before a verdict",
        };
        write!(f, "{} ({what})", self.code())
    }
}

/// Maps enforcement-layer errors onto structured denial reasons: every
/// [`HdbError`] the request path can surface becomes a fail-closed
/// denial instead of a panic or an opaque error.
impl From<&HdbError> for DenyReason {
    fn from(e: &HdbError) -> Self {
        match e {
            HdbError::PolicyDenied { .. } => DenyReason::PolicyDenied,
            HdbError::UnknownColumn { .. } => DenyReason::UnknownColumn,
            HdbError::UnmappedColumn { .. } => DenyReason::UnmappedColumn,
            HdbError::MissingPatientColumn { .. } | HdbError::Store(_) => DenyReason::Internal,
        }
    }
}

/// The decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Verdict {
    /// The access is sanctioned (policy allows, consent does not refuse).
    Allow,
    /// The access is refused, with its structured reason.
    Deny(DenyReason),
}

impl Verdict {
    /// True iff the verdict is [`Verdict::Allow`].
    pub fn is_allow(&self) -> bool {
        matches!(self, Verdict::Allow)
    }
}

/// The reply to a [`DecisionRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecisionReply {
    /// Allow, or deny with a reason code.
    pub verdict: Verdict,
    /// The policy-consistent rewritten query (AE's contract rendered as
    /// SQL-ish text); `None` on denial.
    pub rewritten_query: Option<String>,
    /// The [`prima_model::Policy::revision`] the decision was made under.
    pub policy_revision: u64,
    /// True when the verdict came from the decision cache (provenance
    /// for the trace root: a cached decision skipped the matcher).
    #[serde(default)]
    pub cached: bool,
}

/// An HDB query-rewrite request: a multi-column read of one table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewriteRequest {
    /// The acting principal.
    pub principal: String,
    /// The principal's authorization category.
    pub role: String,
    /// The declared purpose.
    pub purpose: String,
    /// The table being queried.
    pub table: String,
    /// Requested columns, in desired output order.
    pub columns: Vec<String>,
    /// Raw consent assertion token (applies to the whole request).
    pub consent: String,
}

impl RewriteRequest {
    /// Convenience constructor.
    pub fn new(
        principal: &str,
        role: &str,
        purpose: &str,
        table: &str,
        columns: &[&str],
        consent: &str,
    ) -> Self {
        Self {
            principal: principal.into(),
            role: role.into(),
            purpose: purpose.into(),
            table: table.into(),
            columns: columns.iter().map(|c| c.to_string()).collect(),
            consent: consent.into(),
        }
    }
}

/// The reply to a [`RewriteRequest`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RewriteReply {
    /// Columns the rewritten query serves, in request order.
    pub served: Vec<String>,
    /// Suppressed columns with their structured reasons.
    pub suppressed: Vec<(String, DenyReason)>,
    /// The rewritten query; `None` when everything was suppressed.
    pub rewritten_query: Option<String>,
    /// The policy revision the rewrite was decided under.
    pub policy_revision: u64,
}

impl RewriteReply {
    /// True iff no column survived.
    pub fn denied(&self) -> bool {
        self.served.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn consent_parses_strictly() {
        assert_eq!(Consent::parse("granted"), Some(Consent::Granted));
        assert_eq!(Consent::parse("  GRANTED "), Some(Consent::Granted));
        assert_eq!(Consent::parse("opted-out"), Some(Consent::OptedOut));
        assert_eq!(Consent::parse(""), Some(Consent::Unspecified));
        assert_eq!(Consent::parse("none"), Some(Consent::Unspecified));
        assert!(Consent::parse("maybe?").is_none());
        assert!(Consent::parse("granted; drop table").is_none());
    }

    #[test]
    fn reason_codes_are_stable_and_distinct() {
        let codes: std::collections::BTreeSet<&str> =
            DenyReason::ALL.iter().map(|r| r.code()).collect();
        assert_eq!(codes.len(), DenyReason::ALL.len(), "codes are distinct");
        assert_eq!(DenyReason::PolicyDenied.code(), "SRV-001");
        assert_eq!(DenyReason::Overloaded.code(), "SRV-011");
        assert_eq!(DenyReason::DeadlineExceeded.code(), "SRV-012");
        assert!(DenyReason::MalformedConsent.to_string().contains("SRV-006"));
        for reason in DenyReason::ALL {
            assert!(reason.code().starts_with("SRV-0"), "{reason:?}");
            assert!(reason.to_string().contains(reason.code()), "{reason:?}");
        }
    }

    /// One sample per [`HdbError`] variant. The inner match is
    /// exhaustive on purpose: a new variant fails to compile here,
    /// forcing this list — and with it the `From<&HdbError>` mapping
    /// assertions below — to grow in the same change.
    fn every_hdb_error() -> Vec<HdbError> {
        fn witness(e: &HdbError) {
            match e {
                HdbError::PolicyDenied { .. }
                | HdbError::UnknownColumn { .. }
                | HdbError::UnmappedColumn { .. }
                | HdbError::MissingPatientColumn { .. }
                | HdbError::Store(_) => {}
            }
        }
        let all = vec![
            HdbError::PolicyDenied {
                role: "r".into(),
                purpose: "p".into(),
            },
            HdbError::UnknownColumn { column: "c".into() },
            HdbError::UnmappedColumn { column: "c".into() },
            HdbError::MissingPatientColumn { column: "p".into() },
            HdbError::Store("io".into()),
        ];
        all.iter().for_each(witness);
        all
    }

    #[test]
    fn hdb_errors_map_to_structured_reasons() {
        let wanted = [
            DenyReason::PolicyDenied,
            DenyReason::UnknownColumn,
            DenyReason::UnmappedColumn,
            DenyReason::Internal,
            DenyReason::Internal,
        ];
        let all = every_hdb_error();
        assert_eq!(all.len(), wanted.len(), "one expectation per variant");
        for (err, want) in all.iter().zip(wanted) {
            assert_eq!(DenyReason::from(err), want, "{err}");
        }
    }

    #[test]
    fn every_hdb_error_variant_maps_to_a_stable_code() {
        // No variant may fall through to a panic or an unstable code:
        // the mapping must land inside the published SRV catalog.
        let catalog: std::collections::BTreeSet<&str> =
            DenyReason::ALL.iter().map(|r| r.code()).collect();
        for err in every_hdb_error() {
            let reason = DenyReason::from(&err);
            assert!(catalog.contains(reason.code()), "{err} → {reason:?}");
        }
    }

    #[test]
    fn wire_types_roundtrip_as_json() {
        let req = DecisionRequest::new("p-1", "nurse", "referral", "treatment", "granted")
            .emergency()
            .with_deadline_us(2_500)
            .with_trace(prima_obs::TraceContext::new(42, 7));
        let back: DecisionRequest =
            serde_json::from_str(&serde_json::to_string(&req).unwrap()).unwrap();
        assert_eq!(back, req);
        assert_eq!(back.priority, Priority::Emergency);
        assert_eq!(back.deadline_us, Some(2_500));
        assert_eq!(back.trace_context(), prima_obs::TraceContext::new(42, 7));

        let reply = DecisionReply {
            verdict: Verdict::Deny(DenyReason::UnknownRole),
            rewritten_query: None,
            policy_revision: 7,
            cached: false,
        };
        let back: DecisionReply =
            serde_json::from_str(&serde_json::to_string(&reply).unwrap()).unwrap();
        assert_eq!(back, reply);
    }
}
