//! The sharded decision cache with epoch-based refinement invalidation.
//!
//! Decisions depend only on `(role, op, purpose, consent)` — the
//! principal is audit metadata — so the verdict space is small and
//! extremely hot under realistic load, which makes caching the whole
//! decision the single biggest throughput lever in the service. The
//! cache is a fixed array of mutex-guarded shards; a request hashes its
//! key to one shard, so concurrent workers rarely contend.
//!
//! Coherence is epoch-based. The engine owns a monotonically increasing
//! *epoch* that advances every time a policy is installed (a refinement
//! promotion or a gated overturn). Each cache entry is stamped with the
//! epoch of the policy snapshot that computed it; a lookup only hits
//! when the entry's stamp equals the cache's current epoch. Advancing
//! the epoch therefore invalidates every entry at once in `O(1)` — no
//! sweep, no per-entry locking — and stale entries are evicted lazily
//! the next time their slot is probed.

use crate::api::{Consent, Verdict};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, Ordering};

/// The cache key: everything a decision depends on, and nothing more.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DecisionKey {
    /// Authorization category.
    pub role: String,
    /// Requested data category.
    pub op: String,
    /// Declared purpose.
    pub purpose: String,
    /// Parsed consent assertion.
    pub consent: Consent,
}

/// One cached verdict, stamped with the epoch that computed it.
#[derive(Debug, Clone, Copy)]
struct Entry {
    stamp: u64,
    verdict: Verdict,
}

/// Counters sampled from a [`ShardedDecisionCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServeCacheStats {
    /// Lookups answered from a current-epoch entry.
    pub hits: u64,
    /// Lookups that fell through to a fresh decision.
    pub misses: u64,
    /// Epoch advances (each drops the entire cache at once).
    pub invalidations: u64,
}

impl ServeCacheStats {
    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A sharded `(key → stamped verdict)` map with `O(1)` whole-cache
/// invalidation. All methods are `&self`; the cache is shared across the
/// worker pool behind an `Arc`.
#[derive(Debug)]
pub struct ShardedDecisionCache {
    shards: Vec<Mutex<HashMap<DecisionKey, Entry>>>,
    /// The current epoch: only entries stamped with this value hit.
    epoch: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    invalidations: AtomicU64,
}

impl ShardedDecisionCache {
    /// Builds a cache with `shards` mutex-guarded segments (clamped to at
    /// least 1; rounded up to a power of two so shard selection is a mask).
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1).next_power_of_two();
        Self {
            shards: (0..shards).map(|_| Mutex::new(HashMap::new())).collect(),
            epoch: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            invalidations: AtomicU64::new(0),
        }
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The current epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    fn shard_of(&self, key: &DecisionKey) -> &Mutex<HashMap<DecisionKey, Entry>> {
        let mut h = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut h);
        &self.shards[(h.finish() as usize) & (self.shards.len() - 1)]
    }

    /// Looks the key up. Hits only when the entry was stamped with the
    /// current epoch; a stale entry is evicted in place and counts as a
    /// miss, so one epoch advance can never serve a pre-refinement
    /// verdict.
    pub fn lookup(&self, key: &DecisionKey) -> Option<Verdict> {
        let now = self.epoch.load(Ordering::Acquire);
        let mut shard = self.shard_of(key).lock();
        match shard.get(key) {
            Some(e) if e.stamp == now => {
                let verdict = e.verdict;
                drop(shard);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(verdict)
            }
            Some(_) => {
                // Lazy eviction: the entry predates the current policy.
                shard.remove(key);
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                drop(shard);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Installs a verdict stamped with the epoch of the policy snapshot
    /// that computed it. If that snapshot is already obsolete (an install
    /// raced in between), the entry is dropped rather than inserted — it
    /// would never hit, and inserting it could shadow a fresher entry.
    pub fn insert(&self, key: DecisionKey, stamp: u64, verdict: Verdict) {
        if stamp != self.epoch.load(Ordering::Acquire) {
            return;
        }
        let mut shard = self.shard_of(&key).lock();
        let slot = shard.entry(key).or_insert(Entry { stamp, verdict });
        if slot.stamp <= stamp {
            *slot = Entry { stamp, verdict };
        }
    }

    /// Advances to `new_epoch`, invalidating every cached entry at once.
    /// Monotonic: a stale `new_epoch` (≤ current) is ignored so delayed
    /// installs cannot resurrect old verdicts.
    pub fn advance(&self, new_epoch: u64) {
        let prev = self.epoch.fetch_max(new_epoch, Ordering::AcqRel);
        if new_epoch > prev {
            self.invalidations.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Samples the counters.
    pub fn stats(&self) -> ServeCacheStats {
        ServeCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            invalidations: self.invalidations.load(Ordering::Relaxed),
        }
    }

    /// Entries currently resident (stale ones included until their slot
    /// is next probed). Diagnostics only.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.lock().len()).sum()
    }

    /// True when no entries are resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::DenyReason;

    fn key(role: &str) -> DecisionKey {
        DecisionKey {
            role: role.into(),
            op: "referral".into(),
            purpose: "treatment".into(),
            consent: Consent::Granted,
        }
    }

    #[test]
    fn insert_then_lookup_hits_within_an_epoch() {
        let cache = ShardedDecisionCache::new(8);
        assert_eq!(cache.lookup(&key("nurse")), None);
        cache.insert(key("nurse"), 0, Verdict::Allow);
        assert_eq!(cache.lookup(&key("nurse")), Some(Verdict::Allow));
        let s = cache.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
        assert!((s.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn advancing_the_epoch_invalidates_everything_at_once() {
        let cache = ShardedDecisionCache::new(4);
        for r in ["nurse", "physician", "clerk"] {
            cache.insert(key(r), 0, Verdict::Allow);
        }
        cache.advance(1);
        for r in ["nurse", "physician", "clerk"] {
            assert_eq!(cache.lookup(&key(r)), None, "{r} must not survive");
        }
        assert_eq!(cache.stats().invalidations, 1);
        // Lazy eviction removed the stale entries as they were probed.
        assert!(cache.is_empty());
    }

    #[test]
    fn stale_stamped_insert_is_dropped() {
        let cache = ShardedDecisionCache::new(4);
        cache.advance(5);
        // A worker computed under epoch 3, then an install raced ahead.
        cache.insert(key("nurse"), 3, Verdict::Deny(DenyReason::PolicyDenied));
        assert_eq!(cache.lookup(&key("nurse")), None);
    }

    #[test]
    fn epoch_advance_is_monotonic() {
        let cache = ShardedDecisionCache::new(2);
        cache.advance(7);
        cache.advance(3); // delayed install must not roll the epoch back
        assert_eq!(cache.epoch(), 7);
        assert_eq!(cache.stats().invalidations, 1);
    }

    #[test]
    fn shard_count_rounds_to_power_of_two() {
        assert_eq!(ShardedDecisionCache::new(0).shard_count(), 1);
        assert_eq!(ShardedDecisionCache::new(5).shard_count(), 8);
        assert_eq!(ShardedDecisionCache::new(64).shard_count(), 64);
    }
}
