//! Chaos harness: [`FaultyTransport`] wraps any [`Transport`] and
//! injects a deterministic, composable fault script.
//!
//! Four fault kinds, each firing on a counter period so a script is
//! reproducible from `(faults, phase)` alone — no wall clock, no RNG on
//! the injection path:
//!
//! * **drop** — the request never reaches the service; the caller gets
//!   [`ServeError::Dropped`] (models a lost datagram / reset stream).
//! * **delay** — the request is held for a fixed duration before
//!   forwarding (models network jitter and slow proxies).
//! * **duplicate** — the request is delivered twice and the second reply
//!   is returned (models at-least-once transports; decisions are
//!   idempotent, so the duplicate must be harmless).
//! * **panic-inject** — the request's principal is rewritten to the
//!   service's configured [`ServeConfig::panic_token`], so the worker
//!   that dequeues it panics (models a poison request that crashes the
//!   handler; the supervision layer must contain it).
//!
//! The seeded chaos suite (`tests/chaos.rs`, `--features chaos`) drives
//! a small service through these scripts concurrently with policy
//! installs and asserts the service never deadlocks, never answers a
//! stale `Allow`, and recovers once faults cease.
//!
//! [`ServeConfig::panic_token`]: crate::service::ServeConfig::panic_token

use crate::api::{DecisionReply, DecisionRequest, RewriteReply, RewriteRequest};
use crate::service::{ServeError, Transport};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A composable fault script. Each kind fires when the transport's
/// request counter (offset by `phase`) is divisible by its period;
/// `None` disables the kind. Periods must be ≥ 1.
#[derive(Debug, Clone, Default)]
pub struct TransportFaults {
    drop_every: Option<u64>,
    delay: Option<(u64, Duration)>,
    duplicate_every: Option<u64>,
    panic_every: Option<(u64, String)>,
    phase: u64,
}

impl TransportFaults {
    /// No faults; the identity script.
    pub fn none() -> Self {
        Self::default()
    }

    /// Drops every `period`-th request with [`ServeError::Dropped`].
    pub fn drop_every(mut self, period: u64) -> Self {
        self.drop_every = Some(period.max(1));
        self
    }

    /// Delays every `period`-th request by `delay` before forwarding.
    pub fn delay_every(mut self, period: u64, delay: Duration) -> Self {
        self.delay = Some((period.max(1), delay));
        self
    }

    /// Delivers every `period`-th request twice (second reply returned).
    pub fn duplicate_every(mut self, period: u64) -> Self {
        self.duplicate_every = Some(period.max(1));
        self
    }

    /// Rewrites every `period`-th request's principal to `token` — the
    /// service's panic token — crashing the worker that picks it up.
    pub fn panic_every(mut self, period: u64, token: &str) -> Self {
        self.panic_every = Some((period.max(1), token.to_string()));
        self
    }

    /// Offsets the counter so independent clients sharing one script
    /// fire at different points (seed the phase per client).
    pub fn phase(mut self, phase: u64) -> Self {
        self.phase = phase;
        self
    }

    fn fires(&self, period: Option<u64>, n: u64) -> bool {
        period.is_some_and(|p| (n + self.phase).is_multiple_of(p))
    }
}

/// A [`Transport`] decorator executing a [`TransportFaults`] script.
/// Deterministic: the `k`-th call through a given wrapper always sees
/// the same faults.
pub struct FaultyTransport<T: Transport> {
    inner: T,
    faults: TransportFaults,
    counter: AtomicU64,
}

impl<T: Transport> FaultyTransport<T> {
    /// Wraps `inner` with the given fault script.
    pub fn new(inner: T, faults: TransportFaults) -> Self {
        Self {
            inner,
            faults,
            counter: AtomicU64::new(0),
        }
    }

    /// The wrapped transport.
    pub fn inner(&self) -> &T {
        &self.inner
    }

    /// Requests the script has seen (including dropped ones).
    pub fn requests_seen(&self) -> u64 {
        self.counter.load(Ordering::Relaxed)
    }
}

impl<T: Transport> Transport for FaultyTransport<T> {
    fn decide(&self, mut req: DecisionRequest) -> Result<DecisionReply, ServeError> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if self.faults.fires(self.faults.drop_every, n) {
            return Err(ServeError::Dropped);
        }
        if let Some((period, token)) = &self.faults.panic_every {
            if self.faults.fires(Some(*period), n) {
                req.principal = token.clone();
            }
        }
        if let Some((period, delay)) = self.faults.delay {
            if self.faults.fires(Some(period), n) {
                std::thread::sleep(delay);
            }
        }
        if self.faults.fires(self.faults.duplicate_every, n) {
            let _first = self.inner.decide(req.clone())?;
        }
        self.inner.decide(req)
    }

    fn rewrite(&self, req: RewriteRequest) -> Result<RewriteReply, ServeError> {
        let n = self.counter.fetch_add(1, Ordering::Relaxed);
        if self.faults.fires(self.faults.drop_every, n) {
            return Err(ServeError::Dropped);
        }
        if let Some((period, delay)) = self.faults.delay {
            if self.faults.fires(Some(period), n) {
                std::thread::sleep(delay);
            }
        }
        self.inner.rewrite(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{DenyReason, Verdict};
    use crate::service::{PolicyService, ServeConfig};
    use prima_model::{Policy, Rule, StoreTag};
    use prima_vocab::{Vocabulary, ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};

    fn service(config: ServeConfig) -> PolicyService {
        let config = config.metrics(prima_obs::MetricsRegistry::new());
        let vocab = Vocabulary::builder()
            .attribute(ATTR_DATA)
            .category("clinical", &["referral"])
            .attribute(ATTR_PURPOSE)
            .category("care", &["treatment"])
            .attribute(ATTR_AUTHORIZED)
            .category("staff", &["nurse"])
            .build()
            .expect("test vocabulary");
        let policy = Policy::with_rules(
            StoreTag::PolicyStore,
            vec![Rule::of(&[
                (ATTR_DATA, "referral"),
                (ATTR_PURPOSE, "treatment"),
                (ATTR_AUTHORIZED, "nurse"),
            ])],
        );
        PolicyService::start(config, &policy, &vocab)
    }

    fn req() -> DecisionRequest {
        DecisionRequest::new("p-1", "nurse", "referral", "treatment", "granted")
    }

    #[test]
    fn drop_script_is_deterministic() {
        let svc = service(ServeConfig::new().workers(1));
        let faulty = FaultyTransport::new(svc.handle(), TransportFaults::none().drop_every(3));
        let outcomes: Vec<bool> = (0..9).map(|_| faulty.decide(req()).is_ok()).collect();
        // Calls 0, 3, 6 drop; the rest deliver.
        assert_eq!(
            outcomes,
            [false, true, true, false, true, true, false, true, true]
        );
        assert_eq!(faulty.requests_seen(), 9);
        svc.shutdown();
    }

    #[test]
    fn duplicates_are_idempotent() {
        let svc = service(ServeConfig::new().workers(1));
        let faulty = FaultyTransport::new(svc.handle(), TransportFaults::none().duplicate_every(1));
        for _ in 0..5 {
            assert_eq!(faulty.decide(req()).unwrap().verdict, Verdict::Allow);
        }
        // Every call delivered twice: 10 decisions served for 5 calls.
        let snap = svc.shutdown();
        assert_eq!(snap.decisions, 10);
    }

    #[test]
    fn panic_injection_is_contained_by_supervision() {
        let svc = service(ServeConfig::new().workers(2).panic_token("☠"));
        let faulty = FaultyTransport::new(
            svc.handle(),
            TransportFaults::none().panic_every(2, "☠").phase(1),
        );
        // Call 0 (phase 1): clean. Call 1 (phase 2): injected panic.
        assert_eq!(faulty.decide(req()).unwrap().verdict, Verdict::Allow);
        let poisoned = faulty.decide(req()).unwrap();
        assert_eq!(poisoned.verdict, Verdict::Deny(DenyReason::Internal));
        // The service keeps answering.
        assert_eq!(faulty.decide(req()).unwrap().verdict, Verdict::Allow);
        svc.shutdown();
    }
}
