//! End-to-end trace connectivity through the real worker pool.
//!
//! The contract under test (DESIGN.md §9): a decision admitted through
//! [`InProcessTransport`] — admission → queue → worker → reply — yields
//! **one connected trace**: a single `serve.decide` root, every span
//! reachable from it by parent edges, no orphan roots, and the decision
//! provenance (verdict, deny code, policy revision, cache hit/miss)
//! attached to the root. The worker span runs on a pool thread on the
//! far side of a channel hop, so this is exactly the cross-thread
//! restoration path `TraceContext` exists for.

use prima_model::{Policy, Rule, StoreTag};
use prima_obs::{FlightRecorder, MetricsRegistry, SamplePolicy, SpanRecord, Tracer};
use prima_serve::{DecisionRequest, PolicyService, ServeConfig, Transport, Verdict};
use prima_vocab::{Vocabulary, ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};
use std::collections::{HashMap, HashSet};
use std::time::{Duration, Instant};

fn fixture() -> (Policy, Vocabulary) {
    let vocab = Vocabulary::builder()
        .attribute(ATTR_DATA)
        .category("clinical", &["referral", "lab-result"])
        .attribute(ATTR_PURPOSE)
        .category("care", &["treatment"])
        .attribute(ATTR_AUTHORIZED)
        .category("staff", &["nurse", "physician"])
        .build()
        .expect("test vocabulary");
    let policy = Policy::with_rules(
        StoreTag::PolicyStore,
        vec![Rule::of(&[
            (ATTR_DATA, "referral"),
            (ATTR_PURPOSE, "treatment"),
            (ATTR_AUTHORIZED, "nurse"),
        ])],
    );
    (policy, vocab)
}

fn allow_req() -> DecisionRequest {
    DecisionRequest::new("p-1", "nurse", "referral", "treatment", "granted")
}

fn deny_req() -> DecisionRequest {
    DecisionRequest::new("p-2", "physician", "lab-result", "treatment", "granted")
}

/// Groups spans by trace id (dropping untraced records) and verifies
/// each group is one connected tree: exactly one root, every span
/// reachable from it along parent edges.
fn connected_traces(spans: &[SpanRecord]) -> HashMap<u64, Vec<&SpanRecord>> {
    let mut traces: HashMap<u64, Vec<&SpanRecord>> = HashMap::new();
    for span in spans.iter().filter(|s| s.trace_id != 0) {
        traces.entry(span.trace_id).or_default().push(span);
    }
    for (trace_id, members) in &traces {
        let roots: Vec<_> = members.iter().filter(|s| s.parent == 0).collect();
        assert_eq!(
            roots.len(),
            1,
            "trace {trace_id} must have exactly one root, got {roots:?}"
        );
        let ids: HashSet<u64> = members.iter().map(|s| s.id).collect();
        // Parent edges all land inside the trace (no orphans)…
        for span in members {
            assert!(
                span.parent == 0 || ids.contains(&span.parent),
                "span {} ({}) in trace {trace_id} has a dangling parent {}",
                span.id,
                span.name,
                span.parent
            );
        }
        // …and every span is reachable from the root.
        let mut reached: HashSet<u64> = HashSet::from([roots[0].id]);
        loop {
            let before = reached.len();
            for span in members {
                if reached.contains(&span.parent) {
                    reached.insert(span.id);
                }
            }
            if reached.len() == before {
                break;
            }
        }
        assert_eq!(
            reached.len(),
            members.len(),
            "trace {trace_id} is not fully reachable from its root"
        );
    }
    traces
}

fn field<'a>(span: &'a SpanRecord, key: &str) -> Option<&'a str> {
    span.fields
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.as_str())
}

#[test]
fn a_pooled_decision_yields_one_connected_trace_with_provenance() {
    let (policy, vocab) = fixture();
    let tracer = Tracer::new();
    let service = PolicyService::start(
        ServeConfig::new()
            .workers(2)
            .metrics(MetricsRegistry::new())
            .tracer(tracer.clone()),
        &policy,
        &vocab,
    );
    let handle = service.handle();
    assert!(handle.decide(allow_req()).unwrap().verdict.is_allow()); // miss
    assert!(handle.decide(allow_req()).unwrap().verdict.is_allow()); // hit
    let denied = handle.decide(deny_req()).unwrap();
    assert!(!denied.verdict.is_allow());
    service.shutdown();

    let spans = tracer.drain();
    let traces = connected_traces(&spans);
    assert_eq!(traces.len(), 3, "three decisions, three traces");
    let mut saw_cached = 0;
    let mut saw_denied = 0;
    for members in traces.values() {
        let root = members
            .iter()
            .find(|s| s.parent == 0)
            .expect("connected_traces verified a root");
        assert_eq!(root.name, "serve.decide");
        // Provenance on the root span.
        assert!(
            field(root, "verdict").is_some(),
            "verdict missing: {root:?}"
        );
        assert!(
            field(root, "policy_revision").is_some(),
            "policy_revision missing: {root:?}"
        );
        assert!(field(root, "cached").is_some(), "cached missing: {root:?}");
        if field(root, "cached") == Some("true") {
            saw_cached += 1;
        }
        if field(root, "verdict") == Some("deny") {
            saw_denied += 1;
            assert_eq!(field(root, "deny_code"), Some("SRV-001"));
        }
        // The worker span crossed the queue hop and parented under the
        // admission root.
        let worker = members
            .iter()
            .find(|s| s.name == "serve.worker")
            .expect("worker span joined the trace");
        assert_eq!(worker.parent, root.id, "worker parents under admission");
        assert!(field(worker, "queue_wait_us").is_some());
    }
    assert_eq!(saw_cached, 1, "exactly one decision was a cache hit");
    assert_eq!(saw_denied, 1, "exactly one decision was denied");
}

#[test]
fn tail_sampling_keeps_the_denied_trace_and_drops_the_boring_ones() {
    let (policy, vocab) = fixture();
    // 1-in-1000 of the boring traffic: of 20 allow traces only the
    // stride-opening first survives, while the denial is always kept.
    let tracer = Tracer::with_sampling(SamplePolicy::keep_1_in(1000));
    let service = PolicyService::start(
        ServeConfig::new().workers(1).tracer(tracer.clone()),
        &policy,
        &vocab,
    );
    let handle = service.handle();
    for _ in 0..20 {
        assert!(handle.decide(allow_req()).unwrap().verdict.is_allow());
    }
    assert!(!handle.decide(deny_req()).unwrap().verdict.is_allow());
    service.shutdown();

    let spans = tracer.drain();
    let traces = connected_traces(&spans);
    assert_eq!(
        traces.len(),
        2,
        "the 1-in-N sample plus the denied trace survive"
    );
    let denied: Vec<_> = traces
        .values()
        .filter(|members| {
            let root = members.iter().find(|s| s.parent == 0).unwrap();
            field(root, "verdict") == Some("deny")
        })
        .collect();
    assert_eq!(denied.len(), 1, "the denied trace is always kept");
    // The kept trace is still complete: the worker span survived too.
    assert!(denied[0].iter().any(|s| s.name == "serve.worker"));
    let stats = tracer.sample_stats();
    assert_eq!(stats.kept_traces, 2);
    assert_eq!(stats.dropped_traces, 19);
}

#[test]
fn a_worker_panic_dumps_the_flight_recorder_with_the_triggering_trace() {
    let (policy, vocab) = fixture();
    let flight = FlightRecorder::new(128);
    let tracer = Tracer::configured(None, flight.clone());
    let service = PolicyService::start(
        ServeConfig::new()
            .workers(1)
            .panic_token("☠-trace")
            .supervision_interval(Duration::from_millis(1))
            .metrics(MetricsRegistry::new())
            .tracer(tracer.clone()),
        &policy,
        &vocab,
    );
    let handle = service.handle();
    // Some healthy context first, so the ring has history to dump.
    for _ in 0..3 {
        assert!(handle.decide(allow_req()).unwrap().verdict.is_allow());
    }
    let boom = DecisionRequest::new("☠-trace", "nurse", "referral", "treatment", "granted");
    let reply = handle.decide(boom).unwrap();
    assert!(matches!(reply.verdict, Verdict::Deny(_)), "fail-closed");

    let dump = flight.last_dump().expect("panic triggered a dump");
    assert_eq!(dump.trigger, "worker_panic");
    assert_ne!(dump.trace_id, 0, "the panicking request was traced");
    let triggering: Vec<_> = dump
        .records
        .iter()
        .filter(|r| r.trace_id == dump.trace_id)
        .collect();
    assert!(
        triggering
            .iter()
            .any(|r| r.name == "serve.worker" && field(r, "outcome") == Some("panic")),
        "dump contains the panicking request's worker span: {triggering:?}"
    );
    // The dump is also surfaced through health and JSONL.
    let deadline = Instant::now() + Duration::from_secs(5);
    while service.health().flight_dumps == 0 {
        assert!(Instant::now() < deadline, "dump never surfaced in health");
        std::thread::sleep(Duration::from_millis(1));
    }
    let jsonl = dump.to_jsonl();
    assert!(jsonl.lines().next().unwrap().contains("worker_panic"));
    assert!(jsonl.contains("\"marked\":true"), "triggering trace marked");
    service.shutdown();
}

#[test]
fn slo_burn_rates_reflect_a_sustained_shed_storm() {
    let (policy, vocab) = fixture();
    // Threshold 0: every bulk request is shed at admission, a 100% bad
    // fraction against the 5% shed objective.
    let service = PolicyService::start(
        ServeConfig::new()
            .workers(1)
            .shed_threshold(0)
            .supervision_interval(Duration::from_millis(1))
            .metrics(MetricsRegistry::new()),
        &policy,
        &vocab,
    );
    let handle = service.handle();
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        for _ in 0..50 {
            let reply = handle.decide(allow_req()).unwrap();
            assert!(!reply.verdict.is_allow(), "threshold 0 sheds everything");
        }
        let health = service.health();
        if health.slo.breached >= 1 {
            assert!(health.slo.tracked >= 3, "serving SLOs are tracked");
            assert!(health.slo.worst_short_burn > 2.0);
            assert!(service.slo().is_breached("shed_rate"));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "shed storm never breached the SLO: {health:?}"
        );
    }
    service.shutdown();
}
