//! Seeded chaos suite: drives a small [`PolicyService`] through
//! composable transport-fault scripts ([`FaultyTransport`]) concurrently
//! with policy installs — including invalid ones — and asserts the
//! overload/supervision contract end to end:
//!
//! * the service never deadlocks (each seed completes under a watchdog);
//! * it never answers a stale or fabricated `Allow`: every sampled
//!   `Allow` reply agrees with the uncached oracle at the same revision;
//! * injected worker panics are contained (the client gets a fail-closed
//!   `SRV-010`, the supervisor respawns the worker);
//! * after faults cease the service recovers to full health and installs
//!   flow again.
//!
//! Run via the `chaos-serve` CI job: one seed per matrix entry,
//! `cargo test -p prima-serve --features chaos -- seed_<n>`.

#![cfg(feature = "chaos")]

use prima_audit::{BreakerConfig, BreakerState};
use prima_model::Rule;
use prima_obs::{FlightRecorder, MetricsRegistry, SamplePolicy, Tracer};
use prima_serve::{
    DecisionRequest, DenyReason, FaultyTransport, PolicyService, ServeConfig, ServeError,
    Transport, TransportFaults, Verdict,
};
use prima_vocab::{ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};
use prima_workload::{Scenario, ZipfPopulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Once};
use std::time::{Duration, Instant};

const PANIC_TOKEN: &str = "☠-chaos";

/// Silences the injected-panic backtraces (they are expected by the
/// hundreds here) while leaving every other panic loud.
fn quiet_injected_panics() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let injected = info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected worker panic"))
                || info
                    .payload()
                    .downcast_ref::<&str>()
                    .is_some_and(|m| m.contains("injected worker panic"));
            if !injected {
                default(info);
            }
        }));
    });
}

struct RequestSpace {
    population: ZipfPopulation,
    roles: Vec<String>,
    ops: Vec<String>,
    purposes: Vec<String>,
}

impl RequestSpace {
    fn of(scenario: &Scenario) -> Self {
        let leaves = |attr: &str| -> Vec<String> {
            let t = scenario.vocab.attribute(attr).expect("scenario attribute");
            t.all_leaves()
                .iter()
                .map(|&id| t.name(id).to_string())
                .collect()
        };
        Self {
            population: ZipfPopulation::new(5_000, 1.05),
            roles: leaves(ATTR_AUTHORIZED),
            ops: leaves(ATTR_DATA),
            purposes: leaves(ATTR_PURPOSE),
        }
    }

    fn sample(&self, rng: &mut StdRng) -> DecisionRequest {
        let rank = self.population.sample(rng);
        let req = DecisionRequest::new(
            &ZipfPopulation::principal_name(rank),
            &self.roles[rank % self.roles.len()],
            &self.ops[rank % self.ops.len()],
            &self.purposes[rank % self.purposes.len()],
            if rng.gen::<f64>() < 0.9 {
                "granted"
            } else {
                "opted-out"
            },
        );
        // A mix of lanes and budgets, like real traffic under incident.
        match rng.gen_range(0..10) {
            0 => req.emergency().with_deadline_us(50_000),
            1..=2 => req.with_deadline_us(10_000),
            _ => req,
        }
    }
}

/// One full chaos round for a seed. The closure body is itself run under
/// a watchdog by the caller, so a deadlock fails the test rather than
/// wedging it.
fn chaos_round(seed: u64) {
    let scenario = Scenario::community_hospital();
    // The black box rides along: a tail-sampled tracer whose flight
    // recorder the incident paths (worker panic, breaker open, degraded
    // entry) dump automatically.
    let flight = FlightRecorder::new(512);
    let tracer = Tracer::configured(Some(SamplePolicy::keep_1_in(64)), flight.clone());
    let service = PolicyService::start(
        ServeConfig::new()
            .workers(3)
            .shed_threshold(64)
            .max_queue_age(Duration::from_millis(50))
            .panic_token(PANIC_TOKEN)
            .supervision_interval(Duration::from_millis(1))
            .breaker(BreakerConfig {
                failure_threshold: 3,
                cooldown_rounds: 5,
            })
            .metrics(MetricsRegistry::new())
            .tracer(tracer),
        &scenario.policy,
        &scenario.vocab,
    );
    let engine = Arc::clone(service.engine());
    let space = Arc::new(RequestSpace::of(&scenario));

    // The promoter races installs — valid ones (mined ground rules) and
    // invalid ones (unknown concepts) — against the fault storm, so the
    // degraded/pinned transitions happen *while* workers crash.
    let stop = Arc::new(AtomicBool::new(false));
    let promoter = {
        let service_engine = Arc::clone(&engine);
        let stop = Arc::clone(&stop);
        let pool: Vec<Rule> = scenario
            .ground_truth()
            .iter()
            .map(Rule::from_ground)
            .collect();
        let mut policy = scenario.policy.clone();
        std::thread::spawn(move || {
            let mut i = 0usize;
            while !stop.load(Ordering::Acquire) {
                if i % 3 == 2 {
                    // Poisoned install: must reject and pin, not corrupt.
                    let mut bad = policy.clone();
                    bad.push(Rule::of(&[
                        (ATTR_DATA, "chaos-unknown-⚠"),
                        (ATTR_PURPOSE, "treatment"),
                        (ATTR_AUTHORIZED, "nurse"),
                    ]));
                    let _ = service_engine.try_install_policy(&bad);
                } else {
                    policy.push(pool[i % pool.len()].clone());
                    let _ = service_engine.try_install_policy(&policy);
                }
                i += 1;
                std::thread::sleep(Duration::from_millis(2));
            }
        })
    };

    let clients: Vec<_> = (0..4u64)
        .map(|c| {
            let transport = FaultyTransport::new(
                service.handle(),
                TransportFaults::none()
                    .drop_every(5 + seed % 7)
                    .delay_every(7 + seed % 5, Duration::from_micros(200))
                    .duplicate_every(11 + seed % 5)
                    .panic_every(59 + seed % 13, PANIC_TOKEN)
                    .phase(seed.wrapping_mul(c + 1) % 17),
            );
            let engine = Arc::clone(&engine);
            let space = Arc::clone(&space);
            let seed = seed.wrapping_add(c);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(seed);
                let mut allow_mismatches = 0u64;
                for _ in 0..1_500 {
                    let req = space.sample(&mut rng);
                    match transport.decide(req.clone()) {
                        // Fail-closed audit: an Allow must agree with the
                        // uncached oracle at the same revision — chaos
                        // must never fabricate permission.
                        Ok(reply) if reply.verdict == Verdict::Allow => {
                            let fresh = engine.decide_uncached(&req);
                            if fresh.policy_revision == reply.policy_revision
                                && fresh.verdict != Verdict::Allow
                            {
                                allow_mismatches += 1;
                            }
                        }
                        // Denials (including SRV-010/011/012) and
                        // injected drops are all legitimate under chaos.
                        Ok(_) => {}
                        Err(ServeError::Dropped) => {}
                        Err(ServeError::Closed) => panic!("service closed mid-chaos"),
                    }
                }
                allow_mismatches
            })
        })
        .collect();

    let mut allow_mismatches = 0u64;
    for client in clients {
        allow_mismatches += client.join().expect("chaos client finished");
    }
    assert_eq!(
        allow_mismatches, 0,
        "an Allow disagreed with the uncached oracle (seed {seed})"
    );
    stop.store(true, Ordering::Release);
    promoter.join().expect("promoter finished");

    // The fault scripts guarantee panics actually fired …
    let mid = service.health();
    assert!(
        mid.worker_panics > 0,
        "panic injection never fired (seed {seed})"
    );
    assert!(
        mid.worker_restarts > 0,
        "supervisor never respawned a worker (seed {seed})"
    );
    // … and the incidents dumped the flight recorder as they happened
    // (worker panics, breaker openings, degraded entries all trigger).
    assert!(
        mid.flight_dumps > 0,
        "incidents never dumped the flight recorder (seed {seed})"
    );

    // … and once faults cease, the service must recover to full health.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let health = service.health();
        if health.breaker == BreakerState::Closed
            && health.workers_alive == health.workers_configured
            && !health.installs_held
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "service never recovered after faults ceased (seed {seed}): {health:?}"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // A clean install and a clean decision both flow again.
    let mut restored = scenario.policy.clone();
    restored.push(Rule::from_ground(&scenario.ground_truth()[0]));
    service
        .try_install_policy(&restored)
        .expect("install flows after recovery");
    let probe = space.sample(&mut StdRng::seed_from_u64(seed));
    let reply = service.handle().decide(probe.clone()).expect("service up");
    assert!(
        !matches!(
            reply.verdict,
            Verdict::Deny(DenyReason::Internal | DenyReason::Overloaded)
        ),
        "recovered service still failing (seed {seed}): {reply:?}"
    );
    // Black-box postmortem: one last seeded panic on the quiet service,
    // then read the dump it must have produced — the most recent dump is
    // deterministically this panic's, and it carries the panicking
    // request's own worker span (the triggering trace, marked in JSONL).
    let boom = DecisionRequest {
        principal: PANIC_TOKEN.into(),
        ..space.sample(&mut StdRng::seed_from_u64(seed))
    };
    let reply = service.handle().decide(boom).expect("service up");
    assert_eq!(
        reply.verdict,
        Verdict::Deny(DenyReason::Internal),
        "seeded panic answers fail-closed (seed {seed})"
    );
    let dump = flight.last_dump().expect("panic dumped the black box");
    assert_eq!(dump.trigger, "worker_panic", "seed {seed}");
    assert_ne!(dump.trace_id, 0, "panicking request was traced");
    assert!(
        dump.records.iter().any(|r| {
            r.trace_id == dump.trace_id
                && r.name == "serve.worker"
                && r.fields.iter().any(|(k, v)| k == "outcome" && v == "panic")
        }),
        "dump lacks the panicking worker span (seed {seed})"
    );
    assert!(
        dump.to_jsonl().contains("\"marked\":true"),
        "triggering trace is marked in the JSONL replay (seed {seed})"
    );
    service.shutdown();
}

/// Runs a chaos round under a deadlock watchdog.
fn chaos_seed(seed: u64) {
    quiet_injected_panics();
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    let round = std::thread::spawn(move || {
        chaos_round(seed);
        let _ = done_tx.send(());
    });
    match done_rx.recv_timeout(Duration::from_secs(120)) {
        Ok(()) => round.join().expect("chaos round"),
        // Disconnected: the round panicked — join to surface the real
        // assertion. Timeout: a genuine deadlock.
        Err(std::sync::mpsc::RecvTimeoutError::Disconnected) => {
            round.join().expect("chaos round failed");
        }
        Err(std::sync::mpsc::RecvTimeoutError::Timeout) => {
            panic!("chaos round deadlocked (seed {seed})")
        }
    }
}

#[test]
fn seed_11() {
    chaos_seed(11);
}

#[test]
fn seed_23() {
    chaos_seed(23);
}

#[test]
fn seed_47() {
    chaos_seed(47);
}

#[test]
fn seed_101() {
    chaos_seed(101);
}

#[test]
fn seed_977() {
    chaos_seed(977);
}

#[test]
fn seed_6151() {
    chaos_seed(6151);
}

#[test]
fn seed_52361() {
    chaos_seed(52361);
}

#[test]
fn seed_999983() {
    chaos_seed(999983);
}
