//! Cache-coherence property test (the serving layer's core contract).
//!
//! Oracle: for ANY interleaving of decisions, refinement promotions, and
//! gated overturns, a decision served through the sharded cache must be
//! identical — verdict and policy revision — to a fresh decision
//! computed with the cache bypassed. Equivalently: after a revision
//! bump, no stale verdict survives; the very next decision reflects the
//! installed policy.
//!
//! The promotion path is the real one, not a mock: candidates flow
//! through `ReviewQueue::propose` → accept → `apply_accepted_gated`
//! against a `SafetyGate`, so both revision-bump sites (rule promotion
//! and PA005 overturn) feed the engine exactly as `PrimaSystem` does.

use prima_analyze::SafetyGate;
use prima_mining::Pattern;
use prima_model::{GroundRule, Policy, Rule, StoreTag};
use prima_refine::{CandidateState, ReviewQueue};
use prima_serve::{DecisionEngine, DecisionRequest, ServeObs};
use prima_vocab::samples::figure_1;
use proptest::prelude::*;
use std::sync::Arc;

/// Decision-dimension values the interleaving draws from: ground leaves
/// plus a few hostile tokens (unknown concepts, empty, junk consent).
const ROLES: &[&str] = &["physician", "nurse", "clerk", "registrar", "janitor", ""];
const OPS: &[&str] = &[
    "prescription",
    "referral",
    "lab-result",
    "psychiatry",
    "claim",
    "badge-scan",
];
const PURPOSES: &[&str] = &[
    "treatment",
    "registration",
    "billing",
    "telemarketing",
    "research",
    "surfing",
];
const CONSENTS: &[&str] = &["granted", "opted-out", "unspecified", "on-file?"];

/// Ground rules the safety gate ADMITS (inside the medical envelope):
/// promoting one adds a rule and bumps the revision.
const PROMOTABLE: &[(&str, &str, &str)] = &[
    ("referral", "treatment", "nurse"),
    ("lab-result", "treatment", "physician"),
    ("psychiatry", "treatment", "physician"),
    ("prescription", "registration", "nurse"),
];

/// Ground rules the gate REFUSES (outside the envelope): accepting one
/// is overturned by `apply_accepted_gated` — no rule text changes, but
/// the revision still bumps (the promotion was briefly "accepted").
const OVERTURNED: &[(&str, &str, &str)] = &[
    ("claim", "telemarketing", "clerk"),
    ("address", "research", "registrar"),
    ("insurance", "billing", "nurse"),
];

fn base_policy() -> Policy {
    Policy::with_rules(
        StoreTag::PolicyStore,
        vec![
            Rule::of(&[
                ("data", "general-care"),
                ("purpose", "treatment"),
                ("authorized", "nurse"),
            ]),
            Rule::of(&[
                ("data", "demographic"),
                ("purpose", "registration"),
                ("authorized", "registrar"),
            ]),
        ],
    )
}

/// The refinement-safety envelope: anything medical for healthcare
/// administration by medical staff, plus the registrar's registration
/// lane. `PROMOTABLE` rules are inside; `OVERTURNED` rules are not.
fn gate() -> SafetyGate {
    SafetyGate::new(Policy::with_rules(
        StoreTag::PolicyStore,
        vec![
            Rule::of(&[
                ("data", "medical"),
                ("purpose", "administering-healthcare"),
                ("authorized", "medical-staff"),
            ]),
            Rule::of(&[
                ("data", "demographic"),
                ("purpose", "registration"),
                ("authorized", "registrar"),
            ]),
        ],
    ))
}

fn ground(spec: (&str, &str, &str)) -> GroundRule {
    GroundRule::of(&[
        ("data", spec.0),
        ("purpose", spec.1),
        ("authorized", spec.2),
    ])
}

/// One step of the interleaving.
#[derive(Debug, Clone)]
enum Op {
    /// Decide `(role, op, purpose, consent)` (indices into the pools).
    Decide(usize, usize, usize, usize),
    /// Run a full review round promoting `PROMOTABLE[i]`.
    Promote(usize),
    /// Run a full review round whose accepted candidate `OVERTURNED[i]`
    /// is overturned by the gate.
    Overturn(usize),
}

/// Decides ~2/3 of the time; the rest splits between promotion and
/// overturn rounds. (The vendored proptest has no `prop_oneof`, so the
/// variant choice rides along as the first tuple element.)
fn op_strategy() -> impl Strategy<Value = Op> {
    (
        0..6usize,
        0..ROLES.len(),
        0..OPS.len(),
        (0..PURPOSES.len(), 0..CONSENTS.len()),
    )
        .prop_map(|(kind, r, o, (p, c))| match kind {
            0..=3 => Op::Decide(r, o, p, c),
            4 => Op::Promote(r % PROMOTABLE.len()),
            _ => Op::Overturn(r % OVERTURNED.len()),
        })
}

/// Runs one review round through the real refine machinery and installs
/// the result into the engine. Returns whether the install took effect.
fn review_round(
    queue: &mut ReviewQueue,
    policy: &mut Policy,
    gate: &SafetyGate,
    engine: &DecisionEngine,
    rule: GroundRule,
    round: usize,
) -> bool {
    queue.propose(vec![Pattern::new(rule, 40, 4)], round);
    queue.accept_all_pending();
    let vocab = figure_1();
    queue.apply_accepted_gated(policy, gate, &vocab);
    engine.install_policy(policy)
}

/// Strips the cache-provenance flag so replies from the cached and
/// uncached paths compare on the decision alone.
fn normal(mut reply: prima_serve::DecisionReply) -> prima_serve::DecisionReply {
    reply.cached = false;
    reply
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The coherence oracle under arbitrary interleavings.
    #[test]
    fn cached_decision_always_equals_fresh_decision(
        ops in collection::vec(op_strategy(), 1..80),
    ) {
        let vocab = Arc::new(figure_1());
        let mut policy = base_policy();
        let engine = DecisionEngine::new(&policy, Arc::clone(&vocab), 8, None, ServeObs::disabled());
        let gate = gate();
        let mut queue = ReviewQueue::new();
        let mut round = 0usize;

        for op in &ops {
            match *op {
                Op::Decide(r, o, p, c) => {
                    let req = DecisionRequest::new(
                        "prop-principal", ROLES[r], OPS[o], PURPOSES[p], CONSENTS[c],
                    );
                    // Decide twice through the cache (miss then hit) and
                    // once uncached; all three must agree exactly on the
                    // decision. The `cached` provenance flag is *meant*
                    // to differ between the paths, so the oracle
                    // normalises it away before comparing.
                    let first = normal(engine.decide(&req));
                    let second = normal(engine.decide(&req));
                    let fresh = normal(engine.decide_uncached(&req));
                    prop_assert_eq!(&first, &fresh, "cold path diverged for {:?}", req);
                    prop_assert_eq!(&second, &fresh, "warm path diverged for {:?}", req);
                    prop_assert_eq!(fresh.policy_revision, policy.revision());
                }
                Op::Promote(i) => {
                    round += 1;
                    review_round(&mut queue, &mut policy, &gate, &engine,
                                 ground(PROMOTABLE[i]), round);
                    prop_assert_eq!(engine.policy_revision(), policy.revision());
                }
                Op::Overturn(i) => {
                    round += 1;
                    review_round(&mut queue, &mut policy, &gate, &engine,
                                 ground(OVERTURNED[i]), round);
                    prop_assert_eq!(engine.policy_revision(), policy.revision());
                }
            }
        }

        // Exhaustive sweep at the end: every key in the decision space
        // agrees between the (now well-populated) cache and the oracle.
        for role in ROLES {
            for data in OPS {
                for purpose in PURPOSES {
                    for consent in CONSENTS {
                        let req = DecisionRequest::new("sweep", role, data, purpose, consent);
                        let cached = normal(engine.decide(&req));
                        let fresh = normal(engine.decide_uncached(&req));
                        prop_assert_eq!(&cached, &fresh, "sweep diverged for {:?}", req);
                    }
                }
            }
        }
    }

    /// After a promotion round that admits a rule, the next cached
    /// decision on that exact triple MUST be Allow — no stale denial may
    /// survive the revision bump (and conversely the overturned rule
    /// must stay denied).
    #[test]
    fn promoted_rule_is_visible_to_the_very_next_decision(
        warmup in collection::vec(
            (0..ROLES.len(), 0..OPS.len(), 0..PURPOSES.len()),
            0..40,
        ),
        promote_idx in 0..PROMOTABLE.len(),
        overturn_idx in 0..OVERTURNED.len(),
    ) {
        let vocab = Arc::new(figure_1());
        let mut policy = base_policy();
        let engine = DecisionEngine::new(&policy, Arc::clone(&vocab), 4, None, ServeObs::disabled());
        let gate = gate();
        let mut queue = ReviewQueue::new();

        // Warm the cache with arbitrary traffic (all consent granted so
        // cache slots fill with policy verdicts).
        for &(r, o, p) in &warmup {
            let req = DecisionRequest::new("w", ROLES[r], OPS[o], PURPOSES[p], "granted");
            engine.decide(&req);
        }

        let spec = PROMOTABLE[promote_idx];
        let target = DecisionRequest::new("t", spec.2, spec.0, spec.1, "granted");
        let before = engine.decide(&target);

        review_round(&mut queue, &mut policy, &gate, &engine, ground(spec), 1);
        let after = engine.decide(&target);
        prop_assert!(after.verdict.is_allow(),
            "promoted {:?} must allow immediately (before: {:?})", spec, before.verdict);
        prop_assert_eq!(after.policy_revision, policy.revision());

        // And an overturned candidate must NOT become visible.
        let ospec = OVERTURNED[overturn_idx];
        let otarget = DecisionRequest::new("t", ospec.2, ospec.0, ospec.1, "granted");
        review_round(&mut queue, &mut policy, &gate, &engine, ground(ospec), 2);
        let overturned = engine.decide(&otarget);
        prop_assert!(!overturned.verdict.is_allow(),
            "overturned {:?} must stay denied", ospec);
        prop_assert_eq!(overturned.policy_revision, policy.revision());
        // The overturn decided the candidate: it is Rejected, not pending.
        prop_assert!(queue.candidates().iter().any(|c|
            c.state == CandidateState::Rejected));
    }
}
