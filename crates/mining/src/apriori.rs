//! Apriori frequent-itemset mining (Agrawal & Srikant, VLDB 1994 — the
//! paper's reference \[18\] and its stated future-work direction).
//!
//! Each practice entry becomes a transaction of `(attribute, value)` items
//! (one item per configured attribute). Levelwise candidate generation with
//! subset pruning finds every itemset meeting the support threshold; from
//! those, association rules with confidence are derived.
//!
//! Why this matters over the SQL miner: `GROUP BY data, purpose,
//! authorized` only sees *full-width* combinations. Apriori also surfaces
//! the partial ones — "correlations between attribute pairs that are not
//! discovered by simple SQL queries" — e.g. nurses touching referral data
//! for many scattered purposes, none individually frequent.

use crate::error::MiningError;
use crate::pattern::{sort_patterns, Pattern};
use crate::Miner;
use prima_model::{GroundRule, RuleTerm};
use prima_store::{Table, Value};
use std::collections::{HashMap, HashSet};

/// Configuration for the Apriori miner.
#[derive(Debug, Clone, PartialEq)]
pub struct AprioriConfig {
    /// Audit columns whose values become items (default
    /// `data, purpose, authorized`).
    pub attributes: Vec<String>,
    /// Absolute support threshold (an itemset must occur in at least this
    /// many transactions).
    pub min_support: usize,
    /// Distinct-user condition applied to *full-width* patterns when this
    /// miner is used through the [`Miner`] interface (mirrors the SQL
    /// miner's `c`).
    pub min_distinct_users: usize,
    /// The column holding the requesting user.
    pub user_column: String,
    /// Cap on itemset size (`None` = up to the number of attributes).
    pub max_len: Option<usize>,
}

impl Default for AprioriConfig {
    fn default() -> Self {
        Self {
            attributes: vec!["data".into(), "purpose".into(), "authorized".into()],
            min_support: 5,
            min_distinct_users: 1,
            user_column: "user".into(),
            max_len: None,
        }
    }
}

/// A frequent itemset: sorted `(attribute, value)` items and their support.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrequentItemset {
    /// The items, sorted by `(attribute, value)`.
    pub items: Vec<(String, String)>,
    /// Number of transactions containing all the items.
    pub support: usize,
}

impl FrequentItemset {
    /// Itemset size.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True iff the itemset is empty (never produced by the miner).
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// An association rule `antecedent ⇒ consequent`.
#[derive(Debug, Clone, PartialEq)]
pub struct AssociationRule {
    /// Left-hand side items.
    pub antecedent: Vec<(String, String)>,
    /// Right-hand side items.
    pub consequent: Vec<(String, String)>,
    /// Support of antecedent ∪ consequent.
    pub support: usize,
    /// `support(antecedent ∪ consequent) / support(antecedent)`.
    pub confidence: f64,
}

/// The Apriori miner.
#[derive(Debug, Clone, Default)]
pub struct AprioriMiner {
    config: AprioriConfig,
}

impl AprioriMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: AprioriConfig) -> Self {
        Self { config }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &AprioriConfig {
        &self.config
    }

    /// Runs levelwise Apriori over the practice table, returning every
    /// frequent itemset (all sizes), sorted by size then items.
    pub fn frequent_itemsets(&self, practice: &Table) -> Result<Vec<FrequentItemset>, MiningError> {
        let (transactions, items) = self.transactions(practice)?;
        let min_support = self.config.min_support.max(1);
        let max_len = self
            .config
            .max_len
            .unwrap_or(self.config.attributes.len())
            .min(self.config.attributes.len());

        let mut all: Vec<(Vec<u32>, usize)> = Vec::new();

        // L1.
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for t in &transactions {
            for &it in t {
                *counts.entry(it).or_default() += 1;
            }
        }
        let mut level: Vec<Vec<u32>> = counts
            .iter()
            .filter(|(_, &c)| c >= min_support)
            .map(|(&it, _)| vec![it])
            .collect();
        level.sort();
        for is in &level {
            all.push((is.clone(), counts[&is[0]]));
        }

        let mut k = 2usize;
        while !level.is_empty() && k <= max_len {
            let candidates = generate_candidates(&level);
            if candidates.is_empty() {
                break;
            }
            let mut cand_counts: HashMap<&[u32], usize> = HashMap::new();
            for t in &transactions {
                for c in &candidates {
                    if is_subset(c, t) {
                        *cand_counts.entry(c.as_slice()).or_default() += 1;
                    }
                }
            }
            let mut next: Vec<Vec<u32>> = Vec::new();
            for c in &candidates {
                if let Some(&count) = cand_counts.get(c.as_slice()) {
                    if count >= min_support {
                        next.push(c.clone());
                        all.push((c.clone(), count));
                    }
                }
            }
            next.sort();
            level = next;
            k += 1;
        }

        all.sort_by(|(a, _), (b, _)| a.len().cmp(&b.len()).then(a.cmp(b)));
        Ok(all
            .into_iter()
            .map(|(ids, support)| {
                let mut named: Vec<(String, String)> =
                    ids.iter().map(|&i| items[i as usize].clone()).collect();
                // Present itemsets in canonical (attribute, value) order
                // regardless of interning order.
                named.sort();
                FrequentItemset {
                    items: named,
                    support,
                }
            })
            .collect())
    }

    /// Derives association rules with at least `min_confidence` from the
    /// frequent itemsets (every subset of a frequent itemset is frequent,
    /// so all needed supports are present).
    pub fn association_rules(
        &self,
        itemsets: &[FrequentItemset],
        min_confidence: f64,
    ) -> Vec<AssociationRule> {
        let support_of: HashMap<&[(String, String)], usize> = itemsets
            .iter()
            .map(|fi| (fi.items.as_slice(), fi.support))
            .collect();
        let mut rules = Vec::new();
        for fi in itemsets.iter().filter(|fi| fi.len() >= 2) {
            // Every non-empty proper subset as antecedent.
            let n = fi.len();
            for mask in 1..((1usize << n) - 1) {
                let mut ante = Vec::new();
                let mut cons = Vec::new();
                for (i, item) in fi.items.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        ante.push(item.clone());
                    } else {
                        cons.push(item.clone());
                    }
                }
                let Some(&ante_support) = support_of.get(ante.as_slice()) else {
                    continue; // defensive; downward closure should supply it
                };
                let confidence = fi.support as f64 / ante_support as f64;
                if confidence >= min_confidence {
                    rules.push(AssociationRule {
                        antecedent: ante,
                        consequent: cons,
                        support: fi.support,
                        confidence,
                    });
                }
            }
        }
        rules.sort_by(|a, b| {
            b.confidence
                .partial_cmp(&a.confidence)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(b.support.cmp(&a.support))
                .then(a.antecedent.cmp(&b.antecedent))
        });
        rules
    }

    /// Builds transactions: one item per configured attribute per row,
    /// with the interned item dictionary.
    #[allow(clippy::type_complexity)]
    fn transactions(
        &self,
        practice: &Table,
    ) -> Result<(Vec<Vec<u32>>, Vec<(String, String)>), MiningError> {
        if self.config.attributes.is_empty() {
            return Err(MiningError::Config {
                message: "attribute subset must be non-empty".into(),
            });
        }
        let mut attr_indices = Vec::with_capacity(self.config.attributes.len());
        for a in &self.config.attributes {
            let idx =
                practice
                    .schema()
                    .index_of(a)
                    .ok_or_else(|| MiningError::MissingAttribute {
                        attribute: a.clone(),
                    })?;
            attr_indices.push(idx);
        }
        let mut dict: HashMap<(String, String), u32> = HashMap::new();
        let mut items: Vec<(String, String)> = Vec::new();
        let mut transactions = Vec::with_capacity(practice.len());
        for row in practice.scan() {
            let mut t = Vec::with_capacity(attr_indices.len());
            for (attr, &idx) in self.config.attributes.iter().zip(&attr_indices) {
                let value = match row.get(idx) {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                };
                let key = (attr.clone(), value);
                let id = *dict.entry(key.clone()).or_insert_with(|| {
                    items.push(key.clone());
                    (items.len() - 1) as u32
                });
                t.push(id);
            }
            t.sort_unstable();
            transactions.push(t);
        }
        Ok((transactions, items))
    }

    /// Distinct users per full-width itemset (for the [`Miner`] adapter).
    fn distinct_users(
        &self,
        practice: &Table,
        patterns: &[Vec<(String, String)>],
    ) -> Result<Vec<usize>, MiningError> {
        let user_idx = practice
            .schema()
            .index_of(&self.config.user_column)
            .ok_or_else(|| MiningError::MissingAttribute {
                attribute: self.config.user_column.clone(),
            })?;
        let mut sets: Vec<HashSet<String>> = vec![HashSet::new(); patterns.len()];
        for row in practice.scan() {
            for (pi, pat) in patterns.iter().enumerate() {
                let matches = pat.iter().all(|(attr, value)| {
                    let idx = practice
                        .schema()
                        .index_of(attr)
                        .expect("pattern attributes validated");
                    match row.get(idx) {
                        Value::Str(s) => s == value,
                        other => &other.to_string() == value,
                    }
                });
                if matches {
                    if let Some(u) = row.get(user_idx).as_str() {
                        sets[pi].insert(u.to_string());
                    }
                }
            }
        }
        Ok(sets.into_iter().map(|s| s.len()).collect())
    }
}

impl Miner for AprioriMiner {
    /// Full-width frequent itemsets as patterns, filtered by the
    /// distinct-user condition — directly comparable with
    /// [`SqlMiner`](crate::SqlMiner) output (experiment E8 asserts they agree).
    fn mine(&self, practice: &Table) -> Result<Vec<Pattern>, MiningError> {
        let width = self.config.attributes.len();
        let itemsets = self.frequent_itemsets(practice)?;
        let full: Vec<&FrequentItemset> = itemsets.iter().filter(|fi| fi.len() == width).collect();
        let keys: Vec<Vec<(String, String)>> = full.iter().map(|fi| fi.items.clone()).collect();
        let users = self.distinct_users(practice, &keys)?;
        let mut patterns = Vec::new();
        for (fi, distinct) in full.iter().zip(users) {
            if distinct <= self.config.min_distinct_users {
                continue;
            }
            let mut terms = Vec::with_capacity(fi.items.len());
            for (attr, value) in &fi.items {
                terms.push(
                    RuleTerm::new(attr, value).map_err(|e| MiningError::Malformed {
                        message: e.to_string(),
                    })?,
                );
            }
            let rule = GroundRule::new(terms).map_err(|e| MiningError::Malformed {
                message: e.to_string(),
            })?;
            patterns.push(Pattern::new(rule, fi.support, distinct));
        }
        sort_patterns(&mut patterns);
        Ok(patterns)
    }

    fn describe(&self) -> String {
        format!(
            "apriori(A=[{}], min_support={}, users>{})",
            self.config.attributes.join(","),
            self.config.min_support,
            self.config.min_distinct_users
        )
    }
}

/// Joins sorted (k-1)-itemsets sharing a (k-2)-prefix, pruning candidates
/// with an infrequent (k-1)-subset.
fn generate_candidates(level: &[Vec<u32>]) -> Vec<Vec<u32>> {
    let frequent: HashSet<&[u32]> = level.iter().map(Vec::as_slice).collect();
    let mut out = Vec::new();
    for i in 0..level.len() {
        for j in (i + 1)..level.len() {
            let a = &level[i];
            let b = &level[j];
            let k = a.len();
            if a[..k - 1] != b[..k - 1] {
                continue; // sorted level: once prefixes diverge, no more joins for i
            }
            let mut cand = a.clone();
            cand.push(b[k - 1]);
            // cand is sorted because a/b share a prefix and b's last > a's
            // last (level is sorted lexicographically).
            let all_subsets_frequent = (0..cand.len()).all(|drop| {
                let mut sub = cand.clone();
                sub.remove(drop);
                frequent.contains(sub.as_slice())
            });
            if all_subsets_frequent {
                out.push(cand);
            }
        }
    }
    out.sort();
    out.dedup();
    out
}

fn is_subset(needle: &[u32], haystack: &[u32]) -> bool {
    // Both sorted; merge walk.
    let mut hi = 0usize;
    'outer: for &n in needle {
        while hi < haystack.len() {
            match haystack[hi].cmp(&n) {
                std::cmp::Ordering::Less => hi += 1,
                std::cmp::Ordering::Equal => {
                    hi += 1;
                    continue 'outer;
                }
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_audit::{audit_schema, AuditEntry};

    fn practice() -> Table {
        let mut t = Table::new("practice", audit_schema());
        let mut add = |time: i64, user: &str, data: &str, purpose: &str, role: &str| {
            t.insert(AuditEntry::exception(time, user, data, purpose, role).to_row())
                .unwrap();
        };
        // 5× referral:registration:nurse by 3 users (full-width pattern).
        add(1, "mark", "referral", "registration", "nurse");
        add(2, "tim", "referral", "registration", "nurse");
        add(3, "bob", "referral", "registration", "nurse");
        add(4, "mark", "referral", "registration", "nurse");
        add(5, "mark", "referral", "registration", "nurse");
        // referral by nurses for 3 *different* purposes (pair-level
        // correlation invisible to full-width GROUP BY at f=5).
        add(6, "ann", "referral", "scheduling", "nurse");
        add(7, "joe", "referral", "discharge", "nurse");
        add(8, "ann", "referral", "billing", "nurse");
        // Noise.
        add(9, "eve", "psychiatry", "treatment", "doctor");
        t
    }

    #[test]
    fn is_subset_merge_walk() {
        assert!(is_subset(&[1, 3], &[1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[1, 2, 3]));
        assert!(is_subset(&[], &[1]));
        assert!(!is_subset(&[0], &[]));
    }

    #[test]
    fn candidate_generation_joins_prefixes() {
        let level = vec![vec![1, 2], vec![1, 3], vec![2, 3]];
        let cands = generate_candidates(&level);
        assert_eq!(cands, vec![vec![1, 2, 3]]);
        // Without {2,3} the candidate {1,2,3} must be pruned.
        let level2 = vec![vec![1, 2], vec![1, 3]];
        assert!(generate_candidates(&level2).is_empty());
    }

    #[test]
    fn frequent_itemsets_include_partial_patterns() {
        let miner = AprioriMiner::default(); // min_support 5
        let itemsets = miner.frequent_itemsets(&practice()).unwrap();
        // (data=referral) occurs 8×, (data=referral, authorized=nurse) 8×,
        // (purpose=registration) 5×, full triple 5×, …
        let has = |items: &[(&str, &str)], support: usize| {
            itemsets.iter().any(|fi| {
                fi.support == support
                    && fi.items
                        == items
                            .iter()
                            .map(|(a, v)| (a.to_string(), v.to_string()))
                            .collect::<Vec<_>>()
            })
        };
        assert!(has(&[("data", "referral")], 8));
        assert!(has(&[("authorized", "nurse"), ("data", "referral")], 8));
        assert!(has(
            &[
                ("authorized", "nurse"),
                ("data", "referral"),
                ("purpose", "registration")
            ],
            5
        ));
        // The pair-level insight the SQL miner misses: nurses × referral is
        // far more frequent than any full-width pattern reveals.
    }

    #[test]
    fn miner_interface_matches_sql_miner_on_full_width() {
        use crate::sql_miner::SqlMiner;
        let t = practice();
        let apriori = AprioriMiner::default().mine(&t).unwrap();
        let sql = SqlMiner::default().mine(&t).unwrap();
        assert_eq!(apriori, sql, "E8: miners agree on full-width patterns");
        assert_eq!(apriori.len(), 1);
        assert_eq!(apriori[0].support, 5);
        assert_eq!(apriori[0].distinct_users, 3);
    }

    #[test]
    fn association_rules_have_confidence() {
        let config = AprioriConfig {
            min_support: 3,
            ..AprioriConfig::default()
        };
        let miner = AprioriMiner::new(config);
        let itemsets = miner.frequent_itemsets(&practice()).unwrap();
        let rules = miner.association_rules(&itemsets, 0.6);
        assert!(!rules.is_empty());
        // (purpose=registration) ⇒ (data=referral, authorized=nurse) holds
        // with confidence 1.0: every registration entry is a nurse/referral.
        let perfect = rules.iter().find(|r| {
            r.antecedent == vec![("purpose".to_string(), "registration".to_string())]
                && r.confidence == 1.0
        });
        assert!(perfect.is_some(), "rules: {rules:?}");
        for r in &rules {
            assert!(r.confidence >= 0.6 && r.confidence <= 1.0);
            assert!(r.support >= 3);
        }
    }

    #[test]
    fn max_len_caps_itemset_size() {
        let config = AprioriConfig {
            min_support: 5,
            max_len: Some(1),
            ..AprioriConfig::default()
        };
        let itemsets = AprioriMiner::new(config)
            .frequent_itemsets(&practice())
            .unwrap();
        assert!(itemsets.iter().all(|fi| fi.len() == 1));
    }

    #[test]
    fn empty_practice_yields_nothing() {
        let t = Table::new("practice", audit_schema());
        let miner = AprioriMiner::default();
        assert!(miner.frequent_itemsets(&t).unwrap().is_empty());
        assert!(miner.mine(&t).unwrap().is_empty());
    }

    #[test]
    fn missing_attribute_is_error() {
        let t = Table::new(
            "practice",
            prima_store::Schema::new(vec![prima_store::Column::required(
                "other",
                prima_store::DataType::Str,
            )])
            .unwrap(),
        );
        assert!(matches!(
            AprioriMiner::default().frequent_itemsets(&t),
            Err(MiningError::MissingAttribute { .. })
        ));
    }

    #[test]
    fn describe_mentions_parameters() {
        assert!(AprioriMiner::default().describe().contains("min_support=5"));
    }
}
