//! Error type for the mining layer.

use std::fmt;

/// Errors raised during pattern extraction.
#[derive(Debug, Clone, PartialEq)]
pub enum MiningError {
    /// The underlying analysis query failed.
    Query(String),
    /// The practice table lacks a required attribute column.
    MissingAttribute {
        /// The missing column.
        attribute: String,
    },
    /// A mined row could not be converted into a ground rule.
    Malformed {
        /// Description.
        message: String,
    },
    /// Invalid miner configuration.
    Config {
        /// Description.
        message: String,
    },
}

impl fmt::Display for MiningError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MiningError::Query(m) => write!(f, "analysis query failed: {m}"),
            MiningError::MissingAttribute { attribute } => {
                write!(f, "practice table lacks attribute column '{attribute}'")
            }
            MiningError::Malformed { message } => write!(f, "malformed pattern: {message}"),
            MiningError::Config { message } => write!(f, "miner configuration: {message}"),
        }
    }
}

impl std::error::Error for MiningError {}

impl From<prima_query::QueryError> for MiningError {
    fn from(e: prima_query::QueryError) -> Self {
        MiningError::Query(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(MiningError::Query("boom".into())
            .to_string()
            .contains("boom"));
        assert!(MiningError::MissingAttribute {
            attribute: "user".into()
        }
        .to_string()
        .contains("user"));
    }
}
