//! The paper's data-analysis miner (Algorithms 4 and 5).
//!
//! Algorithm 5 builds and executes
//!
//! ```sql
//! SELECT Attr_1, …, Attr_n FROM <practice>
//! GROUP BY Attr_1, …, Attr_n
//! HAVING COUNT(*) >= f AND <condition>
//! ```
//!
//! One fidelity note: Algorithm 5's pseudocode writes `COUNT(*) > f`, but
//! the Section 5 walkthrough sets `f = 5` and accepts the pattern that
//! occurs exactly 5 times (entries t3, t7–t10) — so the intended semantics
//! is *at least* `f` ("returns those tuples … that occur at least 5
//! times"). We implement `>= f` and record the discrepancy in
//! `EXPERIMENTS.md` §E3.

use crate::error::MiningError;
use crate::pattern::{sort_patterns, Pattern};
use crate::Miner;
use prima_model::{GroundRule, RuleTerm};
use prima_store::{Table, Value};

/// Configuration of the SQL group-by miner — the `(A, f, c)` triple of
/// Algorithm 4.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinerConfig {
    /// The attribute subset `A` to group on (defaults to
    /// `data, purpose, authorized`).
    pub attributes: Vec<String>,
    /// The frequency threshold `f` (default 5, per Algorithm 4).
    pub min_frequency: usize,
    /// The condition `c`: require `COUNT(DISTINCT user) > min_distinct_users`
    /// (default 1, per Algorithm 4's
    /// `COUNT(DISTINCT(User)) > 1`).
    pub min_distinct_users: usize,
    /// The column holding the requesting user (for the distinct-user
    /// condition).
    pub user_column: String,
}

impl Default for MinerConfig {
    fn default() -> Self {
        Self {
            attributes: vec!["data".into(), "purpose".into(), "authorized".into()],
            min_frequency: 5,
            min_distinct_users: 1,
            user_column: "user".into(),
        }
    }
}

/// The SQL group-by miner.
#[derive(Debug, Clone, Default)]
pub struct SqlMiner {
    config: MinerConfig,
}

impl SqlMiner {
    /// Creates a miner with the given configuration.
    pub fn new(config: MinerConfig) -> Self {
        Self { config }
    }

    /// The miner's configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The SQL statement Algorithm 5 constructs for `practice_table`.
    pub fn statement(&self, practice_table: &str) -> String {
        let attrs = self.config.attributes.join(", ");
        format!(
            "SELECT {attrs}, COUNT(*) AS support, COUNT(DISTINCT {user}) AS users \
             FROM {practice_table} \
             GROUP BY {attrs} \
             HAVING COUNT(*) >= {f} AND COUNT(DISTINCT {user}) > {c} \
             ORDER BY support DESC",
            user = self.config.user_column,
            f = self.config.min_frequency,
            c = self.config.min_distinct_users,
        )
    }

    fn validate(&self, practice: &Table) -> Result<(), MiningError> {
        if self.config.attributes.is_empty() {
            return Err(MiningError::Config {
                message: "attribute subset must be non-empty".into(),
            });
        }
        for a in &self.config.attributes {
            if practice.schema().index_of(a).is_none() {
                return Err(MiningError::MissingAttribute {
                    attribute: a.clone(),
                });
            }
        }
        if practice
            .schema()
            .index_of(&self.config.user_column)
            .is_none()
        {
            return Err(MiningError::MissingAttribute {
                attribute: self.config.user_column.clone(),
            });
        }
        Ok(())
    }
}

impl Miner for SqlMiner {
    fn mine(&self, practice: &Table) -> Result<Vec<Pattern>, MiningError> {
        self.validate(practice)?;
        let sql = self.statement(practice.name());
        let result = prima_query::execute(practice, &sql)?;
        let n_attrs = self.config.attributes.len();
        let mut patterns = Vec::with_capacity(result.len());
        for row in &result.rows {
            let mut terms = Vec::with_capacity(n_attrs);
            for (i, attr) in self.config.attributes.iter().enumerate() {
                let value = match row.get(i) {
                    Value::Str(s) => s.clone(),
                    other => other.to_string(),
                };
                terms.push(
                    RuleTerm::new(attr, &value).map_err(|e| MiningError::Malformed {
                        message: e.to_string(),
                    })?,
                );
            }
            let rule = GroundRule::new(terms).map_err(|e| MiningError::Malformed {
                message: e.to_string(),
            })?;
            let support = row.get(n_attrs).as_int().unwrap_or(0) as usize;
            let users = row.get(n_attrs + 1).as_int().unwrap_or(0) as usize;
            patterns.push(Pattern::new(rule, support, users));
        }
        sort_patterns(&mut patterns);
        Ok(patterns)
    }

    fn describe(&self) -> String {
        format!(
            "sql-miner(A=[{}], f={}, c=COUNT(DISTINCT {})>{})",
            self.config.attributes.join(","),
            self.config.min_frequency,
            self.config.user_column,
            self.config.min_distinct_users
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use prima_audit::{audit_schema, AuditEntry};
    use prima_store::Table;

    /// The Practice array of the Section 5 use case: Table 1's exception
    /// entries t3, t4, t6, t7, t8, t9, t10.
    fn practice() -> Table {
        let mut t = Table::new("practice", audit_schema());
        let entries = vec![
            AuditEntry::exception(3, "Mark", "Referral", "Registration", "Nurse"),
            AuditEntry::exception(4, "Sarah", "Psychiatry", "Treatment", "Doctor"),
            AuditEntry::exception(6, "Jason", "Prescription", "Billing", "Clerk"),
            AuditEntry::exception(7, "Mark", "Referral", "Registration", "Nurse"),
            AuditEntry::exception(8, "Tim", "Referral", "Registration", "Nurse"),
            AuditEntry::exception(9, "Bob", "Referral", "Registration", "Nurse"),
            AuditEntry::exception(10, "Mark", "Referral", "Registration", "Nurse"),
        ];
        for e in &entries {
            t.insert(e.to_row()).unwrap();
        }
        t
    }

    #[test]
    fn section_5_use_case_mines_the_single_pattern() {
        let miner = SqlMiner::default();
        let patterns = miner.mine(&practice()).unwrap();
        assert_eq!(patterns.len(), 1, "exactly one pattern passes f=5");
        let p = &patterns[0];
        assert_eq!(
            p.compact(&["data", "purpose", "authorized"]),
            "referral:registration:nurse"
        );
        assert_eq!(p.support, 5, "tuples t3 and t7-t10");
        assert_eq!(p.distinct_users, 3, "Mark, Tim, Bob");
    }

    #[test]
    fn statement_shape_matches_algorithm_5() {
        let miner = SqlMiner::default();
        let sql = miner.statement("practice");
        assert!(sql.contains("GROUP BY data, purpose, authorized"));
        assert!(sql.contains("HAVING COUNT(*) >= 5"));
        assert!(sql.contains("COUNT(DISTINCT user) > 1"));
    }

    #[test]
    fn distinct_user_condition_filters_single_user_habits() {
        let mut t = Table::new("practice", audit_schema());
        // One user hammering the same access 10 times.
        for i in 0..10 {
            t.insert(
                AuditEntry::exception(i, "solo", "referral", "registration", "nurse").to_row(),
            )
            .unwrap();
        }
        let patterns = SqlMiner::default().mine(&t).unwrap();
        assert!(
            patterns.is_empty(),
            "COUNT(DISTINCT user) > 1 must reject one person's habit"
        );
    }

    #[test]
    fn lower_threshold_surfaces_more_patterns() {
        let config = MinerConfig {
            min_frequency: 1,
            min_distinct_users: 0,
            ..MinerConfig::default()
        };
        let patterns = SqlMiner::new(config).mine(&practice()).unwrap();
        assert_eq!(patterns.len(), 3);
        // Sorted by support descending.
        assert!(patterns[0].support >= patterns[1].support);
    }

    #[test]
    fn narrower_attribute_subset() {
        let config = MinerConfig {
            attributes: vec!["data".into(), "purpose".into()],
            min_frequency: 5,
            min_distinct_users: 1,
            ..MinerConfig::default()
        };
        let patterns = SqlMiner::new(config).mine(&practice()).unwrap();
        assert_eq!(patterns.len(), 1);
        assert_eq!(
            patterns[0].compact(&["data", "purpose"]),
            "referral:registration"
        );
    }

    #[test]
    fn missing_columns_are_rejected() {
        let t = Table::new(
            "practice",
            prima_store::Schema::new(vec![prima_store::Column::required(
                "data",
                prima_store::DataType::Str,
            )])
            .unwrap(),
        );
        let err = SqlMiner::default().mine(&t).unwrap_err();
        assert!(matches!(err, MiningError::MissingAttribute { .. }));
    }

    #[test]
    fn empty_attribute_set_is_config_error() {
        let config = MinerConfig {
            attributes: vec![],
            ..MinerConfig::default()
        };
        let err = SqlMiner::new(config).mine(&practice()).unwrap_err();
        assert!(matches!(err, MiningError::Config { .. }));
    }

    #[test]
    fn describe_mentions_parameters() {
        let d = SqlMiner::default().describe();
        assert!(d.contains("f=5"));
        assert!(d.contains("data,purpose,authorized"));
    }
}
