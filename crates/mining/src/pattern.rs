//! The [`Pattern`] type shared by all miners.

use prima_model::GroundRule;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A mined access pattern: a ground rule over (a subset of) the audit
/// attributes, with the evidence that surfaced it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Pattern {
    /// The recurring `(attribute, value)` combination.
    pub rule: GroundRule,
    /// How many practice entries matched (the `COUNT(*)` of Algorithm 5).
    pub support: usize,
    /// How many distinct users produced them (the paper's default condition
    /// `COUNT(DISTINCT user) > 1` exists to filter out one person's habit).
    pub distinct_users: usize,
}

impl Pattern {
    /// Creates a pattern.
    pub fn new(rule: GroundRule, support: usize, distinct_users: usize) -> Self {
        Self {
            rule,
            support,
            distinct_users,
        }
    }

    /// The paper's display form, e.g. `referral:registration:nurse`.
    pub fn compact(&self, attr_order: &[&str]) -> String {
        self.rule.compact(attr_order)
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} (support={}, users={})",
            self.rule, self.support, self.distinct_users
        )
    }
}

/// Sorts patterns canonically: by descending support, then descending
/// distinct users, then rule order — the priority order a privacy officer
/// reviews them in.
pub fn sort_patterns(patterns: &mut [Pattern]) {
    patterns.sort_by(|a, b| {
        b.support
            .cmp(&a.support)
            .then(b.distinct_users.cmp(&a.distinct_users))
            .then(a.rule.cmp(&b.rule))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn g(d: &str, p: &str) -> GroundRule {
        GroundRule::of(&[("data", d), ("purpose", p)])
    }

    #[test]
    fn display_and_compact() {
        let p = Pattern::new(
            GroundRule::of(&[
                ("data", "referral"),
                ("purpose", "registration"),
                ("authorized", "nurse"),
            ]),
            5,
            4,
        );
        assert_eq!(
            p.compact(&["data", "purpose", "authorized"]),
            "referral:registration:nurse"
        );
        assert!(p.to_string().contains("support=5"));
    }

    #[test]
    fn sort_is_by_support_then_users_then_rule() {
        let mut ps = vec![
            Pattern::new(g("b", "y"), 3, 1),
            Pattern::new(g("a", "x"), 5, 2),
            Pattern::new(g("c", "z"), 5, 9),
            Pattern::new(g("a", "w"), 3, 1),
        ];
        sort_patterns(&mut ps);
        assert_eq!(ps[0].rule, g("c", "z"));
        assert_eq!(ps[1].rule, g("a", "x"));
        // Equal support+users: rule order breaks the tie deterministically.
        assert_eq!(ps[2].rule, g("a", "w"));
        assert_eq!(ps[3].rule, g("b", "y"));
    }

    #[test]
    fn serde_roundtrip() {
        let p = Pattern::new(g("a", "x"), 2, 1);
        let s = serde_json::to_string(&p).unwrap();
        assert_eq!(serde_json::from_str::<Pattern>(&s).unwrap(), p);
    }
}
