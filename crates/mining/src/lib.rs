//! # prima-mining — pattern extraction over the audit trail
//!
//! Implements the data-analysis layer of the refinement pipeline
//! (Algorithms 4 and 5) plus the frequent-pattern-mining extension the
//! paper proposes as future work (its reference \[18\], Agrawal & Srikant's
//! Apriori):
//!
//! * [`sql_miner`] — the paper-faithful miner: translate the attribute
//!   subset, frequency threshold `f`, and condition `c` into a SQL
//!   statement and execute it on the `Practice` table through
//!   `prima-query`. "The data analysis routine has a well-defined interface
//!   that allows the extractPatterns algorithm to evolve" — the interface
//!   here is [`Miner`], and the SQL text is observable for auditability;
//! * [`apriori`] — full Apriori (levelwise candidate generation with
//!   subset pruning) over audit entries viewed as transactions of
//!   `(attribute, value)` items, plus association-rule derivation. Unlike
//!   the fixed GROUP BY, Apriori also surfaces *partial* patterns —
//!   correlations between attribute pairs "that are not discovered by
//!   simple SQL queries" (Section 5);
//! * [`pattern`] — the shared [`Pattern`] type (ground rule + support +
//!   distinct-user count) both miners produce and `prima-refine` consumes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apriori;
pub mod error;
pub mod pattern;
pub mod sql_miner;

pub use apriori::{AprioriConfig, AprioriMiner, AssociationRule, FrequentItemset};
pub use error::MiningError;
pub use pattern::Pattern;
pub use sql_miner::{MinerConfig, SqlMiner};

use prima_store::Table;

/// The well-defined mining interface Algorithm 4 plugs into.
pub trait Miner {
    /// Extracts candidate patterns from the `Practice` table (the filtered,
    /// exceptions-only audit trail).
    fn mine(&self, practice: &Table) -> Result<Vec<Pattern>, MiningError>;

    /// A human-readable description of the miner's configuration (logged by
    /// the refinement session for auditability).
    fn describe(&self) -> String;
}
