//! Property-based tests for the miners.

use prima_audit::{audit_schema, AuditEntry};
use prima_mining::{AprioriConfig, AprioriMiner, Miner, MinerConfig, SqlMiner};
use prima_store::Table;
use proptest::prelude::*;
use std::collections::HashMap;

/// Random practice tables (exception entries over small domains).
fn arb_practice() -> impl Strategy<Value = Table> {
    let entry = (0..5usize, 0..4usize, 0..3usize, 0..3usize);
    collection::vec(entry, 0..80).prop_map(|rows| {
        let mut t = Table::new("practice", audit_schema());
        for (i, (u, d, p, a)) in rows.into_iter().enumerate() {
            let e = AuditEntry::exception(
                i as i64,
                &format!("u{u}"),
                &format!("d{d}"),
                &format!("p{p}"),
                &format!("a{a}"),
            );
            t.insert(e.to_row()).expect("audit entry conforms");
        }
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The two miners agree on full-width patterns for any table and
    /// matching thresholds.
    #[test]
    fn sql_and_apriori_agree(t in arb_practice(), f in 1usize..8) {
        let sql = SqlMiner::new(MinerConfig {
            min_frequency: f,
            ..MinerConfig::default()
        })
        .mine(&t)
        .unwrap();
        let apriori = AprioriMiner::new(AprioriConfig {
            min_support: f,
            ..AprioriConfig::default()
        })
        .mine(&t)
        .unwrap();
        prop_assert_eq!(sql, apriori);
    }

    /// Raising the threshold can only shrink the pattern set (anti-
    /// monotonicity of support).
    #[test]
    fn higher_threshold_mines_subset(t in arb_practice(), f in 1usize..6) {
        let low = SqlMiner::new(MinerConfig {
            min_frequency: f,
            ..MinerConfig::default()
        })
        .mine(&t)
        .unwrap();
        let high = SqlMiner::new(MinerConfig {
            min_frequency: f + 2,
            ..MinerConfig::default()
        })
        .mine(&t)
        .unwrap();
        prop_assert!(high.len() <= low.len());
        for p in &high {
            prop_assert!(low.iter().any(|q| q.rule == p.rule));
        }
    }

    /// Mined supports are ground truth: recounting entries matches.
    #[test]
    fn supports_are_exact(t in arb_practice()) {
        let patterns = SqlMiner::new(MinerConfig {
            min_frequency: 1,
            min_distinct_users: 0,
            ..MinerConfig::default()
        })
        .mine(&t)
        .unwrap();
        // Recount by hand.
        let mut counts: HashMap<(String, String, String), usize> = HashMap::new();
        for row in t.scan() {
            let e = AuditEntry::from_row(row).unwrap();
            *counts
                .entry((e.data.clone(), e.purpose.clone(), e.authorized.clone()))
                .or_default() += 1;
        }
        prop_assert_eq!(patterns.len(), counts.len());
        for p in &patterns {
            let key = (
                p.rule.value_of("data").unwrap().to_string(),
                p.rule.value_of("purpose").unwrap().to_string(),
                p.rule.value_of("authorized").unwrap().to_string(),
            );
            prop_assert_eq!(p.support, counts[&key]);
        }
        // And they sum to the table size.
        let total: usize = patterns.iter().map(|p| p.support).sum();
        prop_assert_eq!(total, t.len());
    }

    /// Downward closure: every subset of a frequent itemset is frequent
    /// with at least the superset's support.
    #[test]
    fn apriori_downward_closure(t in arb_practice(), f in 1usize..6) {
        let miner = AprioriMiner::new(AprioriConfig {
            min_support: f,
            ..AprioriConfig::default()
        });
        let itemsets = miner.frequent_itemsets(&t).unwrap();
        let support: HashMap<&[(String, String)], usize> = itemsets
            .iter()
            .map(|fi| (fi.items.as_slice(), fi.support))
            .collect();
        for fi in itemsets.iter().filter(|fi| fi.len() >= 2) {
            for drop in 0..fi.len() {
                let mut sub = fi.items.clone();
                sub.remove(drop);
                let sub_support = support.get(sub.as_slice());
                prop_assert!(
                    sub_support.is_some(),
                    "subset {sub:?} of frequent {fi:?} missing"
                );
                prop_assert!(*sub_support.unwrap() >= fi.support);
            }
        }
    }

    /// Association rules have confidence in (0, 1] and support ≥ the
    /// threshold; confidence 1 rules are exact implications.
    #[test]
    fn association_rule_bounds(t in arb_practice(), f in 1usize..5) {
        let miner = AprioriMiner::new(AprioriConfig {
            min_support: f,
            ..AprioriConfig::default()
        });
        let itemsets = miner.frequent_itemsets(&t).unwrap();
        let rules = miner.association_rules(&itemsets, 0.0);
        for r in &rules {
            prop_assert!(r.confidence > 0.0 && r.confidence <= 1.0);
            prop_assert!(r.support >= f);
            prop_assert!(!r.antecedent.is_empty() && !r.consequent.is_empty());
        }
        // Raising min_confidence filters monotonically.
        let strict = miner.association_rules(&itemsets, 0.9);
        prop_assert!(strict.len() <= rules.len());
    }
}
