//! `prima` — the command-line front end.
//!
//! ```text
//! prima demo                                        # the paper's Section 5 use case
//! prima vocab [figure1|hospital]                    # print a vocabulary
//! prima simulate --out trail.jsonl [--entries N] [--seed S] [--scenario S]
//! prima coverage --policy ps.dsl --audit trail.jsonl [--vocab v.txt] [--set]
//! prima refine   --policy ps.dsl --audit trail.jsonl [--vocab v.txt]
//!                [--f N] [--users N] [--apply refined.dsl]
//! ```
//!
//! Policies use the authoring DSL (`prima_model::dsl`), trails are JSON
//! lines (`prima_audit::export`), vocabularies the indented text format
//! (`prima_vocab::parse`); `--vocab` defaults to the paper's Figure 1
//! vocabulary.

use prima::audit::AuditEntry;
use prima::model::dsl::{parse_policy, render_policy};
use prima::model::{CoverageEngine, Policy, StoreTag, Strategy};
use prima::vocab::parse::{parse_vocabulary, render_vocabulary};
use prima::vocab::samples as vocab_samples;
use prima::vocab::Vocabulary;
use std::collections::HashMap;
use std::io::BufReader;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("demo") => cmd_demo(&args[1..]),
        Some("vocab") => cmd_vocab(&args[1..]),
        Some("simulate") => cmd_simulate(&args[1..]),
        Some("coverage") => cmd_coverage(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("refine") => cmd_refine(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("serve-bench") => cmd_serve_bench(&args[1..]),
        Some("stream-bench") => cmd_stream_bench(&args[1..]),
        Some("flight-dump") => cmd_flight_dump(&args[1..]),
        Some("help") | Some("--help") | Some("-h") | None => {
            print_usage();
            Ok(())
        }
        Some(other) => Err(format!("unknown command '{other}' (try 'prima help')")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn print_usage() {
    println!(
        "prima — privacy policy coverage & refinement (PRIMA reproduction)\n\n\
         commands:\n  \
         demo                         run the paper's Section 5 use case\n    \
           [--profile] [--metrics-out FILE] [--trace-out FILE]\n      \
             (--profile prints the per-stage PipelineReport; the --*-out\n      \
              flags export Prometheus text / span JSONL)\n  \
         vocab [figure1|hospital]     print a sample vocabulary\n  \
         simulate --out FILE          generate a labelled clinical trail\n    \
           [--entries N] [--seed S] [--scenario community|paper]\n  \
         stats --audit FILE           trail statistics and top glass-breakers\n  \
         coverage --policy FILE --audit FILE   measure policy coverage\n    \
           [--vocab FILE] [--set]     (--set: Definition 9 range semantics)\n  \
         refine --policy FILE --audit FILE     run one refinement round\n    \
           [--vocab FILE] [--f N] [--users N] [--generalize] [--apply OUT.dsl]\n  \
         analyze --policy FILE        static policy analysis (PA0xx diagnostics)\n    \
           [--vocab FILE] [--audit FILE] [--format human|json] [--budget N]\n      \
             (--audit enables the cross-policy conflict pass against denied\n      \
              accesses; exits non-zero when error-severity diagnostics exist)\n  \
         serve-bench                  load-test the policy-decision service\n    \
           [--smoke] [--principals N] [--requests N] [--clients N] [--workers N]\n    \
           [--shards N] [--batch N] [--zipf S] [--seed S] [--promote-every N]\n    \
           [--out FILE]               (writes the gate report as JSON; exits\n      \
              non-zero when any acceptance gate fails)\n    \
           [--surge]                  overload run instead: 10-100x burst with\n      \
              an elevated break-the-glass rate; gates graceful degradation\n      \
              (SRV-011 shedding, SRV-012 deadlines, emergency certainty)\n    \
           [--suite]                  full sweep: load at workers=1 and =4 plus\n      \
              the surge run, written as one aggregate report (BENCH_serve.json)\n  \
         stream-bench                 shard-scaling ingest benchmark (prima-stream)\n    \
           [--smoke] [--entries N] [--seed S] [--block-size N] [--capacity N]\n    \
           [--passes N] [--out FILE]  (ladders 1/2/4/8 shards over the hospital\n      \
              trail; writes the gate report as JSON and exits non-zero when an\n      \
              acceptance gate — scaling floor, throughput, hit rate — fails)\n  \
         flight-dump                  demonstrate the flight recorder end to end\n    \
           [--requests N] [--out FILE]  (serves N traced decisions, injects one\n      \
              worker panic, and writes the black-box dump — the span ring with\n      \
              the panicking request's trace marked — as JSONL)"
    );
}

/// Parses `--key value` flags; returns the map or an error on stray args.
fn parse_flags(args: &[String], allowed: &[&str]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected a --flag, found '{}'", args[i]))?;
        if !allowed.contains(&key) {
            return Err(format!("unknown flag '--{key}'"));
        }
        // Boolean flags take no value.
        if key == "set"
            || key == "generalize"
            || key == "profile"
            || key == "smoke"
            || key == "surge"
            || key == "suite"
        {
            flags.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag '--{key}' needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn load_vocab(flags: &HashMap<String, String>) -> Result<Vocabulary, String> {
    match flags.get("vocab") {
        Some(path) => {
            let text = std::fs::read_to_string(path)
                .map_err(|e| format!("cannot read vocabulary '{path}': {e}"))?;
            parse_vocabulary(&text).map_err(|e| e.to_string())
        }
        None => Ok(vocab_samples::figure_1()),
    }
}

fn load_policy(flags: &HashMap<String, String>) -> Result<Policy, String> {
    let path = flags
        .get("policy")
        .ok_or("missing --policy FILE (authoring DSL)")?;
    let text =
        std::fs::read_to_string(path).map_err(|e| format!("cannot read policy '{path}': {e}"))?;
    parse_policy(&text).map_err(|e| e.to_string())
}

/// Prints lint findings (typos, unknown attributes, umbrella
/// authorizations) to stderr so they never corrupt piped output.
fn lint_and_report(policy: &Policy, vocab: &Vocabulary) {
    for finding in prima::model::lint_policy(policy, vocab) {
        eprintln!("{finding}");
    }
}

fn load_audit(flags: &HashMap<String, String>) -> Result<Vec<AuditEntry>, String> {
    let path = flags
        .get("audit")
        .ok_or("missing --audit FILE (JSON lines)")?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot read audit '{path}': {e}"))?;
    prima::audit::export::import_jsonl(BufReader::new(file)).map_err(|e| e.to_string())
}

fn cmd_demo(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["profile", "metrics-out", "trace-out"])?;
    let observe = flags.contains_key("profile")
        || flags.contains_key("metrics-out")
        || flags.contains_key("trace-out");
    let vocab = vocab_samples::figure_1();
    let policy = prima::model::samples::figure_3_policy_store();
    let trail = prima::workload::fixtures::table_1();

    let mut system = prima::system::PrimaSystem::new(vocab, policy);
    if observe {
        system = system.with_observability(prima::system::SystemObs::enabled());
    }
    let store = prima::audit::AuditStore::new("main");
    store.append_all(&trail).map_err(|e| e.to_string())?;
    system.attach_store(store).expect("unique source name");

    let before = system.entry_coverage();
    println!(
        "coverage before: {}/{} = {:.0}%",
        before.covered_entries,
        before.total_entries,
        before.percent()
    );
    let round = system
        .run_round(prima::system::ReviewMode::AutoAccept)
        .map_err(|e| e.to_string())?;
    println!(
        "refinement: {} practice entries, {} pattern(s), {} rule(s) accepted",
        round.practice_entries, round.patterns_found, round.rules_added
    );
    let after = system.entry_coverage();
    println!(
        "coverage after:  {}/{} = {:.0}%",
        after.covered_entries,
        after.total_entries,
        after.percent()
    );
    println!("\nrefined policy:\n{}", render_policy(system.policy()));
    if flags.contains_key("profile") {
        println!("\n{}", system.pipeline_report());
    }
    if let Some(path) = flags.get("metrics-out") {
        let text = prima::obs::export::prometheus(system.obs().registry());
        std::fs::write(path, text).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("metrics (Prometheus text) written to {path}");
    }
    if let Some(path) = flags.get("trace-out") {
        let spans = system.obs().tracer().drain();
        let text = prima::obs::export::spans_jsonl(&spans);
        std::fs::write(path, text).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("trace ({} spans, JSONL) written to {path}", spans.len());
    }
    Ok(())
}

fn cmd_vocab(args: &[String]) -> Result<(), String> {
    let which = args.first().map(String::as_str).unwrap_or("figure1");
    let v = match which {
        "figure1" => vocab_samples::figure_1(),
        "hospital" => vocab_samples::hospital(),
        other => return Err(format!("unknown vocabulary '{other}' (figure1|hospital)")),
    };
    print!("{}", render_vocabulary(&v));
    Ok(())
}

fn cmd_simulate(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["out", "entries", "seed", "scenario"])?;
    let out_path = flags.get("out").ok_or("missing --out FILE")?;
    let entries: usize = flags
        .get("entries")
        .map(|s| s.parse().map_err(|_| format!("bad --entries '{s}'")))
        .transpose()?
        .unwrap_or(10_000);
    let seed: u64 = flags
        .get("seed")
        .map(|s| s.parse().map_err(|_| format!("bad --seed '{s}'")))
        .transpose()?
        .unwrap_or(42);
    let scenario = match flags.get("scenario").map(String::as_str) {
        Some("paper") => prima::workload::Scenario::paper_example(),
        Some("community") | None => prima::workload::Scenario::community_hospital(),
        Some(other) => return Err(format!("unknown scenario '{other}' (community|paper)")),
    };
    let sim = scenario.simulator();
    let trail = sim.generate(&prima::workload::SimConfig {
        seed,
        n_entries: entries,
        ..prima::workload::SimConfig::default()
    });
    let plain = prima::workload::sim::entries(&trail);
    let file =
        std::fs::File::create(out_path).map_err(|e| format!("cannot create '{out_path}': {e}"))?;
    prima::audit::export::export_jsonl(&plain, file).map_err(|e| e.to_string())?;
    let (sanc, informal, viol) = prima::workload::sim::census(&trail);
    println!(
        "wrote {entries} entries to {out_path} (scenario={}, sanctioned={sanc}, informal={informal}, violations={viol})",
        scenario.name
    );
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["audit"])?;
    let entries = load_audit(&flags)?;
    let s = prima::audit::trail_stats(&entries);
    println!(
        "entries: {} (regular {}, exceptions {}, denials {})",
        s.total, s.regular, s.exceptions, s.denials
    );
    println!(
        "exception share of served accesses: {:.1}%",
        s.exception_share() * 100.0
    );
    println!("distinct users: {}", s.distinct_users);
    if let Some((a, b)) = s.time_span {
        println!("time span: {a}..{b}");
    }
    println!("top glass-breakers:");
    for (user, n) in prima::audit::glass_breakers(&entries, 5) {
        println!("  {user}: {n}");
    }
    println!("top exception data categories:");
    for (data, n) in prima::audit::stats::top_exception_attribute(&entries, 5, |e| &e.data) {
        println!("  {data}: {n}");
    }
    Ok(())
}

fn cmd_coverage(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["policy", "audit", "vocab", "set"])?;
    let vocab = load_vocab(&flags)?;
    let policy = load_policy(&flags)?;
    lint_and_report(&policy, &vocab);
    let entries = load_audit(&flags)?;

    if flags.contains_key("set") {
        let al = Policy::from_ground_rules(
            StoreTag::AuditLog,
            entries
                .iter()
                .map(|e| e.to_ground_rule().expect("audit entries are well-formed")),
        );
        let report = CoverageEngine::new(Strategy::Lazy)
            .coverage(&policy, &al, &vocab)
            .map_err(|e| e.to_string())?;
        println!(
            "set coverage (Definition 9): {}/{} = {:.1}%",
            report.overlap,
            report.target_cardinality,
            report.percent()
        );
        for g in &report.uncovered {
            println!("  uncovered: {g}");
        }
    } else {
        let rules: Vec<_> = entries
            .iter()
            .map(|e| e.to_ground_rule().expect("audit entries are well-formed"))
            .collect();
        let report = CoverageEngine::default().entry_coverage(&policy, &rules, &vocab);
        println!(
            "entry coverage: {}/{} = {:.1}%",
            report.covered_entries,
            report.total_entries,
            report.percent()
        );
    }
    Ok(())
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(args, &["policy", "vocab", "audit", "format", "budget"])?;
    let vocab = load_vocab(&flags)?;
    let policy = load_policy(&flags)?;
    let mut config = prima::analyze::AnalyzeConfig::default();
    if let Some(b) = flags.get("budget") {
        config.expansion_budget = b.parse().map_err(|_| format!("bad --budget '{b}'"))?;
    }
    let analyzer = prima::analyze::Analyzer::new(&vocab).with_config(config);
    let diags = match flags.get("audit") {
        Some(_) => {
            let entries = load_audit(&flags)?;
            analyzer.analyze_with_audit(&policy, &entries)
        }
        None => analyzer.analyze(&policy),
    };
    match flags.get("format").map(String::as_str) {
        Some("json") => println!("{}", prima::model::diag::render_json(&diags)),
        Some("human") | None => print!("{}", prima::model::diag::render_human(&diags)),
        Some(other) => return Err(format!("unknown format '{other}' (human|json)")),
    }
    let (errors, _, _) = prima::model::diag::count_severities(&diags);
    if errors > 0 {
        Err(format!("{errors} error-severity diagnostic(s)"))
    } else {
        Ok(())
    }
}

fn cmd_serve_bench(args: &[String]) -> Result<(), String> {
    use prima::serve::LoadConfig;
    let flags = parse_flags(
        args,
        &[
            "smoke",
            "surge",
            "suite",
            "principals",
            "requests",
            "clients",
            "workers",
            "shards",
            "batch",
            "zipf",
            "seed",
            "promote-every",
            "out",
        ],
    )?;
    if flags.contains_key("suite") {
        return serve_bench_suite(&flags);
    }
    if flags.contains_key("surge") {
        return serve_bench_surge(&flags);
    }
    let mut config = if flags.contains_key("smoke") {
        LoadConfig::smoke()
    } else {
        LoadConfig::default()
    };
    fn num<T: std::str::FromStr>(
        flags: &HashMap<String, String>,
        key: &str,
        into: &mut T,
    ) -> Result<(), String> {
        if let Some(s) = flags.get(key) {
            *into = s.parse().map_err(|_| format!("bad --{key} '{s}'"))?;
        }
        Ok(())
    }
    num(&flags, "principals", &mut config.principals)?;
    num(&flags, "requests", &mut config.requests)?;
    num(&flags, "clients", &mut config.clients)?;
    num(&flags, "workers", &mut config.workers)?;
    num(&flags, "shards", &mut config.cache_shards)?;
    num(&flags, "batch", &mut config.batch)?;
    num(&flags, "zipf", &mut config.zipf)?;
    num(&flags, "seed", &mut config.seed)?;
    num(&flags, "promote-every", &mut config.promote_every)?;

    println!(
        "serve-bench: {} request(s) over {} principal(s), {} client(s) x {} worker(s), \
         {} shard(s), zipf {} ({} mode)",
        config.requests,
        config.principals,
        config.clients,
        config.workers,
        config.cache_shards,
        config.zipf,
        if config.smoke { "smoke" } else { "full" }
    );
    let report = prima::serve::run_load(config);
    println!(
        "{:.0} decisions/s ({} decisions in {:.2}s); hit rate {:.1}%, \
         {} invalidation(s), {} promotion(s), p50 {:.1}us, p99 {:.1}us",
        report.decisions_per_sec,
        report.decisions,
        report.elapsed_secs,
        report.hit_rate() * 100.0,
        report.invalidations,
        report.promotions,
        report.p50_us,
        report.p99_us
    );
    println!(
        "coherence: {} audited, {} skipped (revision raced), {} mismatch(es)",
        report.coherence_checked, report.coherence_skipped, report.coherence_mismatches
    );
    for (gate, ok) in report.gates() {
        println!("gate {gate}: {}", if ok { "pass" } else { "FAIL" });
    }

    if let Some(path) = flags.get("out") {
        let text = serde_json::to_string_pretty(&report.to_json())
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("report written to {path}");
    }
    if report.passed() {
        Ok(())
    } else {
        Err("serve-bench acceptance gate(s) failed".to_string())
    }
}

fn cmd_stream_bench(args: &[String]) -> Result<(), String> {
    use prima::stream::{run_stream_bench, StreamBenchConfig};
    let flags = parse_flags(
        args,
        &[
            "smoke",
            "entries",
            "seed",
            "block-size",
            "capacity",
            "passes",
            "out",
        ],
    )?;
    let mut config = if flags.contains_key("smoke") {
        StreamBenchConfig::smoke()
    } else {
        StreamBenchConfig::default()
    };
    flag_num(&flags, "entries", &mut config.trail_len)?;
    flag_num(&flags, "seed", &mut config.seed)?;
    flag_num(&flags, "block-size", &mut config.block_size)?;
    flag_num(&flags, "capacity", &mut config.channel_capacity)?;
    flag_num(&flags, "passes", &mut config.passes)?;

    println!(
        "stream-bench: {} entr(ies) over shard widths {:?}, block size {}, \
         capacity {}, best of {} pass(es) ({} mode)",
        config.trail_len,
        config.widths,
        config.block_size,
        config.channel_capacity,
        config.passes,
        if config.smoke { "smoke" } else { "full" }
    );
    let report = run_stream_bench(config);
    for w in &report.widths {
        println!(
            "  {} shard(s): {:.0} entries/s, hit rate {:.2}%",
            w.shards,
            w.entries_per_sec,
            w.cache_hit_rate * 100.0
        );
    }
    println!(
        "scaling {:.2}x wide-over-narrow (floor {:.2} at {} core(s)); \
         metrics overhead {:.2}%",
        report.scaling_ratio(),
        prima::stream::loadbench::scaling_floor(report.cores),
        report.cores,
        report.overhead_pct()
    );
    for (gate, ok) in report.gates() {
        println!("gate {gate}: {}", if ok { "pass" } else { "FAIL" });
    }

    if let Some(path) = flags.get("out") {
        let text = serde_json::to_string_pretty(&report.to_json())
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("report written to {path}");
    }
    if report.passed() {
        Ok(())
    } else {
        Err("stream-bench acceptance gate(s) failed".to_string())
    }
}

/// Demonstrates the flight recorder end to end: serve traced decisions,
/// inject one worker panic, and write the black-box dump the incident
/// produced — the recent-span ring as JSONL with the panicking request's
/// trace marked.
fn cmd_flight_dump(args: &[String]) -> Result<(), String> {
    use prima::obs::{FlightRecorder, MetricsRegistry, Tracer};
    use prima::serve::{DecisionRequest, PolicyService, ServeConfig, Transport, Verdict};
    use prima::vocab::{ATTR_AUTHORIZED, ATTR_DATA, ATTR_PURPOSE};
    const PANIC_TOKEN: &str = "☠-flight";

    let flags = parse_flags(args, &["requests", "out"])?;
    let mut requests: usize = 64;
    flag_num(&flags, "requests", &mut requests)?;

    // The injected panic is the point of the exercise; silence its
    // backtrace but leave every other panic loud.
    let default_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|m| m.contains("injected worker panic"))
            || info
                .payload()
                .downcast_ref::<String>()
                .is_some_and(|m| m.contains("injected worker panic"));
        if !injected {
            default_hook(info);
        }
    }));

    let scenario = prima::workload::Scenario::community_hospital();
    let flight = FlightRecorder::new(256);
    let tracer = Tracer::configured(None, flight.clone());
    let service = PolicyService::start(
        ServeConfig::new()
            .workers(2)
            .panic_token(PANIC_TOKEN)
            .metrics(MetricsRegistry::new())
            .tracer(tracer),
        &scenario.policy,
        &scenario.vocab,
    );
    let handle = service.handle();

    // Healthy context first, so the ring has history for the dump to
    // replay: one request per (role, op, purpose) leaf combination.
    let leaf = |attr: &str| -> Vec<String> {
        let t = scenario.vocab.attribute(attr).expect("scenario attribute");
        t.all_leaves()
            .iter()
            .map(|&id| t.name(id).to_string())
            .collect()
    };
    let (roles, ops, purposes) = (leaf(ATTR_AUTHORIZED), leaf(ATTR_DATA), leaf(ATTR_PURPOSE));
    for i in 0..requests {
        let req = DecisionRequest::new(
            &format!("p-{i}"),
            &roles[i % roles.len()],
            &ops[i % ops.len()],
            &purposes[i % purposes.len()],
            "granted",
        );
        handle
            .decide(req)
            .map_err(|e| format!("service failed mid-run: {e:?}"))?;
    }
    // The incident: a request whose principal is the panic token crashes
    // its worker; the supervisor dumps the black box with this request's
    // trace marked, and the client still gets a fail-closed denial.
    let boom = DecisionRequest::new(PANIC_TOKEN, &roles[0], &ops[0], &purposes[0], "granted");
    let reply = handle
        .decide(boom)
        .map_err(|e| format!("service failed on the seeded panic: {e:?}"))?;
    if !matches!(reply.verdict, Verdict::Deny(_)) {
        return Err("seeded panic did not fail closed".to_string());
    }
    let dump = flight
        .last_dump()
        .ok_or("the worker panic produced no flight dump")?;
    service.shutdown();

    println!(
        "flight dump: trigger={}, trace={}, {} span record(s) in the ring",
        dump.trigger,
        dump.trace_id,
        dump.records.len()
    );
    let jsonl = dump.to_jsonl();
    match flags.get("out") {
        Some(path) => {
            std::fs::write(path, &jsonl).map_err(|e| format!("cannot write '{path}': {e}"))?;
            println!("dump (JSONL) written to {path}");
        }
        None => print!("{jsonl}"),
    }
    Ok(())
}

fn flag_num<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    into: &mut T,
) -> Result<(), String> {
    if let Some(s) = flags.get(key) {
        *into = s.parse().map_err(|_| format!("bad --{key} '{s}'"))?;
    }
    Ok(())
}

fn surge_config_from(flags: &HashMap<String, String>) -> Result<prima::serve::SurgeConfig, String> {
    let mut config = if flags.contains_key("smoke") {
        prima::serve::SurgeConfig::smoke()
    } else {
        prima::serve::SurgeConfig::default()
    };
    flag_num(flags, "principals", &mut config.principals)?;
    flag_num(flags, "clients", &mut config.bulk_clients)?;
    flag_num(flags, "workers", &mut config.workers)?;
    flag_num(flags, "zipf", &mut config.zipf)?;
    flag_num(flags, "seed", &mut config.seed)?;
    Ok(config)
}

fn print_surge_report(report: &prima::serve::SurgeReport) {
    println!(
        "capacity {:.0}/s, offered {:.0}/s — surge factor {:.1}x over {:.2}s",
        report.capacity_per_sec, report.offered_per_sec, report.surge_factor, report.elapsed_secs
    );
    let lane = |name: &str, o: &prima::serve::LaneOutcomes| {
        println!(
            "{name}: {} offered, {} decided, {} shed (SRV-011), {} expired (SRV-012), \
             {} unexpected",
            o.offered, o.decided, o.shed, o.expired, o.unexpected
        );
    };
    lane("bulk", &report.bulk);
    lane("emergency", &report.emergency);
    println!(
        "coherence: {} audited, {} mismatch(es)",
        report.coherence_checked, report.coherence_mismatches
    );
    for (gate, ok) in report.gates() {
        println!("gate {gate}: {}", if ok { "pass" } else { "FAIL" });
    }
}

fn serve_bench_surge(flags: &HashMap<String, String>) -> Result<(), String> {
    let config = surge_config_from(flags)?;
    println!(
        "serve-bench --surge: {} bulk + {} emergency client(s) for {}ms, \
         {} worker(s) at {}us/decision ({} mode)",
        config.bulk_clients,
        config.emergency_clients,
        config.duration_ms,
        config.workers,
        config.decision_delay_us,
        if config.smoke { "smoke" } else { "full" }
    );
    let report = prima::serve::run_surge(config);
    print_surge_report(&report);
    if let Some(path) = flags.get("out") {
        let text = serde_json::to_string_pretty(&report.to_json())
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("report written to {path}");
    }
    if report.passed() {
        Ok(())
    } else {
        Err("serve-bench surge gate(s) failed".to_string())
    }
}

fn serve_bench_suite(flags: &HashMap<String, String>) -> Result<(), String> {
    use prima::serve::LoadConfig;
    let smoke = flags.contains_key("smoke");
    let base = if smoke {
        LoadConfig::smoke()
    } else {
        LoadConfig::default()
    };
    let mut load_reports = Vec::new();
    for workers in [1usize, 4] {
        let config = LoadConfig {
            workers,
            ..base.clone()
        };
        println!("suite: load bench, {workers} worker(s) …");
        let report = prima::serve::run_load(config);
        println!(
            "  {:.0} decisions/s, hit rate {:.1}%, {} coherence mismatch(es): {}",
            report.decisions_per_sec,
            report.hit_rate() * 100.0,
            report.coherence_mismatches,
            if report.passed() { "pass" } else { "FAIL" }
        );
        load_reports.push(report);
    }
    println!("suite: surge bench …");
    let surge = prima::serve::run_surge(surge_config_from(flags)?);
    print_surge_report(&surge);

    let passed = load_reports.iter().all(|r| r.passed()) && surge.passed();
    if let Some(path) = flags.get("out") {
        let json = serde_json::Value::Map(vec![
            ("bench".into(), serde_json::Value::Str("serve_suite".into())),
            (
                "load".into(),
                serde_json::Value::Seq(load_reports.iter().map(|r| r.to_json()).collect()),
            ),
            ("surge".into(), surge.to_json()),
        ]);
        let text = serde_json::to_string_pretty(&json)
            .map_err(|e| format!("cannot serialize report: {e}"))?;
        std::fs::write(path, text).map_err(|e| format!("cannot write '{path}': {e}"))?;
        println!("report written to {path}");
    }
    if passed {
        Ok(())
    } else {
        Err("serve-bench suite gate(s) failed".to_string())
    }
}

fn cmd_refine(args: &[String]) -> Result<(), String> {
    let flags = parse_flags(
        args,
        &[
            "policy",
            "audit",
            "vocab",
            "f",
            "users",
            "apply",
            "generalize",
        ],
    )?;
    let vocab = load_vocab(&flags)?;
    let mut policy = load_policy(&flags)?;
    lint_and_report(&policy, &vocab);
    let entries = load_audit(&flags)?;
    let f: usize = flags
        .get("f")
        .map(|s| s.parse().map_err(|_| format!("bad --f '{s}'")))
        .transpose()?
        .unwrap_or(5);
    let users: usize = flags
        .get("users")
        .map(|s| s.parse().map_err(|_| format!("bad --users '{s}'")))
        .transpose()?
        .unwrap_or(1);

    let miner = prima::mining::SqlMiner::new(prima::mining::MinerConfig {
        min_frequency: f,
        min_distinct_users: users,
        ..prima::mining::MinerConfig::default()
    });
    let report = prima::refine::refinement_with_miner(&policy, &entries, &vocab, &miner)
        .map_err(|e| e.to_string())?;
    println!(
        "{} entries -> {} practice -> {} pattern(s) -> {} useful",
        report.input_entries,
        report.practice_entries,
        report.raw_patterns.len(),
        report.useful_patterns.len()
    );
    for p in &report.useful_patterns {
        println!("  {p}");
    }
    let candidate_rules: Vec<prima::model::Rule> = if flags.contains_key("generalize") {
        let out = prima::refine::generalize(&report.useful_patterns, &vocab);
        for step in &out.steps {
            println!(
                "  generalized {} sibling rule(s) over '{}' into {}",
                step.covers.len(),
                step.attr,
                step.rule
            );
        }
        out.rules
    } else {
        report
            .useful_patterns
            .iter()
            .map(|p| prima::model::Rule::from_ground(&p.rule))
            .collect()
    };
    if let Some(out) = flags.get("apply") {
        for r in candidate_rules {
            policy.push_unique(r);
        }
        std::fs::write(out, render_policy(&policy))
            .map_err(|e| format!("cannot write '{out}': {e}"))?;
        println!("refined policy written to {out}");
    }
    Ok(())
}
