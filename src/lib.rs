//! # prima — umbrella crate
//!
//! Re-exports every PRIMA component crate under one roof so examples,
//! integration tests, and downstream users can depend on a single crate.
//!
//! Reproduction of *"Towards Improved Privacy Policy Coverage in Healthcare
//! Using Policy Refinement"* (Bhatti & Grandison, 2007). See `README.md` for
//! the architecture overview, `DESIGN.md` for the system inventory, and
//! `EXPERIMENTS.md` for the paper-vs-measured record.

#![forbid(unsafe_code)]

pub use prima_analyze as analyze;
pub use prima_audit as audit;
pub use prima_core as system;
pub use prima_hdb as hdb;
pub use prima_hier as hier;
pub use prima_mining as mining;
pub use prima_model as model;
pub use prima_obs as obs;
pub use prima_query as query;
pub use prima_refine as refine;
pub use prima_serve as serve;
pub use prima_store as store;
pub use prima_stream as stream;
pub use prima_vocab as vocab;
pub use prima_workload as workload;
