//! Multi-site audit federation: three hospital sites, one consolidated
//! refinement process.
//!
//! ```sh
//! cargo run --example multi_site_federation
//! ```
//!
//! Plays the role the paper assigns to DB2 Information Integrator: each
//! site keeps its own audit trail; PRIMA's Audit Management builds a
//! consolidated view, and patterns that are individually too rare at any
//! single site only become visible federation-wide.

use prima::audit::AuditStore;
use prima::model::samples::figure_3_policy_store;
use prima::refine::refinement;
use prima::system::{PrimaSystem, ReviewMode};
use prima::vocab::samples::figure_1;
use prima::workload::sim::{SimConfig, Simulator};
use prima::workload::PracticeCluster;

fn main() {
    let vocab = figure_1();
    let policy = figure_3_policy_store();

    // Each site runs the same informal workflow at low volume.
    let cluster = PracticeCluster::new("referral", "registration", "nurse");
    let sim = Simulator::new(vocab.clone(), policy.clone(), vec![cluster]);

    let mut sites = Vec::new();
    for (i, name) in ["north-campus", "south-campus", "day-clinic", "rehab-center"]
        .iter()
        .enumerate()
    {
        let trail = sim.generate(&SimConfig {
            seed: 600 + i as u64,
            n_entries: 30,
            informal_share: 0.08, // ~2-3 informal entries per site
            violation_share: 0.0,
            ..SimConfig::default()
        });
        let store = AuditStore::new(name);
        store
            .append_all(&prima::workload::sim::entries(&trail))
            .expect("simulated entries conform to the schema");
        println!("{name}: {} entries recorded", store.len());
        sites.push(store);
    }

    // Per-site mining at the paper's default f = 5 finds nothing…
    for store in &sites {
        let report = refinement(&policy, &store.entries(), &vocab).expect("mines cleanly");
        println!(
            "  {}: {} exception entries, {} pattern(s) at f=5",
            store.name(),
            report.practice_entries,
            report.useful_patterns.len()
        );
        assert!(
            report.useful_patterns.is_empty(),
            "no single site should cross the threshold in this scenario"
        );
    }

    // …but the federated view crosses the threshold.
    let mut prima = PrimaSystem::new(vocab, policy);
    for store in sites {
        prima.attach_store(store).expect("unique source name");
    }
    println!(
        "federation: {} entries across {} sites",
        prima.federation().total_len(),
        prima.federation().sources().len()
    );

    let round = prima
        .run_round(ReviewMode::AutoAccept)
        .expect("federated trail mines cleanly");
    println!(
        "federated refinement: {} practice entries -> {} pattern(s) -> {} rule(s) accepted",
        round.practice_entries, round.patterns_found, round.rules_added
    );
    for record in prima.history() {
        println!(
            "  round {}: coverage {:.0}% -> {:.0}%",
            record.round,
            record.entry_coverage_before * 100.0,
            record.entry_coverage_after * 100.0
        );
    }
    assert!(
        round.rules_added >= 1,
        "the federation-wide pattern must surface"
    );
}
