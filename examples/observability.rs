//! End-to-end observability: one registry, one tracer, every subsystem.
//!
//! ```sh
//! cargo run --example observability
//! ```
//!
//! Wires a shared `prima-obs` registry and tracer through all four
//! instrumented layers — refinement rounds (`SystemObs`), the streaming
//! engine (`StreamConfig::observability`), the resilient audit
//! federation (rewired automatically by
//! `PrimaSystem::with_observability`), and the query engine
//! (`QueryObs`) — then scrapes the books once and drains the span
//! timeline once. The example **asserts** that every expected metric
//! family and span name is present, so CI can run it as a live check
//! that the instrumentation stays connected.

use prima::audit::{AuditStore, FaultySource, SourceFaults};
use prima::obs::{MetricsRegistry, Tracer};
use prima::query::QueryObs;
use prima::stream::StreamConfig;
use prima::system::{PrimaSystem, ReviewMode, SystemObs};
use prima::workload::{Scenario, SimConfig};

fn main() {
    // 1. One set of books for everything: a live registry (metrics) and
    //    tracer (spans), shared by clone — clones read and write the
    //    same cells.
    let registry = MetricsRegistry::new();
    let tracer = Tracer::new();

    let scenario = Scenario::community_hospital();
    let mut prima = PrimaSystem::new(scenario.vocab.clone(), scenario.policy.clone())
        .with_observability(SystemObs::over(registry.clone(), tracer.clone()));

    // 2. A flaky remote site behind the resilience layer: the first two
    //    fetch attempts fail (exercising retries), and every 40th record
    //    is corrupted (exercising quarantine). Its metrics land in the
    //    same registry because `with_observability` rewired the
    //    federation too.
    let sim = scenario.simulator();
    let remote = AuditStore::new("remote-clinic");
    let remote_trail = sim.generate(&SimConfig {
        seed: 41,
        n_entries: 200,
        ..SimConfig::default()
    });
    remote
        .append_all(&prima::workload::sim::entries(&remote_trail))
        .expect("simulated entries conform to the schema");
    prima
        .attach_source(Box::new(FaultySource::new(
            remote,
            SourceFaults::none()
                .fail_first_attempts(2)
                .corrupt_every(40),
        )))
        .expect("unique source name");
    let health = prima.sync_sources();
    println!(
        "federation sync: completeness {:.1}%, {} record(s) quarantined",
        health.completeness() * 100.0,
        prima.resilient_mut().quarantine().len()
    );

    // 3. A streaming engine on the same books: per-shard ingest/cache
    //    metrics plus `stream.checkpoint` spans from the checkpointing
    //    config.
    let mut live = prima.attach_stream(
        StreamConfig::default()
            .window_secs(3600)
            .checkpoint_every(1_000)
            .observability(registry.clone(), tracer.clone()),
    );
    let mut events = sim.events(&SimConfig {
        seed: 77,
        ..SimConfig::default()
    });
    for _ in 0..4_000 {
        let labeled = events.next().expect("event source is unbounded");
        live.ingest(&labeled.entry);
    }

    // 4. One streamed refinement round — this is what fills the
    //    per-stage histograms behind the PipelineReport.
    let round = prima
        .run_streamed_round(&mut live, ReviewMode::AutoAccept)
        .expect("refinement round succeeds")
        .expect("window has entries to mine");
    println!(
        "refinement round: {} pattern(s) found, {} rule(s) accepted",
        round.patterns_found, round.rules_added
    );
    live.shutdown();

    // 5. A query over the consolidated trail, timed per plan node.
    let table = prima
        .federation()
        .consolidated_table()
        .expect("consolidated trail conforms to the audit schema");
    let query_obs = QueryObs::over(&registry, tracer.clone());
    let result = prima::query::execute_observed(
        &table,
        "SELECT user, COUNT(*) FROM audit_consolidated \
         GROUP BY user ORDER BY COUNT(*) DESC",
        &query_obs,
    )
    .expect("query over the audit schema");
    println!(
        "query: {} user group(s) in the consolidated trail",
        result.rows.len()
    );

    // 6. The per-stage latency profile of the round(s) run so far.
    let report = prima.pipeline_report();
    println!("\n{report}");
    assert!(
        report.all_stages_observed(),
        "every refinement stage must record at least one timing"
    );

    // 7. Scrape: one Prometheus exposition covering every subsystem.
    let scrape = prima::obs::export::prometheus(&registry);
    for family in [
        "prima_rounds_total",
        "prima_round_stage_seconds",
        "prima_coverage_entry_ratio",
        "prima_stream_ingested_total",
        "prima_stream_cache_hits_total",
        "prima_stream_checkpoint_seconds",
        "prima_audit_sync_rounds_total",
        "prima_audit_retry_attempts_total",
        "prima_audit_quarantined_total",
        "prima_query_statements_total",
        "prima_query_node_seconds",
    ] {
        assert!(
            scrape.contains(&format!("# TYPE {family} ")),
            "scrape is missing the {family} family"
        );
    }
    println!(
        "prometheus scrape: {} lines across all subsystems",
        scrape.lines().count()
    );

    // 8. Drain the span timeline once and check the cross-subsystem
    //    trace actually happened.
    let spans = tracer.drain();
    for name in [
        "round.run",
        "federation.sync",
        "federation.fetch",
        "stream.checkpoint",
        "query.run",
    ] {
        assert!(
            spans.iter().any(|s| s.name == name),
            "trace is missing a `{name}` span"
        );
    }
    let jsonl = prima::obs::export::spans_jsonl(&spans);
    println!(
        "trace: {} span(s) drained, {} JSONL bytes",
        spans.len(),
        jsonl.len()
    );

    // 9. Cross-thread trace parenting: a root span opened here hands its
    //    `TraceContext` across a thread hop, and the child span opened on
    //    the far side via `span_in` must land in the same trace, parented
    //    to the root — the exact mechanism serve workers and stream
    //    shards use to keep one request one trace.
    let root = tracer.root_span("example.handoff");
    let ctx = root.context();
    let far_tracer = tracer.clone();
    std::thread::spawn(move || {
        let mut child = far_tracer.span_in("example.far_side", ctx);
        child.field("hop", 1u64);
    })
    .join()
    .expect("far-side thread joins cleanly");
    drop(root);
    let handoff = tracer.drain();
    let root_span = handoff
        .iter()
        .find(|s| s.name == "example.handoff")
        .expect("root span was recorded");
    let far_span = handoff
        .iter()
        .find(|s| s.name == "example.far_side")
        .expect("far-side span was recorded");
    assert_eq!(
        far_span.trace_id, root_span.trace_id,
        "thread hop must stay inside the root's trace"
    );
    assert_eq!(
        far_span.parent, root_span.id,
        "far-side span must be parented to the root across the hop"
    );
    println!(
        "cross-thread handoff: trace {} connects {} -> {}",
        root_span.trace_id, root_span.name, far_span.name
    );
    println!("\nall observability assertions passed");
}
