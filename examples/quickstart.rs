//! Quickstart: measure policy coverage and refine a policy in ~60 lines.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! Recreates the paper's Section 5 use case: a three-rule policy store, the
//! Table 1 audit trail, 30 % coverage, one mined pattern, 80 % coverage
//! after accepting it.

use prima::audit::AuditStore;
use prima::system::{PrimaSystem, ReviewMode};
use prima::vocab::samples::figure_1;
use prima::workload::fixtures::table_1;

fn main() {
    // 1. The privacy policy vocabulary (Figure 1) and the stated policy
    //    (Figure 3): nurses treat with general-care data, physicians treat
    //    with mental-health data, clerks bill with demographics.
    let vocab = figure_1();
    let policy = prima::model::samples::figure_3_policy_store();

    // 2. The audit trail the clinical system produced (Table 1): ten
    //    accesses, seven of them break-the-glass exceptions.
    let store = AuditStore::new("hospital-main");
    store
        .append_all(&table_1())
        .expect("fixture conforms to the audit schema");

    // 3. Wire up PRIMA and look at the gap between ideal and real.
    let mut prima = PrimaSystem::new(vocab, policy);
    prima.attach_store(store).expect("unique source name");

    let before = prima.entry_coverage();
    println!(
        "coverage before refinement: {}/{} entries = {:.0}%",
        before.covered_entries,
        before.total_entries,
        before.percent()
    );

    // 4. One refinement round: filter exceptions, mine frequent patterns,
    //    prune the ones policy already covers, accept the survivors.
    let round = prima
        .run_round(ReviewMode::AutoAccept)
        .expect("fixture mines cleanly");
    println!(
        "refinement: {} practice entries -> {} pattern(s) mined -> {} accepted",
        round.practice_entries, round.patterns_found, round.rules_added
    );
    for candidate in prima.review().candidates() {
        println!(
            "  new rule: {}  (seen {} times by {} users)",
            candidate.proposed_rule, candidate.pattern.support, candidate.pattern.distinct_users
        );
    }

    // 5. The same trail under the refined policy.
    let after = prima.entry_coverage();
    println!(
        "coverage after refinement:  {}/{} entries = {:.0}%",
        after.covered_entries,
        after.total_entries,
        after.percent()
    );
}
