//! A day in the clinical workflow: enforced queries, consent, and
//! break-the-glass accesses flowing through the HDB middleware into PRIMA.
//!
//! ```sh
//! cargo run --example break_the_glass
//! ```
//!
//! The scenario the paper's introduction motivates: policy doesn't cover a
//! real workflow (nurses registering referrals), so the staff break the
//! glass all day; PRIMA notices and proposes the missing rule.

use prima::hdb::{AccessRequest, ControlCenter};
use prima::system::{PrimaSystem, ReviewMode};
use prima::vocab::samples::figure_1;

fn main() {
    // --- Privacy Policy Definition (the HDB Control Center) -------------
    let mut cc = ControlCenter::new(figure_1(), "patient");
    let (encounters, mappings) = prima::hdb::clinical::encounters_table();
    let maps: Vec<(&str, &str)> = mappings
        .iter()
        .map(|(c, k)| (c.as_str(), k.as_str()))
        .collect();
    cc.register_table(encounters, &maps).expect("fresh catalog");
    cc.define_rule("general-care", "treatment", "nurse")
        .expect("valid rule");
    cc.define_rule("demographic", "billing", "clerk")
        .expect("valid rule");
    // One patient withdraws consent for treatment uses of general care data.
    cc.opt_out("p2", "treatment", Some("general-care"));

    // --- The clinical day ------------------------------------------------
    // Regular, sanctioned access: purpose chosen from the list.
    let ok = cc
        .query(&AccessRequest::chosen(
            100,
            "tim",
            "nurse",
            "treatment",
            "encounters",
            &["referral"],
        ))
        .expect("policy allows");
    println!(
        "nurse tim reads referrals for treatment: {} rows ({} cells nulled for consent)",
        ok.rows.len(),
        ok.consent_suppressed_cells
    );

    // A denied attempt: clerks may not read referrals for billing.
    let denied = cc.query(&AccessRequest::chosen(
        110,
        "bill",
        "clerk",
        "billing",
        "encounters",
        &["referral"],
    ));
    println!("clerk bill reads referrals for billing: {denied:?}");

    // The missing workflow: nurses register incoming referrals. Policy
    // doesn't cover it, so five nurses break the glass over the shift.
    for (t, nurse) in [
        (201, "mark"),
        (202, "tim"),
        (203, "ana"),
        (204, "bob"),
        (205, "mark"),
    ] {
        let res = cc
            .query(&AccessRequest::break_the_glass(
                t,
                nurse,
                "nurse",
                "registration",
                "encounters",
                &["referral"],
            ))
            .expect("break-the-glass always serves");
        assert!(!res.denied);
    }
    println!(
        "audit trail now holds {} entries (including the denial and 5 break-the-glass accesses)",
        cc.audit_store().len()
    );

    // --- PRIMA closes the loop -------------------------------------------
    let mut prima = PrimaSystem::new(figure_1(), cc.policy().clone());
    prima
        .attach_store(cc.audit_store().clone())
        .expect("unique source name");

    let before = prima.entry_coverage();
    println!("coverage of today's practice: {:.0}%", before.percent());

    let round = prima
        .run_round(ReviewMode::Manual)
        .expect("trail mines cleanly");
    println!(
        "refinement proposed {} candidate rule(s):",
        round.candidates_enqueued
    );
    for c in prima.review().pending() {
        println!(
            "  [{}] {}  support={} users={}",
            c.id, c.proposed_rule, c.pattern.support, c.pattern.distinct_users
        );
    }

    // The privacy officer reviews and accepts; the control center enforces
    // the refined policy from now on.
    let ids: Vec<u64> = prima.review().pending().map(|c| c.id).collect();
    for id in ids {
        prima.review_mut().decide(
            id,
            prima::refine::CandidateState::Accepted,
            Some("registration desk workflow, confirmed with ward lead"),
        );
    }
    let added = prima.apply_review_decisions();
    cc.set_policy(prima.policy().clone());
    println!("{added} rule(s) folded into the policy store");

    // The same workflow is now a regular access — no glass to break.
    let now_regular = cc
        .query(&AccessRequest::chosen(
            300,
            "ana",
            "nurse",
            "registration",
            "encounters",
            &["referral"],
        ))
        .expect("newly refined policy allows");
    println!(
        "nurse ana registers referrals through the regular flow: {} rows",
        now_regular.rows.len()
    );
}
