//! PRIMA over a legacy, tree-structured (XML-like) clinical record — the
//! paper's stated future work ("adapt the core concepts and technology to
//! the tree-based structures").
//!
//! ```sh
//! cargo run --example legacy_tree_records
//! ```

use prima::hier::enforce::TreeAccessMode;
use prima::hier::{Document, PathCategoryMap, TreeEnforcement};
use prima::model::dsl::parse_policy;
use prima::system::{PrimaSystem, ReviewMode};
use prima::vocab::samples::figure_1;

const LEGACY_RECORD: &str = r#"
<patient>
  <demographic>
    <name>Ada Pine</name>
    <address>12 Oak St</address>
  </demographic>
  <record>
    <referral>cardiology consult</referral>
    <prescription>atenolol 50mg</prescription>
    <mental-health>
      <psychiatry>session notes</psychiatry>
    </mental-health>
  </record>
</patient>
"#;

fn main() {
    // Parse the legacy export.
    let doc = Document::parse_xml(LEGACY_RECORD.trim()).expect("well-formed record");
    println!("legacy record ({} nodes):\n{}", doc.len(), doc.to_xml());

    // Map document regions onto the privacy vocabulary.
    let mut categories = PathCategoryMap::new();
    categories
        .map("/patient/demographic/**", "demographic")
        .unwrap();
    categories
        .map("/patient/record/referral", "referral")
        .unwrap();
    categories
        .map("/patient/record/prescription", "prescription")
        .unwrap();
    categories
        .map("/patient/record/mental-health/**", "psychiatry")
        .unwrap();

    // The same DSL policy as the relational world.
    let policy = parse_policy("allow nurse to use general-care for treatment;").unwrap();
    let mut enforcement = TreeEnforcement::new(policy, figure_1(), categories);

    // A nurse treating: general care visible, everything else redacted.
    let out = enforcement.enforce(&doc, 1, "tim", "nurse", "treatment", TreeAccessMode::Chosen);
    println!("nurse tim's treatment view:\n{}", out.view.to_xml());
    println!(
        "served {:?}, redacted {:?} ({} nodes pruned)\n",
        out.served_categories, out.redacted_categories, out.redacted_nodes
    );

    // The registration desk breaks the glass repeatedly; the audit entries
    // flow into the *same* PRIMA loop as relational systems.
    let store = prima::audit::AuditStore::new("legacy-system");
    for (t, nurse) in [
        (10, "mark"),
        (11, "tim"),
        (12, "ana"),
        (13, "bob"),
        (14, "mark"),
    ] {
        let btg = enforcement.enforce(
            &doc,
            t,
            nurse,
            "nurse",
            "registration",
            TreeAccessMode::BreakTheGlass,
        );
        // A real adapter logs all entries; the demo logs the referral
        // region's to keep the mined pattern visible.
        for e in btg.audit_entries.iter().filter(|e| e.data == "referral") {
            store.append(e).unwrap();
        }
    }

    let mut prima = PrimaSystem::new(figure_1(), enforcement.policy().clone());
    prima.attach_store(store).expect("unique source name");
    let round = prima
        .run_round(ReviewMode::AutoAccept)
        .expect("mines cleanly");
    println!(
        "refinement over the legacy system's trail: {} pattern(s), {} rule(s) accepted",
        round.patterns_found, round.rules_added
    );

    // The refined policy un-redacts the registration workflow.
    enforcement.set_policy(prima.policy().clone());
    let after = enforcement.enforce(
        &doc,
        20,
        "ana",
        "nurse",
        "registration",
        TreeAccessMode::Chosen,
    );
    println!(
        "nurse ana's registration view now serves {:?}:\n{}",
        after.served_categories,
        after.view.to_xml()
    );
}
