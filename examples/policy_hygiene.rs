//! Policy hygiene: generalizing mined rules and compacting the store.
//!
//! ```sh
//! cargo run --example policy_hygiene
//! ```
//!
//! Months of refinement leave the policy store full of ground rules. This
//! example shows the two hygiene passes a privacy officer runs:
//! vocabulary-aware *generalization* (sibling-complete ground rules fold
//! into the composite their evidence covers) and subsumption *compaction*
//! (rules another rule already implies are removed). Both preserve
//! semantics exactly — the range is unchanged — while the rule base reads
//! the way policy is actually written.

use prima::mining::Pattern;
use prima::model::dsl::render_policy;
use prima::model::simplify::simplify_policy;
use prima::model::{GroundRule, Policy, RangeSet, Rule, StoreTag};
use prima::refine::generalize;
use prima::vocab::samples::figure_1;

fn main() {
    let vocab = figure_1();

    // Mined over several rounds: nurses handle every general-care category
    // for every administering-healthcare purpose.
    let mut patterns = Vec::new();
    for data in ["prescription", "referral", "lab-result"] {
        for purpose in ["treatment", "registration", "billing"] {
            patterns.push(Pattern::new(
                GroundRule::of(&[
                    ("data", data),
                    ("purpose", purpose),
                    ("authorized", "nurse"),
                ]),
                25,
                4,
            ));
        }
    }
    println!("mined candidates ({}):", patterns.len());
    for p in &patterns {
        println!("  {p}");
    }

    // Pass 1: generalization.
    let out = generalize(&patterns, &vocab);
    println!("\ngeneralization steps:");
    for step in &out.steps {
        println!(
            "  folded {} rules over '{}' -> {} (combined support {})",
            step.covers.len(),
            step.attr,
            step.rule,
            step.support
        );
    }
    println!("result: {} candidate rule(s)", out.rules.len());

    // Accept into a policy that (from an earlier round) already holds one
    // of the ground rules.
    let mut policy = Policy::with_rules(
        StoreTag::PolicyStore,
        vec![Rule::of(&[
            ("data", "referral"),
            ("purpose", "treatment"),
            ("authorized", "nurse"),
        ])],
    );
    for r in &out.rules {
        policy.push_unique(r.clone());
    }
    println!(
        "\npolicy before compaction ({} rules):",
        policy.cardinality()
    );
    print!("{}", render_policy(&policy));

    // Pass 2: compaction.
    let before_range = RangeSet::of_policy(&policy, &vocab).expect("small policy");
    let compacted = simplify_policy(&policy, &vocab);
    let after_range = RangeSet::of_policy(&compacted.policy, &vocab).expect("small policy");
    assert_eq!(before_range, after_range, "compaction preserves semantics");

    println!(
        "\npolicy after compaction ({} rules, {} removed, range unchanged at {} ground rules):",
        compacted.policy.cardinality(),
        compacted.removed.len(),
        after_range.cardinality()
    );
    print!("{}", render_policy(&compacted.policy));
}
