//! Tuning the mining thresholds against labelled synthetic workloads.
//!
//! ```sh
//! cargo run --release --example threshold_tuning
//! ```
//!
//! The paper concedes its extraction criteria (frequency `f`, distinct-user
//! condition) are "clearly subjective" and must be "configured and tuned as
//! per the requirement specifications of the target environment". This
//! example shows the tuning workflow the simulator enables: sweep the
//! thresholds over a trail with known ground truth and pick the knee of the
//! precision/recall curve.

use prima::mining::{Miner, MinerConfig, SqlMiner};
use prima::refine::extract::practice_table;
use prima::refine::filter::filter;
use prima::workload::scenario::score_patterns;
use prima::workload::sim::{entries, SimConfig};
use prima::workload::Scenario;

fn main() {
    let scenario = Scenario::community_hospital();
    let sim = scenario.simulator();
    let trail = entries(&sim.generate(&SimConfig {
        seed: 77,
        n_entries: 20_000,
        informal_share: 0.15,
        violation_share: 0.05, // noisy environment
        ..SimConfig::default()
    }));
    let practice = filter(&trail);
    let table = practice_table(&practice);
    let truth = scenario.ground_truth();

    println!(
        "trail: {} entries, {} exceptions, {} true informal workflows\n",
        trail.len(),
        practice.len(),
        truth.len()
    );
    println!(
        "{:>5} {:>7} {:>10} {:>8} {:>6}",
        "f", "mined", "precision", "recall", "F1"
    );

    let mut best = (0usize, 0.0f64);
    for f in [2usize, 3, 5, 8, 13, 21, 34, 55, 89, 144, 233] {
        let miner = SqlMiner::new(MinerConfig {
            min_frequency: f,
            min_distinct_users: 1,
            ..MinerConfig::default()
        });
        let patterns = miner.mine(&table).expect("columns exist");
        let score = score_patterns(&patterns, &truth);
        println!(
            "{f:>5} {:>7} {:>10.2} {:>8.2} {:>6.2}",
            patterns.len(),
            score.precision(),
            score.recall(),
            score.f1()
        );
        if score.f1() > best.1 {
            best = (f, score.f1());
        }
    }
    println!(
        "\npick f = {} (best F1 = {:.2}) for this environment; rerun per deployment.",
        best.0, best.1
    );
}
