//! Streaming ingestion: keep coverage live while audit entries arrive.
//!
//! ```sh
//! cargo run --example streaming_ingestion
//! ```
//!
//! Attaches a `prima-stream` engine to a `PrimaSystem`, feeds it a live
//! clinical event source, reads consistent snapshots mid-stream, runs a
//! windowed refinement round off the snapshot's training window, and
//! shows the refreshed engine re-judging history under the grown policy.

use prima::stream::StreamConfig;
use prima::system::{PrimaSystem, ReviewMode};
use prima::workload::{Scenario, SimConfig};

fn main() {
    // 1. The community-hospital scenario: a ten-rule stated policy over
    //    the hospital vocabulary, plus informal practices the policy
    //    misses (what streaming refinement should discover).
    let scenario = Scenario::community_hospital();
    let mut prima = PrimaSystem::new(scenario.vocab.clone(), scenario.policy.clone());

    // 2. Attach a streaming engine: 4 hash-partitioned shard workers,
    //    a one-hour sliding window feeding windowed refinement.
    let mut live = prima.attach_stream(StreamConfig::default().window_secs(3600));

    // 3. A live event source (never exhausts) standing in for the wire.
    let sim = scenario.simulator();
    let config = SimConfig {
        seed: 77,
        ..SimConfig::default()
    };
    let mut events = sim.events(&config);

    // 4. Ingest continuously; snapshot whenever someone asks. Snapshots
    //    are epoch barriers: each one is a consistent cut of the stream.
    for burst in 1..=3 {
        for _ in 0..2_000 {
            let labeled = events.next().expect("event source is unbounded");
            live.ingest(&labeled.entry);
        }
        let snap = live.snapshot();
        println!(
            "burst {burst}: {} entries live-classified, coverage {:.1}%, \
             {} distinct patterns, cache hit rate {:.1}%",
            snap.processed,
            snap.totals.ratio() * 100.0,
            snap.coverage.target_cardinality,
            snap.cache.hit_rate() * 100.0
        );
    }

    // 5. One streamed refinement round: mine the snapshot's training
    //    window, auto-accept the candidates, refresh the engine so its
    //    counters are re-labeled under the grown policy.
    let before = live.snapshot().totals.ratio();
    let round = prima
        .run_streamed_round(&mut live, ReviewMode::AutoAccept)
        .expect("refinement round succeeds")
        .expect("window has entries to mine");
    let after = live.snapshot();
    println!(
        "refinement round: {} rule(s) accepted, live coverage {:.1}% -> {:.1}% (epoch {})",
        round.rules_added,
        before * 100.0,
        after.totals.ratio() * 100.0,
        after.epoch
    );

    // 6. Drain and shut down; the final snapshot accounts for every
    //    accepted entry (processed + lost == ingested).
    let last = live.shutdown();
    assert_eq!(last.processed + last.lost, last.ingested);
    println!(
        "shutdown: {} ingested, {} processed, {} lost",
        last.ingested, last.processed, last.lost
    );
}
