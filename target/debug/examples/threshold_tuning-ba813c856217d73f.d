/root/repo/target/debug/examples/threshold_tuning-ba813c856217d73f.d: examples/threshold_tuning.rs

/root/repo/target/debug/examples/threshold_tuning-ba813c856217d73f: examples/threshold_tuning.rs

examples/threshold_tuning.rs:
