/root/repo/target/debug/examples/break_the_glass-07c878036dcfd1d0.d: examples/break_the_glass.rs Cargo.toml

/root/repo/target/debug/examples/libbreak_the_glass-07c878036dcfd1d0.rmeta: examples/break_the_glass.rs Cargo.toml

examples/break_the_glass.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
