/root/repo/target/debug/examples/policy_hygiene-4f0e8dc32ebba5df.d: examples/policy_hygiene.rs Cargo.toml

/root/repo/target/debug/examples/libpolicy_hygiene-4f0e8dc32ebba5df.rmeta: examples/policy_hygiene.rs Cargo.toml

examples/policy_hygiene.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
