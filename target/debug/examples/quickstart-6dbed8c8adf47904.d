/root/repo/target/debug/examples/quickstart-6dbed8c8adf47904.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6dbed8c8adf47904: examples/quickstart.rs

examples/quickstart.rs:
