/root/repo/target/debug/examples/legacy_tree_records-04132d7f8548e1d8.d: examples/legacy_tree_records.rs Cargo.toml

/root/repo/target/debug/examples/liblegacy_tree_records-04132d7f8548e1d8.rmeta: examples/legacy_tree_records.rs Cargo.toml

examples/legacy_tree_records.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
