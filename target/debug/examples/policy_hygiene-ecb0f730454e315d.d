/root/repo/target/debug/examples/policy_hygiene-ecb0f730454e315d.d: examples/policy_hygiene.rs

/root/repo/target/debug/examples/policy_hygiene-ecb0f730454e315d: examples/policy_hygiene.rs

examples/policy_hygiene.rs:
