/root/repo/target/debug/examples/policy_hygiene-829ca4f4914a97fe.d: examples/policy_hygiene.rs

/root/repo/target/debug/examples/policy_hygiene-829ca4f4914a97fe: examples/policy_hygiene.rs

examples/policy_hygiene.rs:
