/root/repo/target/debug/examples/multi_site_federation-c4345209f2b732c8.d: examples/multi_site_federation.rs

/root/repo/target/debug/examples/multi_site_federation-c4345209f2b732c8: examples/multi_site_federation.rs

examples/multi_site_federation.rs:
