/root/repo/target/debug/examples/multi_site_federation-fa0f52b83cbd9c5c.d: examples/multi_site_federation.rs Cargo.toml

/root/repo/target/debug/examples/libmulti_site_federation-fa0f52b83cbd9c5c.rmeta: examples/multi_site_federation.rs Cargo.toml

examples/multi_site_federation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
