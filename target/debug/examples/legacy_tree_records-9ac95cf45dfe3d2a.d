/root/repo/target/debug/examples/legacy_tree_records-9ac95cf45dfe3d2a.d: examples/legacy_tree_records.rs

/root/repo/target/debug/examples/legacy_tree_records-9ac95cf45dfe3d2a: examples/legacy_tree_records.rs

examples/legacy_tree_records.rs:
