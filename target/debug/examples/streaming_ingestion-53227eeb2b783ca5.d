/root/repo/target/debug/examples/streaming_ingestion-53227eeb2b783ca5.d: examples/streaming_ingestion.rs

/root/repo/target/debug/examples/streaming_ingestion-53227eeb2b783ca5: examples/streaming_ingestion.rs

examples/streaming_ingestion.rs:
