/root/repo/target/debug/examples/legacy_tree_records-6265522fa024c9de.d: examples/legacy_tree_records.rs

/root/repo/target/debug/examples/legacy_tree_records-6265522fa024c9de: examples/legacy_tree_records.rs

examples/legacy_tree_records.rs:
