/root/repo/target/debug/examples/streaming_ingestion-fce3eca768b4a76e.d: examples/streaming_ingestion.rs Cargo.toml

/root/repo/target/debug/examples/libstreaming_ingestion-fce3eca768b4a76e.rmeta: examples/streaming_ingestion.rs Cargo.toml

examples/streaming_ingestion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
