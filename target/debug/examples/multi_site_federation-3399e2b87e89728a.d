/root/repo/target/debug/examples/multi_site_federation-3399e2b87e89728a.d: examples/multi_site_federation.rs

/root/repo/target/debug/examples/multi_site_federation-3399e2b87e89728a: examples/multi_site_federation.rs

examples/multi_site_federation.rs:
