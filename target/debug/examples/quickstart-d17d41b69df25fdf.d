/root/repo/target/debug/examples/quickstart-d17d41b69df25fdf.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-d17d41b69df25fdf.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
