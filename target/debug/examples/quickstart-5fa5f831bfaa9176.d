/root/repo/target/debug/examples/quickstart-5fa5f831bfaa9176.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-5fa5f831bfaa9176: examples/quickstart.rs

examples/quickstart.rs:
