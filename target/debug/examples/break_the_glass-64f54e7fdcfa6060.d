/root/repo/target/debug/examples/break_the_glass-64f54e7fdcfa6060.d: examples/break_the_glass.rs

/root/repo/target/debug/examples/break_the_glass-64f54e7fdcfa6060: examples/break_the_glass.rs

examples/break_the_glass.rs:
