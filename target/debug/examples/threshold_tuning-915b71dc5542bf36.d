/root/repo/target/debug/examples/threshold_tuning-915b71dc5542bf36.d: examples/threshold_tuning.rs

/root/repo/target/debug/examples/threshold_tuning-915b71dc5542bf36: examples/threshold_tuning.rs

examples/threshold_tuning.rs:
