/root/repo/target/debug/examples/break_the_glass-363004ea8dd818e4.d: examples/break_the_glass.rs

/root/repo/target/debug/examples/break_the_glass-363004ea8dd818e4: examples/break_the_glass.rs

examples/break_the_glass.rs:
