/root/repo/target/debug/deps/prima_hdb-dfb4210ed68f0175.d: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs

/root/repo/target/debug/deps/libprima_hdb-dfb4210ed68f0175.rlib: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs

/root/repo/target/debug/deps/libprima_hdb-dfb4210ed68f0175.rmeta: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs

crates/hdb/src/lib.rs:
crates/hdb/src/auditing.rs:
crates/hdb/src/clinical.rs:
crates/hdb/src/consent.rs:
crates/hdb/src/control.rs:
crates/hdb/src/enforcement.rs:
crates/hdb/src/error.rs:
crates/hdb/src/request.rs:
