/root/repo/target/debug/deps/closed_loop-c05ff69e69fbe431.d: tests/closed_loop.rs

/root/repo/target/debug/deps/closed_loop-c05ff69e69fbe431: tests/closed_loop.rs

tests/closed_loop.rs:
