/root/repo/target/debug/deps/prima_query-abde018db7dbb972.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs

/root/repo/target/debug/deps/libprima_query-abde018db7dbb972.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs

/root/repo/target/debug/deps/libprima_query-abde018db7dbb972.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/error.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
crates/query/src/result.rs:
