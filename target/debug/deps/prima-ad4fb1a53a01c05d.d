/root/repo/target/debug/deps/prima-ad4fb1a53a01c05d.d: src/main.rs

/root/repo/target/debug/deps/prima-ad4fb1a53a01c05d: src/main.rs

src/main.rs:
