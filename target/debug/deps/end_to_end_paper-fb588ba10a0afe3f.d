/root/repo/target/debug/deps/end_to_end_paper-fb588ba10a0afe3f.d: tests/end_to_end_paper.rs

/root/repo/target/debug/deps/end_to_end_paper-fb588ba10a0afe3f: tests/end_to_end_paper.rs

tests/end_to_end_paper.rs:
