/root/repo/target/debug/deps/exp_fig5_hdb_overhead-61abf9ec9aaf26f8.d: crates/bench/src/bin/exp_fig5_hdb_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig5_hdb_overhead-61abf9ec9aaf26f8.rmeta: crates/bench/src/bin/exp_fig5_hdb_overhead.rs Cargo.toml

crates/bench/src/bin/exp_fig5_hdb_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
