/root/repo/target/debug/deps/prima_workload-289055b8fc2c33e5.d: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs Cargo.toml

/root/repo/target/debug/deps/libprima_workload-289055b8fc2c33e5.rmeta: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs Cargo.toml

crates/workload/src/lib.rs:
crates/workload/src/fixtures.rs:
crates/workload/src/scenario.rs:
crates/workload/src/sim.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
