/root/repo/target/debug/deps/exp_fig2_trajectory-f29a7d3618eab9be.d: crates/bench/src/bin/exp_fig2_trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig2_trajectory-f29a7d3618eab9be.rmeta: crates/bench/src/bin/exp_fig2_trajectory.rs Cargo.toml

crates/bench/src/bin/exp_fig2_trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
