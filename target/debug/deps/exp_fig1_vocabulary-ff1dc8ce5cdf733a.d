/root/repo/target/debug/deps/exp_fig1_vocabulary-ff1dc8ce5cdf733a.d: crates/bench/src/bin/exp_fig1_vocabulary.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig1_vocabulary-ff1dc8ce5cdf733a.rmeta: crates/bench/src/bin/exp_fig1_vocabulary.rs Cargo.toml

crates/bench/src/bin/exp_fig1_vocabulary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
