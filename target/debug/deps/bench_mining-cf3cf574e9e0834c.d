/root/repo/target/debug/deps/bench_mining-cf3cf574e9e0834c.d: crates/bench/benches/bench_mining.rs Cargo.toml

/root/repo/target/debug/deps/libbench_mining-cf3cf574e9e0834c.rmeta: crates/bench/benches/bench_mining.rs Cargo.toml

crates/bench/benches/bench_mining.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
