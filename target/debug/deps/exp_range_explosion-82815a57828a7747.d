/root/repo/target/debug/deps/exp_range_explosion-82815a57828a7747.d: crates/bench/src/bin/exp_range_explosion.rs Cargo.toml

/root/repo/target/debug/deps/libexp_range_explosion-82815a57828a7747.rmeta: crates/bench/src/bin/exp_range_explosion.rs Cargo.toml

crates/bench/src/bin/exp_range_explosion.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
