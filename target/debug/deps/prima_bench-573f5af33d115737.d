/root/repo/target/debug/deps/prima_bench-573f5af33d115737.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/prima_bench-573f5af33d115737: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
