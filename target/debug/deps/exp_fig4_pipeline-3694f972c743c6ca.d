/root/repo/target/debug/deps/exp_fig4_pipeline-3694f972c743c6ca.d: crates/bench/src/bin/exp_fig4_pipeline.rs

/root/repo/target/debug/deps/exp_fig4_pipeline-3694f972c743c6ca: crates/bench/src/bin/exp_fig4_pipeline.rs

crates/bench/src/bin/exp_fig4_pipeline.rs:
