/root/repo/target/debug/deps/prima_core-e43cf1becf544997.d: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs Cargo.toml

/root/repo/target/debug/deps/libprima_core-e43cf1becf544997.rmeta: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/clinic.rs:
crates/core/src/snapshot.rs:
crates/core/src/system.rs:
crates/core/src/trajectory.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
