/root/repo/target/debug/deps/prima_model-f417ff3fe52e90d6.d: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

/root/repo/target/debug/deps/libprima_model-f417ff3fe52e90d6.rlib: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

/root/repo/target/debug/deps/libprima_model-f417ff3fe52e90d6.rmeta: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

crates/model/src/lib.rs:
crates/model/src/coverage.rs:
crates/model/src/dsl.rs:
crates/model/src/error.rs:
crates/model/src/ground.rs:
crates/model/src/lint.rs:
crates/model/src/policy.rs:
crates/model/src/range.rs:
crates/model/src/rule.rs:
crates/model/src/samples.rs:
crates/model/src/simplify.rs:
crates/model/src/term.rs:
