/root/repo/target/debug/deps/prima_bench-5fdab101e5f89386.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libprima_bench-5fdab101e5f89386.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libprima_bench-5fdab101e5f89386.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
