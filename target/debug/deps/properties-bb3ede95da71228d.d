/root/repo/target/debug/deps/properties-bb3ede95da71228d.d: crates/hier/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-bb3ede95da71228d.rmeta: crates/hier/tests/properties.rs Cargo.toml

crates/hier/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
