/root/repo/target/debug/deps/exp_range_explosion-2a4f7197fdce2d9f.d: crates/bench/src/bin/exp_range_explosion.rs

/root/repo/target/debug/deps/exp_range_explosion-2a4f7197fdce2d9f: crates/bench/src/bin/exp_range_explosion.rs

crates/bench/src/bin/exp_range_explosion.rs:
