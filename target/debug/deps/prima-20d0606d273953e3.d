/root/repo/target/debug/deps/prima-20d0606d273953e3.d: src/main.rs

/root/repo/target/debug/deps/prima-20d0606d273953e3: src/main.rs

src/main.rs:
