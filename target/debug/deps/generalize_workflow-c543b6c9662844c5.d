/root/repo/target/debug/deps/generalize_workflow-c543b6c9662844c5.d: tests/generalize_workflow.rs

/root/repo/target/debug/deps/generalize_workflow-c543b6c9662844c5: tests/generalize_workflow.rs

tests/generalize_workflow.rs:
