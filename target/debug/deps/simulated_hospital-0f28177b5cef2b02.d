/root/repo/target/debug/deps/simulated_hospital-0f28177b5cef2b02.d: tests/simulated_hospital.rs

/root/repo/target/debug/deps/simulated_hospital-0f28177b5cef2b02: tests/simulated_hospital.rs

tests/simulated_hospital.rs:
