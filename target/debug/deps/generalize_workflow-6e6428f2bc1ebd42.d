/root/repo/target/debug/deps/generalize_workflow-6e6428f2bc1ebd42.d: tests/generalize_workflow.rs

/root/repo/target/debug/deps/generalize_workflow-6e6428f2bc1ebd42: tests/generalize_workflow.rs

tests/generalize_workflow.rs:
