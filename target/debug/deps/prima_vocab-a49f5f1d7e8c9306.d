/root/repo/target/debug/deps/prima_vocab-a49f5f1d7e8c9306.d: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs Cargo.toml

/root/repo/target/debug/deps/libprima_vocab-a49f5f1d7e8c9306.rmeta: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs Cargo.toml

crates/vocab/src/lib.rs:
crates/vocab/src/concept.rs:
crates/vocab/src/error.rs:
crates/vocab/src/parse.rs:
crates/vocab/src/samples.rs:
crates/vocab/src/synthetic.rs:
crates/vocab/src/taxonomy.rs:
crates/vocab/src/vocabulary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
