/root/repo/target/debug/deps/prima_core-83cc048e27af3107.d: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/debug/deps/prima_core-83cc048e27af3107: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

crates/core/src/lib.rs:
crates/core/src/clinic.rs:
crates/core/src/snapshot.rs:
crates/core/src/system.rs:
crates/core/src/trajectory.rs:
