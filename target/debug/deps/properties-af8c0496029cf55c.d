/root/repo/target/debug/deps/properties-af8c0496029cf55c.d: crates/query/tests/properties.rs

/root/repo/target/debug/deps/properties-af8c0496029cf55c: crates/query/tests/properties.rs

crates/query/tests/properties.rs:
