/root/repo/target/debug/deps/exp_table1_usecase-b53985bb36a84b51.d: crates/bench/src/bin/exp_table1_usecase.rs Cargo.toml

/root/repo/target/debug/deps/libexp_table1_usecase-b53985bb36a84b51.rmeta: crates/bench/src/bin/exp_table1_usecase.rs Cargo.toml

crates/bench/src/bin/exp_table1_usecase.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
