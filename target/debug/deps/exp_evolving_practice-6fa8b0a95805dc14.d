/root/repo/target/debug/deps/exp_evolving_practice-6fa8b0a95805dc14.d: crates/bench/src/bin/exp_evolving_practice.rs Cargo.toml

/root/repo/target/debug/deps/libexp_evolving_practice-6fa8b0a95805dc14.rmeta: crates/bench/src/bin/exp_evolving_practice.rs Cargo.toml

crates/bench/src/bin/exp_evolving_practice.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
