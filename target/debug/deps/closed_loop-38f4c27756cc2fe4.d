/root/repo/target/debug/deps/closed_loop-38f4c27756cc2fe4.d: tests/closed_loop.rs

/root/repo/target/debug/deps/closed_loop-38f4c27756cc2fe4: tests/closed_loop.rs

tests/closed_loop.rs:
