/root/repo/target/debug/deps/prima-3a97e894fe42a813.d: src/lib.rs

/root/repo/target/debug/deps/prima-3a97e894fe42a813: src/lib.rs

src/lib.rs:
