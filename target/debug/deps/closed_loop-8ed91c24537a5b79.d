/root/repo/target/debug/deps/closed_loop-8ed91c24537a5b79.d: tests/closed_loop.rs Cargo.toml

/root/repo/target/debug/deps/libclosed_loop-8ed91c24537a5b79.rmeta: tests/closed_loop.rs Cargo.toml

tests/closed_loop.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
