/root/repo/target/debug/deps/prima_stream-73ffbd89e61e060e.d: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libprima_stream-73ffbd89e61e060e.rmeta: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs Cargo.toml

crates/stream/src/lib.rs:
crates/stream/src/cache.rs:
crates/stream/src/config.rs:
crates/stream/src/counters.rs:
crates/stream/src/engine.rs:
crates/stream/src/fault.rs:
crates/stream/src/shard.rs:
crates/stream/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
