/root/repo/target/debug/deps/exp_fig4_pipeline-d571a5fdddfb0553.d: crates/bench/src/bin/exp_fig4_pipeline.rs

/root/repo/target/debug/deps/exp_fig4_pipeline-d571a5fdddfb0553: crates/bench/src/bin/exp_fig4_pipeline.rs

crates/bench/src/bin/exp_fig4_pipeline.rs:
