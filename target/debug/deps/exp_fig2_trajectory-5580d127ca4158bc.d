/root/repo/target/debug/deps/exp_fig2_trajectory-5580d127ca4158bc.d: crates/bench/src/bin/exp_fig2_trajectory.rs

/root/repo/target/debug/deps/exp_fig2_trajectory-5580d127ca4158bc: crates/bench/src/bin/exp_fig2_trajectory.rs

crates/bench/src/bin/exp_fig2_trajectory.rs:
