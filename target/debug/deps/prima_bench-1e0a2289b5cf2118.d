/root/repo/target/debug/deps/prima_bench-1e0a2289b5cf2118.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima_bench-1e0a2289b5cf2118.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
