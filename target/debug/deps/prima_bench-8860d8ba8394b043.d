/root/repo/target/debug/deps/prima_bench-8860d8ba8394b043.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libprima_bench-8860d8ba8394b043.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libprima_bench-8860d8ba8394b043.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
