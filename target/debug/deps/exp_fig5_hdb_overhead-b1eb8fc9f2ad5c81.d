/root/repo/target/debug/deps/exp_fig5_hdb_overhead-b1eb8fc9f2ad5c81.d: crates/bench/src/bin/exp_fig5_hdb_overhead.rs

/root/repo/target/debug/deps/exp_fig5_hdb_overhead-b1eb8fc9f2ad5c81: crates/bench/src/bin/exp_fig5_hdb_overhead.rs

crates/bench/src/bin/exp_fig5_hdb_overhead.rs:
