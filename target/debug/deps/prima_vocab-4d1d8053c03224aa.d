/root/repo/target/debug/deps/prima_vocab-4d1d8053c03224aa.d: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

/root/repo/target/debug/deps/libprima_vocab-4d1d8053c03224aa.rlib: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

/root/repo/target/debug/deps/libprima_vocab-4d1d8053c03224aa.rmeta: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

crates/vocab/src/lib.rs:
crates/vocab/src/concept.rs:
crates/vocab/src/error.rs:
crates/vocab/src/parse.rs:
crates/vocab/src/samples.rs:
crates/vocab/src/synthetic.rs:
crates/vocab/src/taxonomy.rs:
crates/vocab/src/vocabulary.rs:
