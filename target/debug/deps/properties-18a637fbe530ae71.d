/root/repo/target/debug/deps/properties-18a637fbe530ae71.d: crates/mining/tests/properties.rs

/root/repo/target/debug/deps/properties-18a637fbe530ae71: crates/mining/tests/properties.rs

crates/mining/tests/properties.rs:
