/root/repo/target/debug/deps/bench_pipeline-315605593d553bce.d: crates/bench/benches/bench_pipeline.rs Cargo.toml

/root/repo/target/debug/deps/libbench_pipeline-315605593d553bce.rmeta: crates/bench/benches/bench_pipeline.rs Cargo.toml

crates/bench/benches/bench_pipeline.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
