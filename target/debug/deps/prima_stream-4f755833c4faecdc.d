/root/repo/target/debug/deps/prima_stream-4f755833c4faecdc.d: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs Cargo.toml

/root/repo/target/debug/deps/libprima_stream-4f755833c4faecdc.rmeta: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs Cargo.toml

crates/stream/src/lib.rs:
crates/stream/src/cache.rs:
crates/stream/src/config.rs:
crates/stream/src/counters.rs:
crates/stream/src/engine.rs:
crates/stream/src/fault.rs:
crates/stream/src/shard.rs:
crates/stream/src/window.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
