/root/repo/target/debug/deps/exp_fig2_trajectory-1d7dd36ac37dc33e.d: crates/bench/src/bin/exp_fig2_trajectory.rs

/root/repo/target/debug/deps/exp_fig2_trajectory-1d7dd36ac37dc33e: crates/bench/src/bin/exp_fig2_trajectory.rs

crates/bench/src/bin/exp_fig2_trajectory.rs:
