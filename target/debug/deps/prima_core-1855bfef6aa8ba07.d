/root/repo/target/debug/deps/prima_core-1855bfef6aa8ba07.d: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/debug/deps/libprima_core-1855bfef6aa8ba07.rlib: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/debug/deps/libprima_core-1855bfef6aa8ba07.rmeta: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

crates/core/src/lib.rs:
crates/core/src/clinic.rs:
crates/core/src/snapshot.rs:
crates/core/src/system.rs:
crates/core/src/trajectory.rs:
