/root/repo/target/debug/deps/prima-95f8a3b0859a5897.d: src/main.rs

/root/repo/target/debug/deps/prima-95f8a3b0859a5897: src/main.rs

src/main.rs:
