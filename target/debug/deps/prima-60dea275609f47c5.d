/root/repo/target/debug/deps/prima-60dea275609f47c5.d: src/lib.rs

/root/repo/target/debug/deps/libprima-60dea275609f47c5.rlib: src/lib.rs

/root/repo/target/debug/deps/libprima-60dea275609f47c5.rmeta: src/lib.rs

src/lib.rs:
