/root/repo/target/debug/deps/exp_table1_usecase-25c4483703c634e7.d: crates/bench/src/bin/exp_table1_usecase.rs

/root/repo/target/debug/deps/exp_table1_usecase-25c4483703c634e7: crates/bench/src/bin/exp_table1_usecase.rs

crates/bench/src/bin/exp_table1_usecase.rs:
