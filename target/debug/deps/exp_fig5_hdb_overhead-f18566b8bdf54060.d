/root/repo/target/debug/deps/exp_fig5_hdb_overhead-f18566b8bdf54060.d: crates/bench/src/bin/exp_fig5_hdb_overhead.rs

/root/repo/target/debug/deps/exp_fig5_hdb_overhead-f18566b8bdf54060: crates/bench/src/bin/exp_fig5_hdb_overhead.rs

crates/bench/src/bin/exp_fig5_hdb_overhead.rs:
