/root/repo/target/debug/deps/exp_fig3_coverage-c626d95805fcfd00.d: crates/bench/src/bin/exp_fig3_coverage.rs

/root/repo/target/debug/deps/exp_fig3_coverage-c626d95805fcfd00: crates/bench/src/bin/exp_fig3_coverage.rs

crates/bench/src/bin/exp_fig3_coverage.rs:
