/root/repo/target/debug/deps/exp_fig3_coverage-ebad626cdc3adcc4.d: crates/bench/src/bin/exp_fig3_coverage.rs

/root/repo/target/debug/deps/exp_fig3_coverage-ebad626cdc3adcc4: crates/bench/src/bin/exp_fig3_coverage.rs

crates/bench/src/bin/exp_fig3_coverage.rs:
