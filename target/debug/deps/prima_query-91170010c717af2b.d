/root/repo/target/debug/deps/prima_query-91170010c717af2b.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs

/root/repo/target/debug/deps/prima_query-91170010c717af2b: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/error.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
crates/query/src/result.rs:
