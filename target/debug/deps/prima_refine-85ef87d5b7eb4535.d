/root/repo/target/debug/deps/prima_refine-85ef87d5b7eb4535.d: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs Cargo.toml

/root/repo/target/debug/deps/libprima_refine-85ef87d5b7eb4535.rmeta: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs Cargo.toml

crates/refine/src/lib.rs:
crates/refine/src/extract.rs:
crates/refine/src/filter.rs:
crates/refine/src/generalize.rs:
crates/refine/src/pipeline.rs:
crates/refine/src/prune.rs:
crates/refine/src/review.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
