/root/repo/target/debug/deps/properties-15509c13e92054e6.d: crates/query/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-15509c13e92054e6.rmeta: crates/query/tests/properties.rs Cargo.toml

crates/query/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
