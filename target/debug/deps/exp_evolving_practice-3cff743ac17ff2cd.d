/root/repo/target/debug/deps/exp_evolving_practice-3cff743ac17ff2cd.d: crates/bench/src/bin/exp_evolving_practice.rs

/root/repo/target/debug/deps/exp_evolving_practice-3cff743ac17ff2cd: crates/bench/src/bin/exp_evolving_practice.rs

crates/bench/src/bin/exp_evolving_practice.rs:
