/root/repo/target/debug/deps/exp_miner_comparison-8a837c026ba02cb1.d: crates/bench/src/bin/exp_miner_comparison.rs

/root/repo/target/debug/deps/exp_miner_comparison-8a837c026ba02cb1: crates/bench/src/bin/exp_miner_comparison.rs

crates/bench/src/bin/exp_miner_comparison.rs:
