/root/repo/target/debug/deps/bench_stream-8ed857ec5f57a4d7.d: crates/bench/benches/bench_stream.rs Cargo.toml

/root/repo/target/debug/deps/libbench_stream-8ed857ec5f57a4d7.rmeta: crates/bench/benches/bench_stream.rs Cargo.toml

crates/bench/benches/bench_stream.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
