/root/repo/target/debug/deps/exp_range_explosion-d285d57ca51dbe59.d: crates/bench/src/bin/exp_range_explosion.rs

/root/repo/target/debug/deps/exp_range_explosion-d285d57ca51dbe59: crates/bench/src/bin/exp_range_explosion.rs

crates/bench/src/bin/exp_range_explosion.rs:
