/root/repo/target/debug/deps/prima-ee3a86364cc1fa10.d: src/lib.rs

/root/repo/target/debug/deps/libprima-ee3a86364cc1fa10.rlib: src/lib.rs

/root/repo/target/debug/deps/libprima-ee3a86364cc1fa10.rmeta: src/lib.rs

src/lib.rs:
