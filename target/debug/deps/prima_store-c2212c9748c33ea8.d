/root/repo/target/debug/deps/prima_store-c2212c9748c33ea8.d: crates/store/src/lib.rs crates/store/src/catalog.rs crates/store/src/error.rs crates/store/src/index.rs crates/store/src/persist.rs crates/store/src/predicate.rs crates/store/src/row.rs crates/store/src/schema.rs crates/store/src/table.rs crates/store/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libprima_store-c2212c9748c33ea8.rmeta: crates/store/src/lib.rs crates/store/src/catalog.rs crates/store/src/error.rs crates/store/src/index.rs crates/store/src/persist.rs crates/store/src/predicate.rs crates/store/src/row.rs crates/store/src/schema.rs crates/store/src/table.rs crates/store/src/value.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/catalog.rs:
crates/store/src/error.rs:
crates/store/src/index.rs:
crates/store/src/persist.rs:
crates/store/src/predicate.rs:
crates/store/src/row.rs:
crates/store/src/schema.rs:
crates/store/src/table.rs:
crates/store/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
