/root/repo/target/debug/deps/exp_miner_comparison-5bc5c1677a2c0d2c.d: crates/bench/src/bin/exp_miner_comparison.rs

/root/repo/target/debug/deps/exp_miner_comparison-5bc5c1677a2c0d2c: crates/bench/src/bin/exp_miner_comparison.rs

crates/bench/src/bin/exp_miner_comparison.rs:
