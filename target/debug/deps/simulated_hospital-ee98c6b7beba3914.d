/root/repo/target/debug/deps/simulated_hospital-ee98c6b7beba3914.d: tests/simulated_hospital.rs

/root/repo/target/debug/deps/simulated_hospital-ee98c6b7beba3914: tests/simulated_hospital.rs

tests/simulated_hospital.rs:
