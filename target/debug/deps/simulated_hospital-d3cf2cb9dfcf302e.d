/root/repo/target/debug/deps/simulated_hospital-d3cf2cb9dfcf302e.d: tests/simulated_hospital.rs Cargo.toml

/root/repo/target/debug/deps/libsimulated_hospital-d3cf2cb9dfcf302e.rmeta: tests/simulated_hospital.rs Cargo.toml

tests/simulated_hospital.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
