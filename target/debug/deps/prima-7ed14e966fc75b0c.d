/root/repo/target/debug/deps/prima-7ed14e966fc75b0c.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libprima-7ed14e966fc75b0c.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
