/root/repo/target/debug/deps/properties-ce1134472f6cacf8.d: crates/stream/tests/properties.rs

/root/repo/target/debug/deps/properties-ce1134472f6cacf8: crates/stream/tests/properties.rs

crates/stream/tests/properties.rs:
