/root/repo/target/debug/deps/exp_sensitivity-a6a95be9d0a31459.d: crates/bench/src/bin/exp_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libexp_sensitivity-a6a95be9d0a31459.rmeta: crates/bench/src/bin/exp_sensitivity.rs Cargo.toml

crates/bench/src/bin/exp_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
