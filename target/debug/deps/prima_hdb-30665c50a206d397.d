/root/repo/target/debug/deps/prima_hdb-30665c50a206d397.d: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs

/root/repo/target/debug/deps/prima_hdb-30665c50a206d397: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs

crates/hdb/src/lib.rs:
crates/hdb/src/auditing.rs:
crates/hdb/src/clinical.rs:
crates/hdb/src/consent.rs:
crates/hdb/src/control.rs:
crates/hdb/src/enforcement.rs:
crates/hdb/src/error.rs:
crates/hdb/src/request.rs:
