/root/repo/target/debug/deps/prima_core-1372c1040bcc3549.d: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/debug/deps/libprima_core-1372c1040bcc3549.rlib: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/debug/deps/libprima_core-1372c1040bcc3549.rmeta: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

crates/core/src/lib.rs:
crates/core/src/clinic.rs:
crates/core/src/snapshot.rs:
crates/core/src/system.rs:
crates/core/src/trajectory.rs:
