/root/repo/target/debug/deps/prima_mining-80ff97c1826f5e50.d: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

/root/repo/target/debug/deps/libprima_mining-80ff97c1826f5e50.rlib: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

/root/repo/target/debug/deps/libprima_mining-80ff97c1826f5e50.rmeta: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

crates/mining/src/lib.rs:
crates/mining/src/apriori.rs:
crates/mining/src/error.rs:
crates/mining/src/pattern.rs:
crates/mining/src/sql_miner.rs:
