/root/repo/target/debug/deps/properties-7307c327f06a3a70.d: crates/stream/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-7307c327f06a3a70.rmeta: crates/stream/tests/properties.rs Cargo.toml

crates/stream/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
