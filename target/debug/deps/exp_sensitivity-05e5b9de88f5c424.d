/root/repo/target/debug/deps/exp_sensitivity-05e5b9de88f5c424.d: crates/bench/src/bin/exp_sensitivity.rs

/root/repo/target/debug/deps/exp_sensitivity-05e5b9de88f5c424: crates/bench/src/bin/exp_sensitivity.rs

crates/bench/src/bin/exp_sensitivity.rs:
