/root/repo/target/debug/deps/prima_workload-c962b02f7bd924dc.d: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

/root/repo/target/debug/deps/libprima_workload-c962b02f7bd924dc.rlib: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

/root/repo/target/debug/deps/libprima_workload-c962b02f7bd924dc.rmeta: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

crates/workload/src/lib.rs:
crates/workload/src/fixtures.rs:
crates/workload/src/scenario.rs:
crates/workload/src/sim.rs:
