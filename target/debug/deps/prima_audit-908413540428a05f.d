/root/repo/target/debug/deps/prima_audit-908413540428a05f.d: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

/root/repo/target/debug/deps/prima_audit-908413540428a05f: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

crates/audit/src/lib.rs:
crates/audit/src/classify.rs:
crates/audit/src/entry.rs:
crates/audit/src/export.rs:
crates/audit/src/federation.rs:
crates/audit/src/retention.rs:
crates/audit/src/schema.rs:
crates/audit/src/stats.rs:
crates/audit/src/store.rs:
