/root/repo/target/debug/deps/prima-58902fad182c09be.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima-58902fad182c09be.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
