/root/repo/target/debug/deps/prima_bench-2fc4aa2ef5f2109e.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/prima_bench-2fc4aa2ef5f2109e: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
