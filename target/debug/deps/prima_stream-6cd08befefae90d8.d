/root/repo/target/debug/deps/prima_stream-6cd08befefae90d8.d: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

/root/repo/target/debug/deps/prima_stream-6cd08befefae90d8: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

crates/stream/src/lib.rs:
crates/stream/src/cache.rs:
crates/stream/src/config.rs:
crates/stream/src/counters.rs:
crates/stream/src/engine.rs:
crates/stream/src/fault.rs:
crates/stream/src/shard.rs:
crates/stream/src/window.rs:
