/root/repo/target/debug/deps/prima_query-8a767a767c459249.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs Cargo.toml

/root/repo/target/debug/deps/libprima_query-8a767a767c459249.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs Cargo.toml

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/error.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
crates/query/src/result.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
