/root/repo/target/debug/deps/bench_hier-05174d9391651cd5.d: crates/bench/benches/bench_hier.rs Cargo.toml

/root/repo/target/debug/deps/libbench_hier-05174d9391651cd5.rmeta: crates/bench/benches/bench_hier.rs Cargo.toml

crates/bench/benches/bench_hier.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
