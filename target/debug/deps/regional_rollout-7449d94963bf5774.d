/root/repo/target/debug/deps/regional_rollout-7449d94963bf5774.d: tests/regional_rollout.rs

/root/repo/target/debug/deps/regional_rollout-7449d94963bf5774: tests/regional_rollout.rs

tests/regional_rollout.rs:
