/root/repo/target/debug/deps/prima_vocab-15b0ed1a46ae7049.d: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

/root/repo/target/debug/deps/prima_vocab-15b0ed1a46ae7049: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

crates/vocab/src/lib.rs:
crates/vocab/src/concept.rs:
crates/vocab/src/error.rs:
crates/vocab/src/parse.rs:
crates/vocab/src/samples.rs:
crates/vocab/src/synthetic.rs:
crates/vocab/src/taxonomy.rs:
crates/vocab/src/vocabulary.rs:
