/root/repo/target/debug/deps/exp_fig1_vocabulary-46255134961cee85.d: crates/bench/src/bin/exp_fig1_vocabulary.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig1_vocabulary-46255134961cee85.rmeta: crates/bench/src/bin/exp_fig1_vocabulary.rs Cargo.toml

crates/bench/src/bin/exp_fig1_vocabulary.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
