/root/repo/target/debug/deps/properties-fe0f0ad21a0d377b.d: crates/hier/tests/properties.rs

/root/repo/target/debug/deps/properties-fe0f0ad21a0d377b: crates/hier/tests/properties.rs

crates/hier/tests/properties.rs:
