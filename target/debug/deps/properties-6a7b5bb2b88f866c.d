/root/repo/target/debug/deps/properties-6a7b5bb2b88f866c.d: crates/mining/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-6a7b5bb2b88f866c.rmeta: crates/mining/tests/properties.rs Cargo.toml

crates/mining/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
