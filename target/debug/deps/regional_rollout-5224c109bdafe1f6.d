/root/repo/target/debug/deps/regional_rollout-5224c109bdafe1f6.d: tests/regional_rollout.rs

/root/repo/target/debug/deps/regional_rollout-5224c109bdafe1f6: tests/regional_rollout.rs

tests/regional_rollout.rs:
