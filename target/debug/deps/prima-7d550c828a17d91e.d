/root/repo/target/debug/deps/prima-7d550c828a17d91e.d: src/lib.rs

/root/repo/target/debug/deps/prima-7d550c828a17d91e: src/lib.rs

src/lib.rs:
