/root/repo/target/debug/deps/bench_refinement-60598f7e856c8d50.d: crates/bench/benches/bench_refinement.rs Cargo.toml

/root/repo/target/debug/deps/libbench_refinement-60598f7e856c8d50.rmeta: crates/bench/benches/bench_refinement.rs Cargo.toml

crates/bench/benches/bench_refinement.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
