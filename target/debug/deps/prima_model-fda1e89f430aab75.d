/root/repo/target/debug/deps/prima_model-fda1e89f430aab75.d: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs Cargo.toml

/root/repo/target/debug/deps/libprima_model-fda1e89f430aab75.rmeta: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs Cargo.toml

crates/model/src/lib.rs:
crates/model/src/coverage.rs:
crates/model/src/dsl.rs:
crates/model/src/error.rs:
crates/model/src/ground.rs:
crates/model/src/lint.rs:
crates/model/src/policy.rs:
crates/model/src/range.rs:
crates/model/src/rule.rs:
crates/model/src/samples.rs:
crates/model/src/simplify.rs:
crates/model/src/term.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
