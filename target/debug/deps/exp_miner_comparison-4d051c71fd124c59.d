/root/repo/target/debug/deps/exp_miner_comparison-4d051c71fd124c59.d: crates/bench/src/bin/exp_miner_comparison.rs Cargo.toml

/root/repo/target/debug/deps/libexp_miner_comparison-4d051c71fd124c59.rmeta: crates/bench/src/bin/exp_miner_comparison.rs Cargo.toml

crates/bench/src/bin/exp_miner_comparison.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
