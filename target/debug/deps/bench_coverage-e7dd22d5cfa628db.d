/root/repo/target/debug/deps/bench_coverage-e7dd22d5cfa628db.d: crates/bench/benches/bench_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libbench_coverage-e7dd22d5cfa628db.rmeta: crates/bench/benches/bench_coverage.rs Cargo.toml

crates/bench/benches/bench_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
