/root/repo/target/debug/deps/exp_evolving_practice-862b802b57cd026c.d: crates/bench/src/bin/exp_evolving_practice.rs

/root/repo/target/debug/deps/exp_evolving_practice-862b802b57cd026c: crates/bench/src/bin/exp_evolving_practice.rs

crates/bench/src/bin/exp_evolving_practice.rs:
