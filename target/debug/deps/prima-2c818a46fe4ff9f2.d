/root/repo/target/debug/deps/prima-2c818a46fe4ff9f2.d: src/main.rs Cargo.toml

/root/repo/target/debug/deps/libprima-2c818a46fe4ff9f2.rmeta: src/main.rs Cargo.toml

src/main.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
