/root/repo/target/debug/deps/prima-31a3d0389029da85.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libprima-31a3d0389029da85.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
