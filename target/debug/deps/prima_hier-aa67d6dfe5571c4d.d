/root/repo/target/debug/deps/prima_hier-aa67d6dfe5571c4d.d: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs Cargo.toml

/root/repo/target/debug/deps/libprima_hier-aa67d6dfe5571c4d.rmeta: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs Cargo.toml

crates/hier/src/lib.rs:
crates/hier/src/category.rs:
crates/hier/src/control.rs:
crates/hier/src/doc.rs:
crates/hier/src/enforce.rs:
crates/hier/src/path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
