/root/repo/target/debug/deps/properties-84f11bcdc1c749b1.d: crates/model/tests/properties.rs

/root/repo/target/debug/deps/properties-84f11bcdc1c749b1: crates/model/tests/properties.rs

crates/model/tests/properties.rs:
