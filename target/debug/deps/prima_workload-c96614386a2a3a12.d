/root/repo/target/debug/deps/prima_workload-c96614386a2a3a12.d: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

/root/repo/target/debug/deps/prima_workload-c96614386a2a3a12: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

crates/workload/src/lib.rs:
crates/workload/src/fixtures.rs:
crates/workload/src/scenario.rs:
crates/workload/src/sim.rs:
