/root/repo/target/debug/deps/prima_hdb-9fefa25a5849df1b.d: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs Cargo.toml

/root/repo/target/debug/deps/libprima_hdb-9fefa25a5849df1b.rmeta: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs Cargo.toml

crates/hdb/src/lib.rs:
crates/hdb/src/auditing.rs:
crates/hdb/src/clinical.rs:
crates/hdb/src/consent.rs:
crates/hdb/src/control.rs:
crates/hdb/src/enforcement.rs:
crates/hdb/src/error.rs:
crates/hdb/src/request.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
