/root/repo/target/debug/deps/prima_hier-04616eeef3b1f3fb.d: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs Cargo.toml

/root/repo/target/debug/deps/libprima_hier-04616eeef3b1f3fb.rmeta: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs Cargo.toml

crates/hier/src/lib.rs:
crates/hier/src/category.rs:
crates/hier/src/control.rs:
crates/hier/src/doc.rs:
crates/hier/src/enforce.rs:
crates/hier/src/path.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
