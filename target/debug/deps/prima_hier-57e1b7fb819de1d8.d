/root/repo/target/debug/deps/prima_hier-57e1b7fb819de1d8.d: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

/root/repo/target/debug/deps/prima_hier-57e1b7fb819de1d8: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

crates/hier/src/lib.rs:
crates/hier/src/category.rs:
crates/hier/src/control.rs:
crates/hier/src/doc.rs:
crates/hier/src/enforce.rs:
crates/hier/src/path.rs:
