/root/repo/target/debug/deps/exp_table1_usecase-89a019db42817b41.d: crates/bench/src/bin/exp_table1_usecase.rs

/root/repo/target/debug/deps/exp_table1_usecase-89a019db42817b41: crates/bench/src/bin/exp_table1_usecase.rs

crates/bench/src/bin/exp_table1_usecase.rs:
