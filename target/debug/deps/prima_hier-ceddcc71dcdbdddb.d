/root/repo/target/debug/deps/prima_hier-ceddcc71dcdbdddb.d: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

/root/repo/target/debug/deps/libprima_hier-ceddcc71dcdbdddb.rlib: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

/root/repo/target/debug/deps/libprima_hier-ceddcc71dcdbdddb.rmeta: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

crates/hier/src/lib.rs:
crates/hier/src/category.rs:
crates/hier/src/control.rs:
crates/hier/src/doc.rs:
crates/hier/src/enforce.rs:
crates/hier/src/path.rs:
