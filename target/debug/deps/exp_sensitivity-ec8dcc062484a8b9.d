/root/repo/target/debug/deps/exp_sensitivity-ec8dcc062484a8b9.d: crates/bench/src/bin/exp_sensitivity.rs Cargo.toml

/root/repo/target/debug/deps/libexp_sensitivity-ec8dcc062484a8b9.rmeta: crates/bench/src/bin/exp_sensitivity.rs Cargo.toml

crates/bench/src/bin/exp_sensitivity.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
