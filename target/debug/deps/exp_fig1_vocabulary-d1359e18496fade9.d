/root/repo/target/debug/deps/exp_fig1_vocabulary-d1359e18496fade9.d: crates/bench/src/bin/exp_fig1_vocabulary.rs

/root/repo/target/debug/deps/exp_fig1_vocabulary-d1359e18496fade9: crates/bench/src/bin/exp_fig1_vocabulary.rs

crates/bench/src/bin/exp_fig1_vocabulary.rs:
