/root/repo/target/debug/deps/bench_hdb-70627a324fd6cc08.d: crates/bench/benches/bench_hdb.rs Cargo.toml

/root/repo/target/debug/deps/libbench_hdb-70627a324fd6cc08.rmeta: crates/bench/benches/bench_hdb.rs Cargo.toml

crates/bench/benches/bench_hdb.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
