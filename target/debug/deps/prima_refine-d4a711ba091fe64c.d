/root/repo/target/debug/deps/prima_refine-d4a711ba091fe64c.d: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

/root/repo/target/debug/deps/prima_refine-d4a711ba091fe64c: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

crates/refine/src/lib.rs:
crates/refine/src/extract.rs:
crates/refine/src/filter.rs:
crates/refine/src/generalize.rs:
crates/refine/src/pipeline.rs:
crates/refine/src/prune.rs:
crates/refine/src/review.rs:
