/root/repo/target/debug/deps/prima_mining-693a10c3ba9cdfe3.d: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

/root/repo/target/debug/deps/prima_mining-693a10c3ba9cdfe3: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

crates/mining/src/lib.rs:
crates/mining/src/apriori.rs:
crates/mining/src/error.rs:
crates/mining/src/pattern.rs:
crates/mining/src/sql_miner.rs:
