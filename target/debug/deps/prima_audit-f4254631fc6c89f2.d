/root/repo/target/debug/deps/prima_audit-f4254631fc6c89f2.d: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

/root/repo/target/debug/deps/libprima_audit-f4254631fc6c89f2.rlib: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

/root/repo/target/debug/deps/libprima_audit-f4254631fc6c89f2.rmeta: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

crates/audit/src/lib.rs:
crates/audit/src/classify.rs:
crates/audit/src/entry.rs:
crates/audit/src/export.rs:
crates/audit/src/federation.rs:
crates/audit/src/retention.rs:
crates/audit/src/schema.rs:
crates/audit/src/stats.rs:
crates/audit/src/store.rs:
