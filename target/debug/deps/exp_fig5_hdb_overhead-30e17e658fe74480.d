/root/repo/target/debug/deps/exp_fig5_hdb_overhead-30e17e658fe74480.d: crates/bench/src/bin/exp_fig5_hdb_overhead.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig5_hdb_overhead-30e17e658fe74480.rmeta: crates/bench/src/bin/exp_fig5_hdb_overhead.rs Cargo.toml

crates/bench/src/bin/exp_fig5_hdb_overhead.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
