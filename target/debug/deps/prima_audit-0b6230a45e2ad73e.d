/root/repo/target/debug/deps/prima_audit-0b6230a45e2ad73e.d: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs Cargo.toml

/root/repo/target/debug/deps/libprima_audit-0b6230a45e2ad73e.rmeta: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs Cargo.toml

crates/audit/src/lib.rs:
crates/audit/src/classify.rs:
crates/audit/src/entry.rs:
crates/audit/src/export.rs:
crates/audit/src/federation.rs:
crates/audit/src/retention.rs:
crates/audit/src/schema.rs:
crates/audit/src/stats.rs:
crates/audit/src/store.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
