/root/repo/target/debug/deps/prima_mining-a762add61988e7d8.d: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs Cargo.toml

/root/repo/target/debug/deps/libprima_mining-a762add61988e7d8.rmeta: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs Cargo.toml

crates/mining/src/lib.rs:
crates/mining/src/apriori.rs:
crates/mining/src/error.rs:
crates/mining/src/pattern.rs:
crates/mining/src/sql_miner.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
