/root/repo/target/debug/deps/properties-f843f098e22abd41.d: crates/model/tests/properties.rs Cargo.toml

/root/repo/target/debug/deps/libproperties-f843f098e22abd41.rmeta: crates/model/tests/properties.rs Cargo.toml

crates/model/tests/properties.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
