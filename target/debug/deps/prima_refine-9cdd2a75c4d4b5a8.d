/root/repo/target/debug/deps/prima_refine-9cdd2a75c4d4b5a8.d: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

/root/repo/target/debug/deps/libprima_refine-9cdd2a75c4d4b5a8.rlib: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

/root/repo/target/debug/deps/libprima_refine-9cdd2a75c4d4b5a8.rmeta: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

crates/refine/src/lib.rs:
crates/refine/src/extract.rs:
crates/refine/src/filter.rs:
crates/refine/src/generalize.rs:
crates/refine/src/pipeline.rs:
crates/refine/src/prune.rs:
crates/refine/src/review.rs:
