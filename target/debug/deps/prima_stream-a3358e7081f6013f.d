/root/repo/target/debug/deps/prima_stream-a3358e7081f6013f.d: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

/root/repo/target/debug/deps/libprima_stream-a3358e7081f6013f.rlib: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

/root/repo/target/debug/deps/libprima_stream-a3358e7081f6013f.rmeta: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

crates/stream/src/lib.rs:
crates/stream/src/cache.rs:
crates/stream/src/config.rs:
crates/stream/src/counters.rs:
crates/stream/src/engine.rs:
crates/stream/src/fault.rs:
crates/stream/src/shard.rs:
crates/stream/src/window.rs:
