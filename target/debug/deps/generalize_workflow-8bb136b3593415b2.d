/root/repo/target/debug/deps/generalize_workflow-8bb136b3593415b2.d: tests/generalize_workflow.rs Cargo.toml

/root/repo/target/debug/deps/libgeneralize_workflow-8bb136b3593415b2.rmeta: tests/generalize_workflow.rs Cargo.toml

tests/generalize_workflow.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
