/root/repo/target/debug/deps/exp_fig3_coverage-646005e346473260.d: crates/bench/src/bin/exp_fig3_coverage.rs Cargo.toml

/root/repo/target/debug/deps/libexp_fig3_coverage-646005e346473260.rmeta: crates/bench/src/bin/exp_fig3_coverage.rs Cargo.toml

crates/bench/src/bin/exp_fig3_coverage.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
