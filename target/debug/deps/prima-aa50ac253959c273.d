/root/repo/target/debug/deps/prima-aa50ac253959c273.d: src/main.rs

/root/repo/target/debug/deps/prima-aa50ac253959c273: src/main.rs

src/main.rs:
