/root/repo/target/debug/deps/regional_rollout-daf9b49caf97539f.d: tests/regional_rollout.rs Cargo.toml

/root/repo/target/debug/deps/libregional_rollout-daf9b49caf97539f.rmeta: tests/regional_rollout.rs Cargo.toml

tests/regional_rollout.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
