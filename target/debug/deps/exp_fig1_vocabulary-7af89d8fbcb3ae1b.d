/root/repo/target/debug/deps/exp_fig1_vocabulary-7af89d8fbcb3ae1b.d: crates/bench/src/bin/exp_fig1_vocabulary.rs

/root/repo/target/debug/deps/exp_fig1_vocabulary-7af89d8fbcb3ae1b: crates/bench/src/bin/exp_fig1_vocabulary.rs

crates/bench/src/bin/exp_fig1_vocabulary.rs:
