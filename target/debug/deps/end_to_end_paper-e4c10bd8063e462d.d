/root/repo/target/debug/deps/end_to_end_paper-e4c10bd8063e462d.d: tests/end_to_end_paper.rs

/root/repo/target/debug/deps/end_to_end_paper-e4c10bd8063e462d: tests/end_to_end_paper.rs

tests/end_to_end_paper.rs:
