/root/repo/target/debug/deps/exp_sensitivity-03b4690f7f3456d1.d: crates/bench/src/bin/exp_sensitivity.rs

/root/repo/target/debug/deps/exp_sensitivity-03b4690f7f3456d1: crates/bench/src/bin/exp_sensitivity.rs

crates/bench/src/bin/exp_sensitivity.rs:
