/root/repo/target/release/deps/exp_fig1_vocabulary-e068e25413212f8b.d: crates/bench/src/bin/exp_fig1_vocabulary.rs

/root/repo/target/release/deps/exp_fig1_vocabulary-e068e25413212f8b: crates/bench/src/bin/exp_fig1_vocabulary.rs

crates/bench/src/bin/exp_fig1_vocabulary.rs:
