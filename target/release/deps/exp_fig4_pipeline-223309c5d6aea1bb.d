/root/repo/target/release/deps/exp_fig4_pipeline-223309c5d6aea1bb.d: crates/bench/src/bin/exp_fig4_pipeline.rs

/root/repo/target/release/deps/exp_fig4_pipeline-223309c5d6aea1bb: crates/bench/src/bin/exp_fig4_pipeline.rs

crates/bench/src/bin/exp_fig4_pipeline.rs:
