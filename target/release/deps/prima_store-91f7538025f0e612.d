/root/repo/target/release/deps/prima_store-91f7538025f0e612.d: crates/store/src/lib.rs crates/store/src/catalog.rs crates/store/src/error.rs crates/store/src/index.rs crates/store/src/persist.rs crates/store/src/predicate.rs crates/store/src/row.rs crates/store/src/schema.rs crates/store/src/table.rs crates/store/src/value.rs

/root/repo/target/release/deps/libprima_store-91f7538025f0e612.rlib: crates/store/src/lib.rs crates/store/src/catalog.rs crates/store/src/error.rs crates/store/src/index.rs crates/store/src/persist.rs crates/store/src/predicate.rs crates/store/src/row.rs crates/store/src/schema.rs crates/store/src/table.rs crates/store/src/value.rs

/root/repo/target/release/deps/libprima_store-91f7538025f0e612.rmeta: crates/store/src/lib.rs crates/store/src/catalog.rs crates/store/src/error.rs crates/store/src/index.rs crates/store/src/persist.rs crates/store/src/predicate.rs crates/store/src/row.rs crates/store/src/schema.rs crates/store/src/table.rs crates/store/src/value.rs

crates/store/src/lib.rs:
crates/store/src/catalog.rs:
crates/store/src/error.rs:
crates/store/src/index.rs:
crates/store/src/persist.rs:
crates/store/src/predicate.rs:
crates/store/src/row.rs:
crates/store/src/schema.rs:
crates/store/src/table.rs:
crates/store/src/value.rs:
