/root/repo/target/release/deps/prima_core-a464ee1c05ca7ac8.d: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/release/deps/libprima_core-a464ee1c05ca7ac8.rlib: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/release/deps/libprima_core-a464ee1c05ca7ac8.rmeta: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

crates/core/src/lib.rs:
crates/core/src/clinic.rs:
crates/core/src/snapshot.rs:
crates/core/src/system.rs:
crates/core/src/trajectory.rs:
