/root/repo/target/release/deps/exp_sensitivity-8558458a626b42b3.d: crates/bench/src/bin/exp_sensitivity.rs

/root/repo/target/release/deps/exp_sensitivity-8558458a626b42b3: crates/bench/src/bin/exp_sensitivity.rs

crates/bench/src/bin/exp_sensitivity.rs:
