/root/repo/target/release/deps/prima_audit-09aef229e3a7502c.d: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

/root/repo/target/release/deps/libprima_audit-09aef229e3a7502c.rlib: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

/root/repo/target/release/deps/libprima_audit-09aef229e3a7502c.rmeta: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

crates/audit/src/lib.rs:
crates/audit/src/classify.rs:
crates/audit/src/entry.rs:
crates/audit/src/export.rs:
crates/audit/src/federation.rs:
crates/audit/src/retention.rs:
crates/audit/src/schema.rs:
crates/audit/src/stats.rs:
crates/audit/src/store.rs:
