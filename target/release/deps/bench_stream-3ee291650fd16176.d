/root/repo/target/release/deps/bench_stream-3ee291650fd16176.d: crates/bench/benches/bench_stream.rs

/root/repo/target/release/deps/bench_stream-3ee291650fd16176: crates/bench/benches/bench_stream.rs

crates/bench/benches/bench_stream.rs:
