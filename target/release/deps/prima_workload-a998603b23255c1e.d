/root/repo/target/release/deps/prima_workload-a998603b23255c1e.d: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

/root/repo/target/release/deps/libprima_workload-a998603b23255c1e.rlib: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

/root/repo/target/release/deps/libprima_workload-a998603b23255c1e.rmeta: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

crates/workload/src/lib.rs:
crates/workload/src/fixtures.rs:
crates/workload/src/scenario.rs:
crates/workload/src/sim.rs:
