/root/repo/target/release/deps/prima_refine-4e933747aca8af3e.d: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

/root/repo/target/release/deps/libprima_refine-4e933747aca8af3e.rlib: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

/root/repo/target/release/deps/libprima_refine-4e933747aca8af3e.rmeta: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

crates/refine/src/lib.rs:
crates/refine/src/extract.rs:
crates/refine/src/filter.rs:
crates/refine/src/generalize.rs:
crates/refine/src/pipeline.rs:
crates/refine/src/prune.rs:
crates/refine/src/review.rs:
