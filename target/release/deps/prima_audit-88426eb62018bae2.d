/root/repo/target/release/deps/prima_audit-88426eb62018bae2.d: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

/root/repo/target/release/deps/libprima_audit-88426eb62018bae2.rlib: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

/root/repo/target/release/deps/libprima_audit-88426eb62018bae2.rmeta: crates/audit/src/lib.rs crates/audit/src/classify.rs crates/audit/src/entry.rs crates/audit/src/export.rs crates/audit/src/federation.rs crates/audit/src/retention.rs crates/audit/src/schema.rs crates/audit/src/stats.rs crates/audit/src/store.rs

crates/audit/src/lib.rs:
crates/audit/src/classify.rs:
crates/audit/src/entry.rs:
crates/audit/src/export.rs:
crates/audit/src/federation.rs:
crates/audit/src/retention.rs:
crates/audit/src/schema.rs:
crates/audit/src/stats.rs:
crates/audit/src/store.rs:
