/root/repo/target/release/deps/prima_hdb-b84b7e992769bf4b.d: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs

/root/repo/target/release/deps/libprima_hdb-b84b7e992769bf4b.rlib: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs

/root/repo/target/release/deps/libprima_hdb-b84b7e992769bf4b.rmeta: crates/hdb/src/lib.rs crates/hdb/src/auditing.rs crates/hdb/src/clinical.rs crates/hdb/src/consent.rs crates/hdb/src/control.rs crates/hdb/src/enforcement.rs crates/hdb/src/error.rs crates/hdb/src/request.rs

crates/hdb/src/lib.rs:
crates/hdb/src/auditing.rs:
crates/hdb/src/clinical.rs:
crates/hdb/src/consent.rs:
crates/hdb/src/control.rs:
crates/hdb/src/enforcement.rs:
crates/hdb/src/error.rs:
crates/hdb/src/request.rs:
