/root/repo/target/release/deps/prima_hier-d227bd7c75ece340.d: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

/root/repo/target/release/deps/libprima_hier-d227bd7c75ece340.rlib: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

/root/repo/target/release/deps/libprima_hier-d227bd7c75ece340.rmeta: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

crates/hier/src/lib.rs:
crates/hier/src/category.rs:
crates/hier/src/control.rs:
crates/hier/src/doc.rs:
crates/hier/src/enforce.rs:
crates/hier/src/path.rs:
