/root/repo/target/release/deps/prima_vocab-6cc7b3761b31e469.d: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

/root/repo/target/release/deps/libprima_vocab-6cc7b3761b31e469.rlib: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

/root/repo/target/release/deps/libprima_vocab-6cc7b3761b31e469.rmeta: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

crates/vocab/src/lib.rs:
crates/vocab/src/concept.rs:
crates/vocab/src/error.rs:
crates/vocab/src/parse.rs:
crates/vocab/src/samples.rs:
crates/vocab/src/synthetic.rs:
crates/vocab/src/taxonomy.rs:
crates/vocab/src/vocabulary.rs:
