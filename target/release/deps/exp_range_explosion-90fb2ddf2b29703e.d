/root/repo/target/release/deps/exp_range_explosion-90fb2ddf2b29703e.d: crates/bench/src/bin/exp_range_explosion.rs

/root/repo/target/release/deps/exp_range_explosion-90fb2ddf2b29703e: crates/bench/src/bin/exp_range_explosion.rs

crates/bench/src/bin/exp_range_explosion.rs:
