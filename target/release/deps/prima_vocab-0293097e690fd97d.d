/root/repo/target/release/deps/prima_vocab-0293097e690fd97d.d: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

/root/repo/target/release/deps/libprima_vocab-0293097e690fd97d.rlib: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

/root/repo/target/release/deps/libprima_vocab-0293097e690fd97d.rmeta: crates/vocab/src/lib.rs crates/vocab/src/concept.rs crates/vocab/src/error.rs crates/vocab/src/parse.rs crates/vocab/src/samples.rs crates/vocab/src/synthetic.rs crates/vocab/src/taxonomy.rs crates/vocab/src/vocabulary.rs

crates/vocab/src/lib.rs:
crates/vocab/src/concept.rs:
crates/vocab/src/error.rs:
crates/vocab/src/parse.rs:
crates/vocab/src/samples.rs:
crates/vocab/src/synthetic.rs:
crates/vocab/src/taxonomy.rs:
crates/vocab/src/vocabulary.rs:
