/root/repo/target/release/deps/exp_fig5_hdb_overhead-378fbc8088721b6b.d: crates/bench/src/bin/exp_fig5_hdb_overhead.rs

/root/repo/target/release/deps/exp_fig5_hdb_overhead-378fbc8088721b6b: crates/bench/src/bin/exp_fig5_hdb_overhead.rs

crates/bench/src/bin/exp_fig5_hdb_overhead.rs:
