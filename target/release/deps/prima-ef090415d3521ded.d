/root/repo/target/release/deps/prima-ef090415d3521ded.d: src/lib.rs

/root/repo/target/release/deps/libprima-ef090415d3521ded.rlib: src/lib.rs

/root/repo/target/release/deps/libprima-ef090415d3521ded.rmeta: src/lib.rs

src/lib.rs:
