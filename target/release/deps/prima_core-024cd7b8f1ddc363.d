/root/repo/target/release/deps/prima_core-024cd7b8f1ddc363.d: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/release/deps/libprima_core-024cd7b8f1ddc363.rlib: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

/root/repo/target/release/deps/libprima_core-024cd7b8f1ddc363.rmeta: crates/core/src/lib.rs crates/core/src/clinic.rs crates/core/src/snapshot.rs crates/core/src/system.rs crates/core/src/trajectory.rs

crates/core/src/lib.rs:
crates/core/src/clinic.rs:
crates/core/src/snapshot.rs:
crates/core/src/system.rs:
crates/core/src/trajectory.rs:
