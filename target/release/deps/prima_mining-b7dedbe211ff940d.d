/root/repo/target/release/deps/prima_mining-b7dedbe211ff940d.d: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

/root/repo/target/release/deps/libprima_mining-b7dedbe211ff940d.rlib: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

/root/repo/target/release/deps/libprima_mining-b7dedbe211ff940d.rmeta: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

crates/mining/src/lib.rs:
crates/mining/src/apriori.rs:
crates/mining/src/error.rs:
crates/mining/src/pattern.rs:
crates/mining/src/sql_miner.rs:
