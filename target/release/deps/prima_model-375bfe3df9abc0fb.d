/root/repo/target/release/deps/prima_model-375bfe3df9abc0fb.d: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

/root/repo/target/release/deps/libprima_model-375bfe3df9abc0fb.rlib: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

/root/repo/target/release/deps/libprima_model-375bfe3df9abc0fb.rmeta: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

crates/model/src/lib.rs:
crates/model/src/coverage.rs:
crates/model/src/dsl.rs:
crates/model/src/error.rs:
crates/model/src/ground.rs:
crates/model/src/lint.rs:
crates/model/src/policy.rs:
crates/model/src/range.rs:
crates/model/src/rule.rs:
crates/model/src/samples.rs:
crates/model/src/simplify.rs:
crates/model/src/term.rs:
