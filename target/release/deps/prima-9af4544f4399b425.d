/root/repo/target/release/deps/prima-9af4544f4399b425.d: src/main.rs

/root/repo/target/release/deps/prima-9af4544f4399b425: src/main.rs

src/main.rs:
