/root/repo/target/release/deps/prima-b7289b816079787a.d: src/main.rs

/root/repo/target/release/deps/prima-b7289b816079787a: src/main.rs

src/main.rs:
