/root/repo/target/release/deps/exp_fig2_trajectory-cbc6a634f8d74e46.d: crates/bench/src/bin/exp_fig2_trajectory.rs

/root/repo/target/release/deps/exp_fig2_trajectory-cbc6a634f8d74e46: crates/bench/src/bin/exp_fig2_trajectory.rs

crates/bench/src/bin/exp_fig2_trajectory.rs:
