/root/repo/target/release/deps/exp_fig3_coverage-b4ece0c793c19dd5.d: crates/bench/src/bin/exp_fig3_coverage.rs

/root/repo/target/release/deps/exp_fig3_coverage-b4ece0c793c19dd5: crates/bench/src/bin/exp_fig3_coverage.rs

crates/bench/src/bin/exp_fig3_coverage.rs:
