/root/repo/target/release/deps/exp_evolving_practice-faefb68c70ad4e89.d: crates/bench/src/bin/exp_evolving_practice.rs

/root/repo/target/release/deps/exp_evolving_practice-faefb68c70ad4e89: crates/bench/src/bin/exp_evolving_practice.rs

crates/bench/src/bin/exp_evolving_practice.rs:
