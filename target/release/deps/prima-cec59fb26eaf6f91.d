/root/repo/target/release/deps/prima-cec59fb26eaf6f91.d: src/lib.rs

/root/repo/target/release/deps/libprima-cec59fb26eaf6f91.rlib: src/lib.rs

/root/repo/target/release/deps/libprima-cec59fb26eaf6f91.rmeta: src/lib.rs

src/lib.rs:
