/root/repo/target/release/deps/prima_workload-9eaad46b14eb2926.d: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

/root/repo/target/release/deps/libprima_workload-9eaad46b14eb2926.rlib: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

/root/repo/target/release/deps/libprima_workload-9eaad46b14eb2926.rmeta: crates/workload/src/lib.rs crates/workload/src/fixtures.rs crates/workload/src/scenario.rs crates/workload/src/sim.rs

crates/workload/src/lib.rs:
crates/workload/src/fixtures.rs:
crates/workload/src/scenario.rs:
crates/workload/src/sim.rs:
