/root/repo/target/release/deps/exp_miner_comparison-024fe2f11a3c0e07.d: crates/bench/src/bin/exp_miner_comparison.rs

/root/repo/target/release/deps/exp_miner_comparison-024fe2f11a3c0e07: crates/bench/src/bin/exp_miner_comparison.rs

crates/bench/src/bin/exp_miner_comparison.rs:
