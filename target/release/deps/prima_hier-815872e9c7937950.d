/root/repo/target/release/deps/prima_hier-815872e9c7937950.d: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

/root/repo/target/release/deps/libprima_hier-815872e9c7937950.rlib: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

/root/repo/target/release/deps/libprima_hier-815872e9c7937950.rmeta: crates/hier/src/lib.rs crates/hier/src/category.rs crates/hier/src/control.rs crates/hier/src/doc.rs crates/hier/src/enforce.rs crates/hier/src/path.rs

crates/hier/src/lib.rs:
crates/hier/src/category.rs:
crates/hier/src/control.rs:
crates/hier/src/doc.rs:
crates/hier/src/enforce.rs:
crates/hier/src/path.rs:
