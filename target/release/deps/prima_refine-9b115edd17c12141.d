/root/repo/target/release/deps/prima_refine-9b115edd17c12141.d: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

/root/repo/target/release/deps/libprima_refine-9b115edd17c12141.rlib: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

/root/repo/target/release/deps/libprima_refine-9b115edd17c12141.rmeta: crates/refine/src/lib.rs crates/refine/src/extract.rs crates/refine/src/filter.rs crates/refine/src/generalize.rs crates/refine/src/pipeline.rs crates/refine/src/prune.rs crates/refine/src/review.rs

crates/refine/src/lib.rs:
crates/refine/src/extract.rs:
crates/refine/src/filter.rs:
crates/refine/src/generalize.rs:
crates/refine/src/pipeline.rs:
crates/refine/src/prune.rs:
crates/refine/src/review.rs:
