/root/repo/target/release/deps/prima_model-e9d31d1d1b0f212d.d: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

/root/repo/target/release/deps/libprima_model-e9d31d1d1b0f212d.rlib: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

/root/repo/target/release/deps/libprima_model-e9d31d1d1b0f212d.rmeta: crates/model/src/lib.rs crates/model/src/coverage.rs crates/model/src/dsl.rs crates/model/src/error.rs crates/model/src/ground.rs crates/model/src/lint.rs crates/model/src/policy.rs crates/model/src/range.rs crates/model/src/rule.rs crates/model/src/samples.rs crates/model/src/simplify.rs crates/model/src/term.rs

crates/model/src/lib.rs:
crates/model/src/coverage.rs:
crates/model/src/dsl.rs:
crates/model/src/error.rs:
crates/model/src/ground.rs:
crates/model/src/lint.rs:
crates/model/src/policy.rs:
crates/model/src/range.rs:
crates/model/src/rule.rs:
crates/model/src/samples.rs:
crates/model/src/simplify.rs:
crates/model/src/term.rs:
