/root/repo/target/release/deps/exp_table1_usecase-767ba52cfe4951ad.d: crates/bench/src/bin/exp_table1_usecase.rs

/root/repo/target/release/deps/exp_table1_usecase-767ba52cfe4951ad: crates/bench/src/bin/exp_table1_usecase.rs

crates/bench/src/bin/exp_table1_usecase.rs:
