/root/repo/target/release/deps/prima_mining-3682bdb80f4f47ae.d: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

/root/repo/target/release/deps/libprima_mining-3682bdb80f4f47ae.rlib: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

/root/repo/target/release/deps/libprima_mining-3682bdb80f4f47ae.rmeta: crates/mining/src/lib.rs crates/mining/src/apriori.rs crates/mining/src/error.rs crates/mining/src/pattern.rs crates/mining/src/sql_miner.rs

crates/mining/src/lib.rs:
crates/mining/src/apriori.rs:
crates/mining/src/error.rs:
crates/mining/src/pattern.rs:
crates/mining/src/sql_miner.rs:
