/root/repo/target/release/deps/prima_stream-009470de459961eb.d: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

/root/repo/target/release/deps/libprima_stream-009470de459961eb.rlib: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

/root/repo/target/release/deps/libprima_stream-009470de459961eb.rmeta: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

crates/stream/src/lib.rs:
crates/stream/src/cache.rs:
crates/stream/src/config.rs:
crates/stream/src/counters.rs:
crates/stream/src/engine.rs:
crates/stream/src/fault.rs:
crates/stream/src/shard.rs:
crates/stream/src/window.rs:
