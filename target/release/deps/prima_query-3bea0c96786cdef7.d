/root/repo/target/release/deps/prima_query-3bea0c96786cdef7.d: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs

/root/repo/target/release/deps/libprima_query-3bea0c96786cdef7.rlib: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs

/root/repo/target/release/deps/libprima_query-3bea0c96786cdef7.rmeta: crates/query/src/lib.rs crates/query/src/ast.rs crates/query/src/error.rs crates/query/src/exec.rs crates/query/src/lexer.rs crates/query/src/parser.rs crates/query/src/plan.rs crates/query/src/result.rs

crates/query/src/lib.rs:
crates/query/src/ast.rs:
crates/query/src/error.rs:
crates/query/src/exec.rs:
crates/query/src/lexer.rs:
crates/query/src/parser.rs:
crates/query/src/plan.rs:
crates/query/src/result.rs:
