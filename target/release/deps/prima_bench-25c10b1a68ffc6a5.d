/root/repo/target/release/deps/prima_bench-25c10b1a68ffc6a5.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libprima_bench-25c10b1a68ffc6a5.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libprima_bench-25c10b1a68ffc6a5.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
