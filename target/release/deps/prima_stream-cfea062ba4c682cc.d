/root/repo/target/release/deps/prima_stream-cfea062ba4c682cc.d: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

/root/repo/target/release/deps/libprima_stream-cfea062ba4c682cc.rlib: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

/root/repo/target/release/deps/libprima_stream-cfea062ba4c682cc.rmeta: crates/stream/src/lib.rs crates/stream/src/cache.rs crates/stream/src/config.rs crates/stream/src/counters.rs crates/stream/src/engine.rs crates/stream/src/fault.rs crates/stream/src/shard.rs crates/stream/src/window.rs

crates/stream/src/lib.rs:
crates/stream/src/cache.rs:
crates/stream/src/config.rs:
crates/stream/src/counters.rs:
crates/stream/src/engine.rs:
crates/stream/src/fault.rs:
crates/stream/src/shard.rs:
crates/stream/src/window.rs:
