/root/repo/target/release/examples/streaming_ingestion-a9b6ff5d68ab405a.d: examples/streaming_ingestion.rs

/root/repo/target/release/examples/streaming_ingestion-a9b6ff5d68ab405a: examples/streaming_ingestion.rs

examples/streaming_ingestion.rs:
