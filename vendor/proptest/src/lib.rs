//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: the `proptest!` macro (with
//! `#![proptest_config(...)]`), range/`Just`/tuple strategies,
//! `prop_map`, `proptest::collection::vec`, `any::<T>()`,
//! `prop::sample::Index`, and the `prop_assert*`/`prop_assume!` macros.
//!
//! Differences from real proptest: cases are generated from a
//! deterministic per-test seed (derived from the test name), and failing
//! cases are reported without shrinking — the failure message carries the
//! case number and seed so a failure is exactly reproducible by rerunning
//! the test.

/// Test-runner configuration and failure plumbing.
pub mod test_runner {
    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of successful cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed.
        Fail(String),
        /// `prop_assume!` rejected the inputs; the case is retried.
        Reject(String),
    }

    impl TestCaseError {
        /// An assertion failure.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        /// An input rejection.
        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }
}

/// The deterministic generator handed to strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// Seeds a generator (SplitMix64-expanded xoshiro256++).
    pub fn new(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        Self {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        let zone = u64::MAX - (u64::MAX % bound);
        loop {
            let x = self.next_u64();
            if x < zone {
                return x % bound;
            }
        }
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Strategies: recipes for generating random values.
pub mod strategy {
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A value-generation recipe.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value.
        fn gen_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn gen_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.gen_value(rng))
        }
    }

    /// A strategy producing one fixed value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn gen_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn gen_value(&self, rng: &mut TestRng) -> $t {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end as i128 - start as i128) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    (start as i128 + rng.below(span + 1) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn gen_value(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn gen_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.gen_value(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A size bound for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max_inclusive: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            Self {
                min: r.start,
                max_inclusive: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            Self {
                min: *r.start(),
                max_inclusive: *r.end(),
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            Self {
                min: n,
                max_inclusive: n,
            }
        }
    }

    /// Strategy for `Vec<T>` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn gen_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max_inclusive - self.size.min) as u64;
            let len = self.size.min
                + if span == 0 {
                    0
                } else {
                    rng.below(span + 1) as usize
                };
            (0..len).map(|_| self.element.gen_value(rng)).collect()
        }
    }
}

/// Sampling helpers (`prop::sample`).
pub mod sample {
    use super::strategy::Strategy;
    use super::{Arbitrary, TestRng};

    /// An index into a collection of as-yet-unknown size (resolved with
    /// [`Index::index`]).
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Index(u64);

    impl Index {
        /// Maps the abstract index onto `0..len`; `len` must be
        /// non-zero.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    /// Strategy generating [`Index`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct IndexStrategy;

    impl Strategy for IndexStrategy {
        type Value = Index;

        fn gen_value(&self, rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }

    impl Arbitrary for Index {
        type Strategy = IndexStrategy;

        fn arbitrary() -> IndexStrategy {
            IndexStrategy
        }
    }
}

/// Types with a canonical strategy (`any::<T>()`).
pub trait Arbitrary {
    /// The canonical strategy.
    type Strategy: strategy::Strategy<Value = Self>;

    /// Builds the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Full-domain strategy for primitives.
#[derive(Debug, Clone, Copy, Default)]
pub struct FullDomain<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! impl_arbitrary_prim {
    ($($t:ty => $gen:expr),*) => {$(
        impl strategy::Strategy for FullDomain<$t> {
            type Value = $t;

            fn gen_value(&self, rng: &mut TestRng) -> $t {
                let f: fn(&mut TestRng) -> $t = $gen;
                f(rng)
            }
        }
        impl Arbitrary for $t {
            type Strategy = FullDomain<$t>;

            fn arbitrary() -> Self::Strategy {
                FullDomain { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

impl_arbitrary_prim!(
    bool => |r| r.next_u64() & 1 == 1,
    u8 => |r| r.next_u64() as u8,
    u16 => |r| r.next_u64() as u16,
    u32 => |r| r.next_u64() as u32,
    u64 => |r| r.next_u64(),
    usize => |r| r.next_u64() as usize,
    i8 => |r| r.next_u64() as i8,
    i16 => |r| r.next_u64() as i16,
    i32 => |r| r.next_u64() as i32,
    i64 => |r| r.next_u64() as i64,
    isize => |r| r.next_u64() as isize,
    f64 => |r| r.unit_f64()
);

/// The canonical strategy for `T`.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// The per-test driver invoked by the `proptest!` macro expansion.
pub mod runner {
    use super::test_runner::Config;
    pub use super::test_runner::TestCaseError;
    use super::TestRng;

    fn seed_for(name: &str) -> u64 {
        // FNV-1a over the test name: stable across runs and platforms.
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
        h
    }

    /// Runs `config.cases` cases of `f`, panicking on the first failure
    /// with enough context to reproduce it.
    pub fn run<F>(name: &str, config: &Config, mut f: F)
    where
        F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
    {
        let base = seed_for(name);
        let mut passed = 0u32;
        let mut rejected = 0u64;
        let max_rejects = (config.cases as u64).saturating_mul(20).max(1000);
        let mut case = 0u64;
        while passed < config.cases {
            let seed = base.wrapping_add(case);
            let mut rng = TestRng::new(seed);
            match f(&mut rng) {
                Ok(()) => passed += 1,
                Err(TestCaseError::Reject(_)) => {
                    rejected += 1;
                    if rejected > max_rejects {
                        panic!(
                            "proptest `{name}`: too many prop_assume! rejections \
                             ({rejected}) — strategy rarely satisfies the assumption"
                        );
                    }
                }
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest `{name}` failed at case {case} (seed {seed:#x}): {msg}");
                }
            }
            case += 1;
        }
    }
}

/// Everything a property test file normally imports.
pub mod prelude {
    pub use crate::collection;
    pub use crate::sample;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{any, Arbitrary};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// The `prop::` module alias (`prop::sample`, `prop::collection`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

/// Declares property tests; see module docs for supported forms.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])+
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let __config = $cfg;
                $crate::runner::run(
                    stringify!($name),
                    &__config,
                    |__rng| -> ::std::result::Result<(), $crate::runner::TestCaseError> {
                        $(let $arg = $crate::strategy::Strategy::gen_value(&($strat), __rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    },
                );
            }
        )*
    };
}

/// `assert!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `assert_eq!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::runner::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)*), l, r
                ),
            ));
        }
    }};
}

/// `assert_ne!` that reports through the proptest runner.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Rejects the current case (retried with fresh inputs, not a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::runner::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3usize..10, y in -4i64..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-4..=4).contains(&y));
        }

        #[test]
        fn vec_lengths_respect_size(v in collection::vec(0u8..5, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b < 5));
        }

        #[test]
        fn map_and_just_compose(
            n in (0usize..4, Just(10usize)).prop_map(|(a, b)| a + b),
            idx in any::<sample::Index>(),
        ) {
            prop_assert!((10..14).contains(&n));
            prop_assert!(idx.index(7) < 7);
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u32..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_report_case_and_seed() {
        crate::runner::run(
            "always_fails",
            &crate::test_runner::Config::with_cases(4),
            |_| Err(crate::runner::TestCaseError::fail("boom")),
        );
    }
}
