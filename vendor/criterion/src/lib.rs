//! Offline stand-in for `criterion`, covering the harness surface this
//! workspace's benches use: `Criterion::{bench_function,
//! benchmark_group}`, `BenchmarkGroup::{sample_size, bench_with_input,
//! finish}`, `Bencher::iter`, `BenchmarkId`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement model: each benchmark warms up briefly, picks an
//! iteration count that fills a fixed per-sample time budget, then takes
//! `sample_size` samples and reports min/median/mean nanoseconds per
//! iteration to stdout. No statistics beyond that, no HTML reports, no
//! baselines — enough to compare strategies and spot regressions by eye
//! or by parsing the one-line summaries.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// An opaque-to-the-optimizer value sink (re-exported std hint).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A function name plus a parameter, rendered `name/param`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            label: format!("{}/{}", name.into(), parameter),
        }
    }

    /// Just a parameter (the group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Runs the timing loop for one benchmark.
pub struct Bencher {
    samples: Vec<f64>,
    sample_size: usize,
}

/// Per-sample time budget: long enough to amortize timer overhead,
/// short enough that a full bench suite stays interactive.
const SAMPLE_BUDGET: Duration = Duration::from_millis(25);
const WARMUP_BUDGET: Duration = Duration::from_millis(50);

impl Bencher {
    /// Measures `routine`, recording nanoseconds-per-iteration samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: run until the budget elapses, and learn roughly how
        // long one iteration takes so samples can batch iterations.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < WARMUP_BUDGET {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
        let iters_per_sample = ((SAMPLE_BUDGET.as_nanos() as f64 / per_iter).ceil() as u64).max(1);

        self.samples.clear();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed().as_nanos() as f64;
            self.samples.push(elapsed / iters_per_sample as f64);
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<50} (no samples)");
            return;
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.total_cmp(b));
        let min = sorted[0];
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<f64>() / sorted.len() as f64;
        println!(
            "{label:<50} min {:>12} median {:>12} mean {:>12}",
            fmt_ns(min),
            fmt_ns(median),
            fmt_ns(mean)
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// The benchmark manager handed to `criterion_group!` targets.
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// CLI-argument hook; accepted and ignored (the real crate parses
    /// `cargo bench -- <flags>` here).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.default_sample_size,
        };
        f(&mut bencher);
        bencher.report(name);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.default_sample_size,
            _criterion: self,
        }
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs one benchmark with a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut bencher, input);
        bencher.report(&format!("{}/{}", self.name, id.label));
        self
    }

    /// Closes the group (a no-op beyond matching criterion's API).
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        /// Runs every benchmark target registered in this group.
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench-harness entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_render_like_criterion() {
        assert_eq!(BenchmarkId::new("parse", 32).label, "parse/32");
        assert_eq!(BenchmarkId::from_parameter(1000).label, "1000");
    }

    #[test]
    fn fmt_ns_scales_units() {
        assert_eq!(fmt_ns(512.0), "512.0 ns");
        assert_eq!(fmt_ns(2_500.0), "2.50 µs");
        assert_eq!(fmt_ns(3_000_000.0), "3.00 ms");
    }

    #[test]
    fn bencher_collects_samples() {
        let mut criterion = Criterion::default();
        criterion.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = criterion.benchmark_group("g");
        group.sample_size(3);
        group.bench_with_input(BenchmarkId::new("sum", 4), &4u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}
