//! Offline stand-in for `serde`, providing the subset of the API this
//! workspace uses: the `Serialize`/`Deserialize` traits plus the derive
//! macros (re-exported from the sibling `serde_derive` shim).
//!
//! Unlike real serde's visitor architecture, this implementation is
//! value-model based: `Serialize` lowers a type into a JSON-like [`Value`]
//! tree and `Deserialize` rebuilds the type from one. `serde_json` (also
//! shimmed in `vendor/`) renders and parses that tree. The wire format
//! follows serde's externally-tagged JSON conventions so fixtures remain
//! readable: structs are maps, unit enum variants are strings, and payload
//! variants are single-key maps.

use std::collections::{BTreeMap, HashMap};

pub use serde_derive::{Deserialize, Serialize};

/// The serialization data model (a superset of JSON's).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON null.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    I64(i64),
    /// Unsigned integer too large for `i64`.
    U64(u64),
    /// Floating point.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object; insertion-ordered key/value pairs.
    Map(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    /// The map entries, if this is a map.
    pub fn as_map(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The sequence elements, if this is a sequence.
    pub fn as_seq(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Integer view (accepts `I64` and in-range `U64`).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(i) => Some(*i),
            Value::U64(u) => i64::try_from(*u).ok(),
            _ => None,
        }
    }

    /// Unsigned view (accepts non-negative `I64` and `U64`).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::I64(i) => u64::try_from(*i).ok(),
            Value::U64(u) => Some(*u),
            _ => None,
        }
    }

    /// Float view (accepts any numeric variant).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::I64(i) => Some(*i as f64),
            Value::U64(u) => Some(*u as f64),
            Value::F64(f) => Some(*f),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// True iff `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }
}

/// Looks a key up in a serialized map, yielding `Null` for absent keys so
/// `Option` fields deserialize to `None` (serde's behaviour for omitted
/// optional fields).
pub fn map_get<'a>(map: &'a [(String, Value)], key: &str) -> &'a Value {
    map.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .unwrap_or(&NULL)
}

/// Deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Lowers a value into the serialization data model.
pub trait Serialize {
    /// Produces the [`Value`] tree for this value.
    fn serialize(&self) -> Value;
}

/// Rebuilds a value from the serialization data model.
pub trait Deserialize: Sized {
    /// Parses `self` out of a [`Value`] tree.
    fn deserialize(v: &Value) -> Result<Self, Error>;
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let i = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(i).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let u = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(u).map_err(|_| Error::custom("integer out of range"))
            }
        }
    )*};
}

impl_uint!(u64, usize);

impl Serialize for f64 {
    fn serialize(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom("expected number"))
    }
}

impl Serialize for f32 {
    fn serialize(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.as_f64().ok_or_else(|| Error::custom("expected number"))? as f32)
    }
}

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected bool"))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-char string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(x) => x.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        if v.is_null() {
            Ok(None)
        } else {
            Ok(Some(T::deserialize(v)?))
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_seq()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::deserialize)
            .collect()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::deserialize(v)?))
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn serialize(&self) -> Value {
        // Sort keys so output is deterministic, as tests expect of the
        // surrounding system.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.clone(), v.serialize()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::custom("expected map"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident : $i:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn serialize(&self) -> Value {
                Value::Seq(vec![$(self.$i.serialize()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn deserialize(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                Ok(($($t::deserialize(
                    s.get($i).ok_or_else(|| Error::custom("tuple too short"))?
                )?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

impl Serialize for () {
    fn serialize(&self) -> Value {
        Value::Null
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for () {
    fn deserialize(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}
