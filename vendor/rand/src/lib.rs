//! Offline stand-in for `rand` 0.8, covering the API surface this
//! workspace uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_range,
//! gen_bool}`, and `seq::SliceRandom::{choose, shuffle}`.
//!
//! `StdRng` is xoshiro256++ seeded via SplitMix64 — statistically solid
//! for simulation workloads and fully deterministic per seed (the
//! workspace's generators promise "same seed, same trail"). Streams are
//! NOT bit-compatible with the real rand crate; nothing in the workspace
//! depends on rand's exact streams, only on determinism and uniformity.

use std::ops::{Range, RangeInclusive};

/// Core entropy source.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable from the "standard" distribution (what `rng.gen()`
/// produces): uniform over the full domain for integers, `[0, 1)` for
/// floats.
pub trait StandardSample {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types with uniform sampling over ranges. The blanket
/// [`SampleRange`] impls below are over this trait so that integer
/// literals in `gen_range(1..=60)` infer their type from the result
/// (matching real rand's `SampleUniform` structure).
pub trait SampleUniform: Sized + Copy {
    /// Uniform draw from `[start, end)`.
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;

    /// Uniform draw from `[start, end]`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: Self, end: Self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty as $wide:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start < end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                start.wrapping_add(uniform_u64(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: $t, end: $t) -> $t {
                assert!(start <= end, "gen_range: empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start.wrapping_add(uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_uniform_int!(
    u8 as u64,
    u16 as u64,
    u32 as u64,
    u64 as u64,
    usize as u64,
    i8 as i64,
    i16 as i64,
    i32 as i64,
    i64 as i64,
    isize as i64
);

impl SampleUniform for f64 {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        assert!(start < end, "gen_range: empty range");
        start + f64::sample(rng) * (end - start)
    }

    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, start: f64, end: f64) -> f64 {
        // Closed float ranges are sampled like half-open ones; the
        // endpoint has measure zero.
        Self::sample_half_open(rng, start, end)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// Debiased uniform draw in `[0, span)` (`span == 0` means the full
/// 64-bit domain).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    if span == 0 {
        return rng.next_u64();
    }
    // Lemire-style rejection: zone is the largest multiple of span.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let x = rng.next_u64();
        if x < zone {
            return x % span;
        }
    }
}

/// The user-facing sampling API (blanket-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// Draws from the standard distribution.
    fn gen<T: StandardSample>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// True with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: xoshiro256++, seeded via SplitMix64.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::Rng;

    /// Random selection and shuffling over slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// A uniformly random element, or `None` if empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(super::uniform_u64(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = super::uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: i64 = rng.gen_range(-5..=5);
            assert!((-5..=5).contains(&y));
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn uniformity_is_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
        let mut buckets = [0usize; 10];
        for _ in 0..n {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for b in buckets {
            let share = b as f64 / n as f64;
            assert!((share - 0.1).abs() < 0.01, "bucket share {share}");
        }
    }

    #[test]
    fn choose_and_shuffle() {
        let mut rng = StdRng::seed_from_u64(3);
        let items = [1, 2, 3, 4];
        assert!(items.choose(&mut rng).is_some());
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut v: Vec<u32> = (0..100).collect();
        let orig = v.clone();
        v.shuffle(&mut rng);
        assert_ne!(v, orig);
        v.sort_unstable();
        assert_eq!(v, orig);
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        let share = hits as f64 / 100_000.0;
        assert!((share - 0.3).abs() < 0.01, "share {share}");
    }
}
