//! Offline stand-in for `serde_derive`.
//!
//! Parses the derive input with a hand-rolled `proc_macro` token walker
//! (no `syn`/`quote` available offline) and emits value-model based
//! `Serialize`/`Deserialize` impls against the sibling `serde` shim.
//!
//! Supported shapes — everything this workspace derives:
//! * named-field structs (with `#[serde(skip)]` fields, restored via
//!   `Default` on deserialize),
//! * tuple structs (newtype and general) and unit structs,
//! * enums with unit, tuple, and struct variants, encoded externally
//!   tagged exactly like serde's JSON convention.
//!
//! Generics are unsupported and rejected with a clear compile error.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug, Clone)]
struct Field {
    name: String,
    skip: bool,
}

#[derive(Debug, Clone)]
enum VariantShape {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

#[derive(Debug, Clone)]
struct Variant {
    name: String,
    shape: VariantShape,
}

#[derive(Debug)]
enum Input {
    NamedStruct {
        name: String,
        fields: Vec<Field>,
    },
    TupleStruct {
        name: String,
        arity: usize,
    },
    UnitStruct {
        name: String,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

/// Consumes attribute groups (`#[...]`) from the front of `toks`,
/// returning true iff one of them was `#[serde(skip)]`.
fn eat_attrs(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> bool {
    let mut skip = false;
    loop {
        match toks.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                toks.next();
                if let Some(TokenTree::Group(g)) = toks.next() {
                    let inner: Vec<TokenTree> = g.stream().into_iter().collect();
                    if let Some(TokenTree::Ident(id)) = inner.first() {
                        if id.to_string() == "serde" {
                            if let Some(TokenTree::Group(args)) = inner.get(1) {
                                let text = args.stream().to_string();
                                if text.split(',').any(|a| a.trim() == "skip") {
                                    skip = true;
                                }
                            }
                        }
                    }
                } else {
                    panic!("serde_derive shim: malformed attribute");
                }
            }
            _ => return skip,
        }
    }
}

/// Consumes an optional visibility qualifier (`pub`, `pub(crate)`, ...).
fn eat_vis(toks: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if let Some(TokenTree::Ident(id)) = toks.peek() {
        if id.to_string() == "pub" {
            toks.next();
            if let Some(TokenTree::Group(g)) = toks.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    toks.next();
                }
            }
        }
    }
}

/// Counts the top-level comma-separated items in a type list, tracking
/// `<...>` nesting manually (angle brackets are not token groups).
fn count_tuple_fields(g: &proc_macro::Group) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for t in g.stream() {
        any = true;
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 => {
                    commas += 1;
                    trailing_comma = true;
                    continue;
                }
                _ => {}
            }
        }
        trailing_comma = false;
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

/// Parses `name: Type` fields (with attributes) out of a brace group.
fn parse_named_fields(g: &proc_macro::Group) -> Vec<Field> {
    let mut toks = g.stream().into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let skip = eat_attrs(&mut toks);
        eat_vis(&mut toks);
        let name = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive shim: expected field name, got {other:?}"),
        };
        match toks.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive shim: expected ':' after field name, got {other:?}"),
        }
        // Skip the type, stopping at the next top-level comma.
        let mut depth = 0i32;
        for t in toks.by_ref() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => depth -= 1,
                    ',' if depth == 0 => break,
                    _ => {}
                }
            }
        }
        fields.push(Field { name, skip });
    }
    fields
}

fn parse_input(input: TokenStream) -> Input {
    let mut toks = input.into_iter().peekable();
    eat_attrs(&mut toks);
    eat_vis(&mut toks);
    let kind = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected struct/enum, got {other:?}"),
    };
    let name = match toks.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, got {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = toks.peek() {
        if p.as_char() == '<' {
            panic!("serde_derive shim: generic types are not supported (type {name})");
        }
    }
    match kind.as_str() {
        "struct" => match toks.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Input::NamedStruct {
                name,
                fields: parse_named_fields(&g),
            },
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Input::TupleStruct {
                    name,
                    arity: count_tuple_fields(&g),
                }
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Input::UnitStruct { name },
            other => panic!("serde_derive shim: unsupported struct body {other:?}"),
        },
        "enum" => {
            let body = match toks.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
                other => panic!("serde_derive shim: expected enum body, got {other:?}"),
            };
            let mut vt = body.stream().into_iter().peekable();
            let mut variants = Vec::new();
            loop {
                eat_attrs(&mut vt);
                let vname = match vt.next() {
                    Some(TokenTree::Ident(id)) => id.to_string(),
                    None => break,
                    other => panic!("serde_derive shim: expected variant name, got {other:?}"),
                };
                let shape = match vt.peek() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        let n = count_tuple_fields(g);
                        vt.next();
                        VariantShape::Tuple(n)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        let fields = parse_named_fields(g);
                        vt.next();
                        VariantShape::Struct(fields)
                    }
                    _ => VariantShape::Unit,
                };
                if let Some(TokenTree::Punct(p)) = vt.peek() {
                    if p.as_char() == ',' {
                        vt.next();
                    }
                }
                variants.push(Variant { name: vname, shape });
            }
            Input::Enum { name, variants }
        }
        other => panic!("serde_derive shim: unsupported item kind `{other}`"),
    }
}

/// Derives `serde::Serialize` (value-model flavour).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::NamedStruct { name, fields } => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__m.push((\"{0}\".to_string(), ::serde::Serialize::serialize(&self.{0})));\n",
                    f.name
                ));
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 let mut __m: ::std::vec::Vec<(::std::string::String, ::serde::Value)> = ::std::vec::Vec::new();\n\
                 {pushes}\
                 ::serde::Value::Map(__m)\n}}\n}}"
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                "::serde::Serialize::serialize(&self.0)".to_string()
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| format!("::serde::Serialize::serialize(&self.{i})"))
                    .collect();
                format!("::serde::Value::Seq(vec![{}])", items.join(", "))
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ {body} }}\n}}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
             fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n}}"
        ),
        Input::Enum { name, variants } => {
            let mut arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str(\"{vn}\".to_string()),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::serialize(__f0)".to_string()
                        } else {
                            let items: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::serialize({b})"))
                                .collect();
                            format!("::serde::Value::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => ::serde::Value::Map(vec![(\"{vn}\".to_string(), {payload})]),\n",
                            binds = binds.join(", ")
                        ));
                    }
                    VariantShape::Struct(fields) => {
                        let binds: Vec<String> = fields.iter().map(|f| f.name.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{0}\".to_string(), ::serde::Serialize::serialize({0}))",
                                    f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => ::serde::Value::Map(vec![(\"{vn}\".to_string(), ::serde::Value::Map(vec![{items}]))]),\n",
                            binds = binds.join(", "),
                            items = items.join(", ")
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{\n\
                 match self {{\n{arms}}}\n}}\n}}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated impl parses")
}

/// Derives `serde::Deserialize` (value-model flavour).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_input(input) {
        Input::NamedStruct { name, fields } => {
            let mut inits = String::new();
            for f in &fields {
                if f.skip {
                    inits.push_str(&format!(
                        "{}: ::std::default::Default::default(),\n",
                        f.name
                    ));
                } else {
                    inits.push_str(&format!(
                        "{0}: ::serde::Deserialize::deserialize(::serde::map_get(__m, \"{0}\"))?,\n",
                        f.name
                    ));
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n\
                 ::std::result::Result::Ok({name} {{\n{inits}}})\n}}\n}}"
            )
        }
        Input::TupleStruct { name, arity } => {
            let body = if arity == 1 {
                format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::deserialize(__v)?))"
                )
            } else {
                let items: Vec<String> = (0..arity)
                    .map(|i| {
                        format!(
                            "::serde::Deserialize::deserialize(__s.get({i}).ok_or_else(|| ::serde::Error::custom(\"tuple too short\"))?)?"
                        )
                    })
                    .collect();
                format!(
                    "let __s = __v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                     ::std::result::Result::Ok({name}({}))",
                    items.join(", ")
                )
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n}}\n}}"
            )
        }
        Input::UnitStruct { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
             fn deserialize(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
             ::std::result::Result::Ok({name})\n}}\n}}"
        ),
        Input::Enum { name, variants } => {
            let mut unit_arms = String::new();
            let mut tagged_arms = String::new();
            for v in &variants {
                let vn = &v.name;
                match &v.shape {
                    VariantShape::Unit => unit_arms.push_str(&format!(
                        "\"{vn}\" => ::std::result::Result::Ok({name}::{vn}),\n"
                    )),
                    VariantShape::Tuple(n) => {
                        let body = if *n == 1 {
                            format!(
                                "::std::result::Result::Ok({name}::{vn}(::serde::Deserialize::deserialize(__payload)?))"
                            )
                        } else {
                            let items: Vec<String> = (0..*n)
                                .map(|i| {
                                    format!(
                                        "::serde::Deserialize::deserialize(__s.get({i}).ok_or_else(|| ::serde::Error::custom(\"variant payload too short\"))?)?"
                                    )
                                })
                                .collect();
                            format!(
                                "{{ let __s = __payload.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected array payload\"))?;\n\
                                 ::std::result::Result::Ok({name}::{vn}({})) }}",
                                items.join(", ")
                            )
                        };
                        tagged_arms.push_str(&format!("\"{vn}\" => {body},\n"));
                    }
                    VariantShape::Struct(fields) => {
                        let mut inits = String::new();
                        for f in fields {
                            if f.skip {
                                inits.push_str(&format!(
                                    "{}: ::std::default::Default::default(),\n",
                                    f.name
                                ));
                            } else {
                                inits.push_str(&format!(
                                    "{0}: ::serde::Deserialize::deserialize(::serde::map_get(__fm, \"{0}\"))?,\n",
                                    f.name
                                ));
                            }
                        }
                        tagged_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __fm = __payload.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map payload\"))?;\n\
                             ::std::result::Result::Ok({name}::{vn} {{ {inits} }}) }},\n"
                        ));
                    }
                }
            }
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(__v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                 if let ::std::option::Option::Some(__s) = __v.as_str() {{\n\
                 return match __s {{\n{unit_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__s}}` of {name}\"))),\n}};\n}}\n\
                 let __m = __v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected string or map for enum {name}\"))?;\n\
                 let (__tag, __payload) = __m.first().ok_or_else(|| ::serde::Error::custom(\"empty enum map\"))?;\n\
                 match __tag.as_str() {{\n{tagged_arms}\
                 _ => ::std::result::Result::Err(::serde::Error::custom(format!(\"unknown variant `{{__tag}}` of {name}\"))),\n}}\n}}\n}}"
            )
        }
    };
    out.parse()
        .expect("serde_derive shim: generated impl parses")
}
