//! Offline stand-in for `crossbeam`, providing the `channel` module's
//! MPMC bounded/unbounded channels over `std::sync` primitives
//! (`Mutex<VecDeque>` + two condvars). Semantics follow crossbeam:
//! cloneable senders *and* receivers, `send` blocks when a bounded
//! channel is full, receive operations fail only once the channel is
//! both empty and fully disconnected.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    struct State<T> {
        queue: VecDeque<T>,
        cap: Option<usize>,
        senders: usize,
        receivers: usize,
    }

    struct Shared<T> {
        state: Mutex<State<T>>,
        not_empty: Condvar,
        not_full: Condvar,
    }

    /// Creates a bounded channel with capacity `cap`.
    ///
    /// Unlike crossbeam, `cap == 0` (rendezvous) is approximated with a
    /// capacity-1 buffer; nothing in this workspace uses rendezvous
    /// channels.
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        make(Some(cap.max(1)))
    }

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        make(None)
    }

    fn make<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                cap,
                senders: 1,
                receivers: 1,
            }),
            not_empty: Condvar::new(),
            not_full: Condvar::new(),
        });
        (
            Sender {
                shared: shared.clone(),
            },
            Receiver { shared },
        )
    }

    /// Error returned by [`Sender::send`] when all receivers are gone;
    /// carries the unsent message.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    /// Error returned by [`Sender::try_send`].
    #[derive(Debug, PartialEq, Eq)]
    pub enum TrySendError<T> {
        /// The channel is full; carries the unsent message.
        Full(T),
        /// All receivers are gone; carries the unsent message.
        Disconnected(T),
    }

    /// Error returned by [`Receiver::recv`]: channel empty and all
    /// senders gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// Channel currently empty.
        Empty,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// Error returned by [`Receiver::recv_timeout`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum RecvTimeoutError {
        /// No message arrived in time.
        Timeout,
        /// Channel empty and all senders gone.
        Disconnected,
    }

    /// The sending half; cloneable.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half; cloneable (crossbeam channels are MPMC).
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    impl<T> std::fmt::Debug for Sender<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Sender { .. }")
        }
    }

    impl<T> std::fmt::Debug for Receiver<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("Receiver { .. }")
        }
    }

    impl<T> Sender<T> {
        /// Sends `msg`, blocking while a bounded channel is full.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if st.receivers == 0 {
                    return Err(SendError(msg));
                }
                let full = st.cap.is_some_and(|c| st.queue.len() >= c);
                if !full {
                    st.queue.push_back(msg);
                    drop(st);
                    self.shared.not_empty.notify_one();
                    return Ok(());
                }
                st = self.shared.not_full.wait(st).unwrap();
            }
        }

        /// Sends without blocking.
        pub fn try_send(&self, msg: T) -> Result<(), TrySendError<T>> {
            let mut st = self.shared.state.lock().unwrap();
            if st.receivers == 0 {
                return Err(TrySendError::Disconnected(msg));
            }
            if st.cap.is_some_and(|c| st.queue.len() >= c) {
                return Err(TrySendError::Full(msg));
            }
            st.queue.push_back(msg);
            drop(st);
            self.shared.not_empty.notify_one();
            Ok(())
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True iff no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().senders += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.shared.state.lock().unwrap();
                st.senders -= 1;
                st.senders
            };
            if remaining == 0 {
                self.shared.not_empty.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Receives a message, blocking until one arrives or every sender
        /// is gone.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvError);
                }
                st = self.shared.not_empty.wait(st).unwrap();
            }
        }

        /// Receives without blocking.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut st = self.shared.state.lock().unwrap();
            if let Some(msg) = st.queue.pop_front() {
                drop(st);
                self.shared.not_full.notify_one();
                return Ok(msg);
            }
            if st.senders == 0 {
                Err(TryRecvError::Disconnected)
            } else {
                Err(TryRecvError::Empty)
            }
        }

        /// Receives with a deadline.
        pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
            let deadline = Instant::now() + timeout;
            let mut st = self.shared.state.lock().unwrap();
            loop {
                if let Some(msg) = st.queue.pop_front() {
                    drop(st);
                    self.shared.not_full.notify_one();
                    return Ok(msg);
                }
                if st.senders == 0 {
                    return Err(RecvTimeoutError::Disconnected);
                }
                let now = Instant::now();
                if now >= deadline {
                    return Err(RecvTimeoutError::Timeout);
                }
                let (guard, _timed_out) = self
                    .shared
                    .not_empty
                    .wait_timeout(st, deadline - now)
                    .unwrap();
                st = guard;
            }
        }

        /// Number of queued messages.
        pub fn len(&self) -> usize {
            self.shared.state.lock().unwrap().queue.len()
        }

        /// True iff no messages are queued.
        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        /// A blocking iterator that ends when the channel disconnects.
        pub fn iter(&self) -> Iter<'_, T> {
            Iter { receiver: self }
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.state.lock().unwrap().receivers += 1;
            Self {
                shared: self.shared.clone(),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            let remaining = {
                let mut st = self.shared.state.lock().unwrap();
                st.receivers -= 1;
                st.receivers
            };
            if remaining == 0 {
                self.shared.not_full.notify_all();
            }
        }
    }

    /// Blocking iterator over received messages.
    pub struct Iter<'a, T> {
        receiver: &'a Receiver<T>,
    }

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;

        fn next(&mut self) -> Option<T> {
            self.receiver.recv().ok()
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;
        use std::thread;

        #[test]
        fn bounded_blocks_and_delivers_in_order() {
            let (tx, rx) = bounded(2);
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            assert!(matches!(tx.try_send(3), Err(TrySendError::Full(3))));
            let h = thread::spawn(move || tx.send(3).unwrap());
            assert_eq!(rx.recv().unwrap(), 1);
            h.join().unwrap();
            assert_eq!(rx.recv().unwrap(), 2);
            assert_eq!(rx.recv().unwrap(), 3);
        }

        #[test]
        fn disconnect_semantics() {
            let (tx, rx) = unbounded::<i32>();
            tx.send(5).unwrap();
            drop(tx);
            assert_eq!(rx.recv().unwrap(), 5);
            assert_eq!(rx.recv(), Err(RecvError));
            let (tx2, rx2) = unbounded::<i32>();
            drop(rx2);
            assert_eq!(tx2.send(1), Err(SendError(1)));
        }

        #[test]
        fn mpmc_fanout() {
            let (tx, rx) = bounded(8);
            let mut consumers = Vec::new();
            for _ in 0..3 {
                let rx = rx.clone();
                consumers.push(thread::spawn(move || rx.iter().count()));
            }
            drop(rx);
            for i in 0..300 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let total: usize = consumers.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 300);
        }

        #[test]
        fn recv_timeout_times_out() {
            let (tx, rx) = bounded::<i32>(1);
            assert_eq!(
                rx.recv_timeout(Duration::from_millis(10)),
                Err(RecvTimeoutError::Timeout)
            );
            tx.send(9).unwrap();
            assert_eq!(rx.recv_timeout(Duration::from_millis(10)), Ok(9));
        }
    }
}
