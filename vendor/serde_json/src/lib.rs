//! Offline stand-in for `serde_json`: renders and parses the `serde`
//! shim's [`Value`] model as standard JSON.
//!
//! Supports the API surface this workspace uses — [`to_string`],
//! [`to_string_pretty`], and [`from_str`] — with serde_json-compatible
//! conventions (non-finite floats serialize as `null`, objects keep
//! insertion order, `\uXXXX` escapes incl. surrogate pairs are parsed).

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization/deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
    line: usize,
    column: usize,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Self {
            msg: msg.into(),
            line: 0,
            column: 0,
        }
    }

    /// One-based line of the parse error (0 when not a parse error).
    pub fn line(&self) -> usize {
        self.line
    }

    /// One-based column of the parse error (0 when not a parse error).
    pub fn column(&self) -> usize {
        self.column
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.line > 0 {
            write!(
                f,
                "{} at line {} column {}",
                self.msg, self.line, self.column
            )
        } else {
            write!(f, "{}", self.msg)
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::new(e.to_string())
    }
}

/// Serializes `value` to a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, None, 0);
    Ok(out)
}

/// Serializes `value` to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.serialize(), &mut out, Some(2), 0);
    Ok(out)
}

/// Parses a value of type `T` from a JSON string.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    Ok(T::deserialize(&value)?)
}

fn write_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(n) = indent {
        out.push('\n');
        for _ in 0..n * depth {
            out.push(' ');
        }
    }
}

fn write_value(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(i) => out.push_str(&i.to_string()),
        Value::U64(u) => out.push_str(&u.to_string()),
        Value::F64(f) => {
            if f.is_finite() {
                out.push_str(&f.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                    if indent.is_none() {
                        // compact: no space
                    }
                }
                write_indent(out, indent, depth + 1);
                write_value(item, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_indent(out, indent, depth + 1);
                write_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(val, out, indent, depth + 1);
            }
            write_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses a JSON document into a [`Value`]; trailing non-whitespace is an
/// error.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let result = (|| {
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(Error::new(format!(
                "trailing characters at offset {}",
                p.pos
            )));
        }
        Ok(v)
    })();
    result.map_err(|mut e| {
        // Convert the byte offset where the parser stopped into the
        // one-based line/column serde_json reports.
        let consumed = &p.bytes[..p.pos.min(p.bytes.len())];
        e.line = consumed.iter().filter(|&&b| b == b'\n').count() + 1;
        e.column = consumed.iter().rev().take_while(|&&b| b != b'\n').count() + 1;
        e
    })
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b't') => {
                if self.literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::new("invalid literal"))
                }
            }
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Seq(items));
                        }
                        _ => return Err(Error::new("expected `,` or `]` in array")),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut entries = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.value()?;
                    entries.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Map(entries));
                        }
                        _ => return Err(Error::new("expected `,` or `}` in object")),
                    }
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            other => Err(Error::new(format!(
                "unexpected input {other:?} at offset {}",
                self.pos
            ))),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid utf-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let lo = self.hex4()?;
                                let combined =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(combined)
                                    .ok_or_else(|| Error::new("invalid surrogate pair"))?
                            } else {
                                char::from_u32(hi)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::new("invalid escape")),
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(from_str::<String>("\"a\\nb\"").unwrap(), "a\nb");
        assert!((from_str::<f64>("0.25").unwrap() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn roundtrip_collections() {
        let v: Vec<i64> = vec![1, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<i64>>(&s).unwrap(), v);
    }

    #[test]
    fn pretty_is_parseable() {
        let v: Vec<Vec<i64>> = vec![vec![1], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        assert_eq!(from_str::<Vec<Vec<i64>>>(&s).unwrap(), v);
    }

    #[test]
    fn unicode_escapes() {
        assert_eq!(from_str::<String>("\"\\u00e9\"").unwrap(), "é");
        assert_eq!(from_str::<String>("\"\\ud83d\\ude00\"").unwrap(), "😀");
    }
}
