//! Offline stand-in for `parking_lot`: the non-poisoning `RwLock`/`Mutex`
//! API, backed by `std::sync`. Poisoned locks are transparently recovered
//! (parking_lot has no poisoning), which matches how this workspace uses
//! the crate — guards are never held across panics that matter.

use std::sync;

pub use sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock around `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire read access without blocking.
    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        match self.0.try_read() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Tries to acquire write access without blocking.
    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        match self.0.try_write() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutex with parking_lot's panic-free guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a mutex around `value`.
    pub const fn new(value: T) -> Self {
        Self(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Tries to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.0.try_lock() {
            Ok(g) => Some(g),
            Err(sync::TryLockError::Poisoned(e)) => Some(e.into_inner()),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_basics() {
        let l = RwLock::new(1);
        assert_eq!(*l.read(), 1);
        *l.write() += 1;
        assert_eq!(*l.read(), 2);
        assert!(l.try_read().is_some());
    }

    #[test]
    fn mutex_basics() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
