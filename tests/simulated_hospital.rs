//! Integration tests on simulated hospital workloads: federation, the
//! refinement trajectory, miner agreement, and violation containment.

use prima::mining::{AprioriConfig, AprioriMiner, Miner, MinerConfig, SqlMiner};
use prima::refine::extract::practice_table;
use prima::refine::filter::filter;
use prima::system::{PrimaSystem, ReviewMode};
use prima::workload::scenario::score_patterns;
use prima::workload::sim::{entries, split_sites, SimConfig};
use prima::workload::Scenario;

fn trail(n: usize, seed: u64) -> Vec<prima::audit::AuditEntry> {
    let scenario = Scenario::community_hospital();
    entries(&scenario.simulator().generate(&SimConfig {
        seed,
        n_entries: n,
        ..SimConfig::default()
    }))
}

/// The default miner recovers every injected cluster, and nothing else, on
/// a realistic trail.
#[test]
fn miner_recovers_ground_truth_exactly() {
    let scenario = Scenario::community_hospital();
    let t = trail(20_000, 3);
    let practice = filter(&t);
    let table = practice_table(&practice);
    let patterns = SqlMiner::default().mine(&table).unwrap();
    let truth = scenario.ground_truth();
    let score = score_patterns(&patterns, &truth);
    assert_eq!(score.false_negatives, 0, "all clusters found: {patterns:?}");
    // f=5 on a 20k trail can admit a handful of violation coincidences;
    // precision must still be high.
    assert!(score.precision() > 0.4, "score {score:?}");
}

/// Apriori and the SQL miner agree on full-width patterns for real trails.
#[test]
fn miners_agree_on_simulated_trails() {
    let t = trail(10_000, 5);
    let practice = filter(&t);
    let table = practice_table(&practice);
    let f = practice.len() / 100;
    let sql = SqlMiner::new(MinerConfig {
        min_frequency: f,
        ..MinerConfig::default()
    })
    .mine(&table)
    .unwrap();
    let apriori = AprioriMiner::new(AprioriConfig {
        min_support: f,
        ..AprioriConfig::default()
    })
    .mine(&table)
    .unwrap();
    assert_eq!(sql, apriori);
    assert!(!sql.is_empty());
}

/// Splitting the trail over sites and federating is equivalent to one big
/// store, for both coverage and refinement.
#[test]
fn federation_is_transparent() {
    let scenario = Scenario::community_hospital();
    let sim = scenario.simulator();
    let labeled = sim.generate(&SimConfig {
        seed: 9,
        n_entries: 5_000,
        ..SimConfig::default()
    });

    // One store.
    let mut single = PrimaSystem::new(scenario.vocab.clone(), scenario.policy.clone());
    single
        .attach_store(prima::workload::sim::to_store(&labeled, "single"))
        .expect("unique source name");

    // Five federated sites.
    let mut federated = PrimaSystem::new(scenario.vocab.clone(), scenario.policy.clone());
    for s in split_sites(&labeled, 5) {
        federated.attach_store(s).expect("unique source name");
    }

    assert!((single.entry_coverage().ratio() - federated.entry_coverage().ratio()).abs() < 1e-12);
    let r1 = single.run_round(ReviewMode::AutoAccept).unwrap();
    let r2 = federated.run_round(ReviewMode::AutoAccept).unwrap();
    assert_eq!(r1.patterns_found, r2.patterns_found);
    assert_eq!(r1.rules_added, r2.rules_added);
    assert_eq!(single.policy(), federated.policy());
}

/// Violations raise the exception count but (at sane thresholds) do not
/// become policy — the floor of Figure 2.
#[test]
fn violations_are_not_absorbed() {
    let scenario = Scenario::community_hospital();
    let sim = scenario.simulator();
    let labeled = sim.generate(&SimConfig {
        seed: 21,
        n_entries: 20_000,
        violation_share: 0.03,
        ..SimConfig::default()
    });
    // Threshold scaled to the trail so violation scatter stays below it.
    let miner = SqlMiner::new(MinerConfig {
        min_frequency: 100,
        ..MinerConfig::default()
    });
    let mut system = PrimaSystem::new(scenario.vocab.clone(), scenario.policy.clone())
        .with_miner(Box::new(miner));
    system
        .attach_store(prima::workload::sim::to_store(&labeled, "main"))
        .expect("unique source name");
    let record = system.run_round(ReviewMode::AutoAccept).unwrap();
    assert!(record.rules_added >= 3, "clusters absorbed");

    // Every accepted rule matches a ground-truth cluster.
    let truth = scenario.ground_truth();
    for c in system.review().candidates() {
        assert!(
            truth.contains(&c.pattern.rule),
            "accepted a non-cluster rule: {}",
            c.pattern.rule
        );
    }

    // Coverage after refinement stays below 1: violations remain exposed.
    let after = system.entry_coverage();
    assert!(after.ratio() < 1.0);
    assert!(after.ratio() > 0.9);
}
