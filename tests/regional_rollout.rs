//! Integration test: a staged regional rollout — windowed refinement over
//! a federated network, with snapshot/restore between periods (the
//! operational shape a real deployment would take).

use prima::audit::TrainingWindow;
use prima::mining::{MinerConfig, SqlMiner};
use prima::system::{PrimaSystem, ReviewMode};
use prima::workload::sim::{split_sites, SimConfig};
use prima::workload::Scenario;

#[test]
fn staged_rollout_with_windows_and_snapshots() {
    let scenario = Scenario::regional_network();
    let sim = scenario.simulator();

    // One quarter of operation, spread over four sites. Period length is
    // driven by the simulator's mean gap (default 30 s → ~60k seconds for
    // 20k entries).
    let labeled = sim.generate(&SimConfig {
        seed: 44,
        n_entries: 20_000,
        ..SimConfig::default()
    });
    let last_time = labeled.last().expect("non-empty trail").entry.time;

    let miner = SqlMiner::new(MinerConfig {
        min_frequency: 30,
        ..MinerConfig::default()
    });
    let mut system = PrimaSystem::new(scenario.vocab.clone(), scenario.policy.clone())
        .with_miner(Box::new(miner));
    for store in split_sites(&labeled, 4) {
        system.attach_store(store).expect("unique source name");
    }

    // Period 1: refine over the first half only.
    let half = TrainingWindow::new(0, last_time / 2);
    let first = system
        .run_round_windowed(half, ReviewMode::AutoAccept)
        .expect("first period mines cleanly");
    assert!(
        first.rules_added >= 3,
        "dominant clusters absorbed: {first:?}"
    );
    assert!(
        first.audit_entries < 20_000,
        "window must truncate the trail"
    );

    // Nightly snapshot…
    let json = system.snapshot_json();

    // …process restart, re-attach the trails, refine over the second half.
    let mut restored =
        PrimaSystem::restore_json(scenario.vocab.clone(), &json).expect("snapshot restores");
    for store in split_sites(&labeled, 4) {
        restored.attach_store(store).expect("unique source name");
    }
    let rest = TrainingWindow::new(last_time / 2, last_time + 1);
    let second = restored
        .run_round_windowed(rest, ReviewMode::AutoAccept)
        .expect("second period mines cleanly");

    // Rules accepted in period 1 are already policy: period 2 must not
    // re-add them, and coverage over the second period reflects the
    // period-1 refinement.
    assert!(second.entry_coverage_before > first.entry_coverage_before);
    let final_policy = restored.policy().cardinality();
    assert!(final_policy >= scenario.policy.cardinality() + first.rules_added);

    // History spans both periods across the restart.
    assert_eq!(restored.history().len(), 2);
    assert_eq!(restored.history()[0].round, 1);
    assert_eq!(restored.history()[1].round, 2);
}
