//! Integration test: mine → generalize → accept → compact, end to end.
//!
//! When informal practice covers *every* ground purpose under a composite
//! concept, the refinement output should be the single composite rule the
//! policy officer would have written — and after acceptance, compaction
//! removes any ground rules the composite now subsumes.

use prima::mining::{Miner, MinerConfig, SqlMiner};
use prima::model::simplify::simplify_policy;
use prima::model::{Policy, Rule, StoreTag};
use prima::refine::extract::practice_table;
use prima::refine::filter::filter;
use prima::refine::generalize;
use prima::vocab::samples::figure_1;
use prima::workload::sim::{entries, PracticeCluster, SimConfig, Simulator};

#[test]
fn sibling_complete_practice_generalizes_and_compacts() {
    let vocab = figure_1();
    // The stated policy covers only physicians; nurses run the referral
    // workflow for every administering-healthcare purpose through the
    // exception mechanism.
    let policy = Policy::with_rules(
        StoreTag::PolicyStore,
        vec![Rule::of(&[
            ("data", "mental-health"),
            ("purpose", "treatment"),
            ("authorized", "physician"),
        ])],
    );
    let clusters = vec![
        PracticeCluster::new("referral", "treatment", "nurse").with_weight(2.0),
        PracticeCluster::new("referral", "registration", "nurse").with_weight(1.5),
        PracticeCluster::new("referral", "billing", "nurse").with_weight(1.0),
    ];
    let sim = Simulator::new(vocab.clone(), policy.clone(), clusters);
    let trail = entries(&sim.generate(&SimConfig {
        seed: 14,
        n_entries: 8_000,
        informal_share: 0.3,
        violation_share: 0.0,
        ..SimConfig::default()
    }));

    // Mine.
    let practice = filter(&trail);
    let table = practice_table(&practice);
    let patterns = SqlMiner::new(MinerConfig {
        min_frequency: 50,
        ..MinerConfig::default()
    })
    .mine(&table)
    .unwrap();
    assert_eq!(patterns.len(), 3, "three ground workflows mined");

    // Generalize: the three purposes are exactly administering-healthcare.
    let out = generalize(&patterns, &vocab);
    assert_eq!(out.rules.len(), 1, "steps: {:?}", out.steps);
    let composite = &out.rules[0];
    assert_eq!(
        composite.value_of("purpose"),
        Some("administering-healthcare")
    );
    assert_eq!(composite.value_of("data"), Some("referral"));

    // Accept, then also (redundantly) accept one of the ground rules the
    // way an earlier round might have; compaction removes it again.
    let mut refined = policy.clone();
    refined.push(Rule::from_ground(&patterns[0].rule));
    refined.push(composite.clone());
    assert_eq!(refined.cardinality(), 3);
    let compacted = simplify_policy(&refined, &vocab);
    assert_eq!(compacted.policy.cardinality(), 2);
    assert_eq!(compacted.removed.len(), 1);

    // The compacted policy fully covers the nurses' workflow.
    let rules: Vec<_> = trail.iter().map(|e| e.to_ground_rule().unwrap()).collect();
    let coverage =
        prima::model::CoverageEngine::default().entry_coverage(&compacted.policy, &rules, &vocab);
    assert!(
        (coverage.ratio() - 1.0).abs() < f64::EPSILON,
        "coverage {coverage:?}"
    );
}
