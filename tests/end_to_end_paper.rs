//! Integration tests reproducing the paper's worked examples end to end,
//! spanning vocab → model → audit → mining → refine → core.

use prima::model::samples::{figure_3_audit_policy, figure_3_policy_store};
use prima::model::{compute_coverage, CoverageEngine, Strategy};
use prima::system::{PrimaSystem, ReviewMode};
use prima::vocab::samples::figure_1;
use prima::workload::fixtures::{figure_3_trail, table_1};

/// Figure 3: ComputeCoverage(P_PS, P_AL, V) = 50 % with exactly the three
/// annotated exception scenarios.
#[test]
fn figure_3_worked_example() {
    let v = figure_1();
    let report = compute_coverage(&figure_3_policy_store(), &figure_3_audit_policy(), &v)
        .expect("fixture ranges are small");
    assert_eq!((report.overlap, report.target_cardinality), (3, 6));
    assert!((report.percent() - 50.0).abs() < 1e-9);
    let exceptions: Vec<String> = report
        .uncovered
        .iter()
        .map(|g| g.compact(&["data", "purpose", "authorized"]))
        .collect();
    assert_eq!(
        exceptions,
        vec![
            "prescription:billing:clerk",
            "psychiatry:treatment:nurse",
            "referral:registration:nurse",
        ]
    );
}

/// The Figure 3 trail and the Figure 3 audit policy agree.
#[test]
fn figure_3_trail_matches_policy_fixture() {
    let v = figure_1();
    let trail = figure_3_trail();
    let from_trail = prima::model::Policy::from_ground_rules(
        prima::model::StoreTag::AuditLog,
        trail.iter().map(|e| e.to_ground_rule().unwrap()),
    );
    let r1 = compute_coverage(&figure_3_policy_store(), &from_trail, &v).unwrap();
    let r2 = compute_coverage(&figure_3_policy_store(), &figure_3_audit_policy(), &v).unwrap();
    assert_eq!(r1.overlap, r2.overlap);
    assert_eq!(r1.target_cardinality, r2.target_cardinality);
}

/// Section 5: the full use case — 30 % coverage, refinement mines exactly
/// Referral:Registration:Nurse, accepting it lifts coverage to 80 %.
#[test]
fn section_5_use_case() {
    let mut system = PrimaSystem::new(figure_1(), figure_3_policy_store());
    let store = prima::audit::AuditStore::new("main");
    store.append_all(&table_1()).unwrap();
    system.attach_store(store).expect("unique source name");

    let before = system.entry_coverage();
    assert_eq!((before.covered_entries, before.total_entries), (3, 10));

    let record = system.run_round(ReviewMode::AutoAccept).unwrap();
    assert_eq!(record.practice_entries, 7, "Filter keeps t3, t4, t6-t10");
    assert_eq!(record.patterns_found, 1);
    assert_eq!(record.patterns_useful, 1);
    assert_eq!(record.rules_added, 1);

    let candidate = &system.review().candidates()[0];
    assert_eq!(
        candidate
            .pattern
            .compact(&["data", "purpose", "authorized"]),
        "referral:registration:nurse"
    );
    assert_eq!(candidate.pattern.support, 5, "entries t3 and t7-t10");

    let after = system.entry_coverage();
    assert_eq!((after.covered_entries, after.total_entries), (8, 10));
}

/// A second refinement round after acceptance proposes nothing new: the
/// remaining exceptions (t4, t6) are below the frequency threshold.
#[test]
fn refinement_converges_on_table_1() {
    let mut system = PrimaSystem::new(figure_1(), figure_3_policy_store());
    let store = prima::audit::AuditStore::new("main");
    store.append_all(&table_1()).unwrap();
    system.attach_store(store).expect("unique source name");
    system.run_round(ReviewMode::AutoAccept).unwrap();
    let second = system.run_round(ReviewMode::AutoAccept).unwrap();
    assert_eq!(second.patterns_useful, 0);
    assert_eq!(second.rules_added, 0);
    assert_eq!(system.policy().cardinality(), 4);
}

/// Every coverage strategy agrees on the paper fixtures.
#[test]
fn strategies_agree_on_fixtures() {
    let v = figure_1();
    let ps = figure_3_policy_store();
    let al = figure_3_audit_policy();
    let base = CoverageEngine::new(Strategy::MaterializeHash)
        .coverage(&ps, &al, &v)
        .unwrap();
    for s in [Strategy::MaterializeSortMerge, Strategy::Lazy] {
        assert_eq!(CoverageEngine::new(s).coverage(&ps, &al, &v).unwrap(), base);
    }
}

/// The set-vs-entry semantics split documented in EXPERIMENTS.md §E3: the
/// same Table 1 trail yields 50 % under Definition 9 (ranges are sets) and
/// 30 % under the paper's Section 5 entry counting.
#[test]
fn set_and_entry_semantics_differ_on_table_1() {
    let v = figure_1();
    let ps = figure_3_policy_store();
    let trail = table_1();
    let rules: Vec<_> = trail.iter().map(|e| e.to_ground_rule().unwrap()).collect();

    let entry = CoverageEngine::default().entry_coverage(&ps, &rules, &v);
    assert!((entry.percent() - 30.0).abs() < 1e-9);

    let as_policy =
        prima::model::Policy::from_ground_rules(prima::model::StoreTag::AuditLog, rules);
    let set = compute_coverage(&ps, &as_policy, &v).unwrap();
    assert!((set.percent() - 50.0).abs() < 1e-9);
}
