//! The seeded-defect corpus: every fixture under `fixtures/analyze/`
//! trips exactly the diagnostics it was written to trip, the clean
//! sample trips none, and the refinement-safety gate blocks a
//! privilege-widening candidate end to end.

use prima::analyze::{AnalyzeConfig, Analyzer, SafetyGate};
use prima::audit::export::import_jsonl;
use prima::model::diag::{count_severities, render_json, DiagCode, Diagnostic};
use prima::model::dsl::parse_policy;
use prima::model::{Policy, Rule, StoreTag};
use prima::vocab::samples::figure_1;
use std::io::BufReader;
use std::path::PathBuf;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures/analyze")
        .join(name)
}

fn load(name: &str) -> Policy {
    let text = std::fs::read_to_string(fixture(name)).expect("fixture exists");
    parse_policy(&text).expect("fixture parses")
}

fn codes(diags: &[Diagnostic]) -> Vec<&str> {
    diags.iter().map(|d| d.code.as_str()).collect()
}

#[test]
fn clean_fixture_has_zero_diagnostics() {
    let v = figure_1();
    let diags = Analyzer::new(&v).analyze(&load("clean.dsl"));
    assert!(diags.is_empty(), "no false positives: {diags:?}");
}

#[test]
fn shadowed_fixture_flags_both_narrow_rules() {
    let v = figure_1();
    let diags = Analyzer::new(&v).analyze(&load("shadowed.dsl"));
    let shadowed: Vec<usize> = diags
        .iter()
        .filter(|d| d.code == DiagCode::ShadowedRule)
        .filter_map(|d| d.location.rule_index)
        .collect();
    assert_eq!(shadowed, vec![1, 2], "rules 2 and 3 are shadowed");
    assert!(
        diags.iter().all(|d| d.code == DiagCode::ShadowedRule),
        "nothing but PA001: {diags:?}"
    );
}

#[test]
fn vacuous_fixture_flags_the_unmatchable_rule() {
    let v = figure_1();
    let diags = Analyzer::new(&v).analyze(&load("vacuous.dsl"));
    let c = codes(&diags);
    assert!(c.contains(&"PA003"), "{c:?}");
    assert!(
        c.contains(&"PA010"),
        "'ward' is not in the vocabulary: {c:?}"
    );
    let vacuous = diags
        .iter()
        .find(|d| d.code == DiagCode::VacuousRule)
        .unwrap();
    assert_eq!(vacuous.location.rule_index, Some(1));
    assert!(vacuous.is_error());
}

#[test]
fn blowup_fixture_trips_under_a_tight_budget() {
    let v = figure_1();
    let policy = load("blowup.dsl");
    // Under the default (generous) budget the grant is acceptable…
    assert!(Analyzer::new(&v).analyze(&policy).is_empty());
    // …under a 10-ground-rule review budget its 30-rule expansion trips.
    let diags = Analyzer::new(&v)
        .with_config(AnalyzeConfig::default().with_budget(10))
        .analyze(&policy);
    assert_eq!(codes(&diags), vec!["PA004"]);
    assert!(diags[0].message.contains("30 ground rules"));
    assert!(diags[0].witness.as_deref().unwrap().contains("×"));
}

#[test]
fn typo_fixture_suggests_the_nearest_concept() {
    let v = figure_1();
    let diags = Analyzer::new(&v).analyze(&load("typo.dsl"));
    let typo = diags
        .iter()
        .find(|d| d.code == DiagCode::UnknownValue)
        .expect("PA011 present");
    assert!(
        typo.message.contains("referral"),
        "suggestion names the nearest concept: {}",
        typo.message
    );
}

#[test]
fn conflicting_fixture_trips_pa002_against_denied_trail() {
    let v = figure_1();
    let policy = load("conflicting.dsl");
    let file = std::fs::File::open(fixture("denied.jsonl")).unwrap();
    let entries = import_jsonl(BufReader::new(file)).unwrap();
    let diags = Analyzer::new(&v).analyze_with_audit(&policy, &entries);
    let conflicts: Vec<&Diagnostic> = diags
        .iter()
        .filter(|d| d.code == DiagCode::CrossPolicyConflict)
        .collect();
    assert_eq!(conflicts.len(), 1, "only the mental-health grant conflicts");
    assert_eq!(conflicts[0].location.rule_index, Some(0));
    assert!(conflicts[0].is_error());
    // The clean fixture stays clean even against the denied trail.
    let clean = Analyzer::new(&v).analyze_with_audit(&load("clean.dsl"), &entries);
    assert!(clean.is_empty(), "{clean:?}");
}

#[test]
fn json_rendering_round_trips_stable_codes() {
    let v = figure_1();
    let diags = Analyzer::new(&v).analyze(&load("vacuous.dsl"));
    let json = render_json(&diags);
    assert!(json.contains("\"PA003\""));
    assert!(json.contains("\"error\""));
    let (errors, _, _) = count_severities(&diags);
    assert!(errors >= 1);
}

/// The acceptance criterion end to end: a refinement round whose mined
/// candidate widens past the safety envelope must reject it with a
/// PA-coded diagnostic and leave the policy untouched.
#[test]
fn refinement_rejects_widening_candidate_with_pa005() {
    use prima::system::{PrimaSystem, ReviewMode};
    let envelope = Policy::with_rules(
        StoreTag::Named("envelope".into()),
        vec![Rule::of(&[
            ("data", "demographic"),
            ("purpose", "billing"),
            ("authorized", "administrative-staff"),
        ])],
    );
    let mut sys = PrimaSystem::new(figure_1(), prima::model::samples::figure_3_policy_store())
        .with_safety_envelope(envelope);
    let store = prima::audit::AuditStore::new("main");
    store
        .append_all(&prima::workload::fixtures::table_1())
        .unwrap();
    sys.attach_store(store).unwrap();

    let record = sys.run_round(ReviewMode::AutoAccept).unwrap();
    assert_eq!(record.rules_added, 0, "widening candidate blocked");
    assert_eq!(sys.policy().cardinality(), 3);
    let diags = sys.last_gate_diagnostics();
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, DiagCode::WideningCandidate);
    assert!(diags[0].to_string().contains("PA005"));

    // The same round under a generous envelope reproduces Section 5.
    let gate = SafetyGate::new(Policy::with_rules(
        StoreTag::Named("envelope".into()),
        vec![Rule::of(&[
            ("data", "medical"),
            ("purpose", "administering-healthcare"),
            ("authorized", "medical-staff"),
        ])],
    ));
    let candidate = Rule::of(&[
        ("data", "referral"),
        ("purpose", "registration"),
        ("authorized", "nurse"),
    ]);
    assert!(gate.admits(&candidate, sys.vocab()));
}
