//! Integration tests driving the full closed loop: HDB middleware →
//! audit trail → PRIMA refinement → enforced policy change.

use prima::hdb::{AccessRequest, ControlCenter};
use prima::refine::CandidateState;
use prima::system::{PrimaSystem, ReviewMode};
use prima::vocab::samples::figure_1;

fn control_center() -> ControlCenter {
    let mut cc = ControlCenter::new(figure_1(), "patient");
    let (encounters, mappings) = prima::hdb::clinical::encounters_table();
    let maps: Vec<(&str, &str)> = mappings
        .iter()
        .map(|(c, k)| (c.as_str(), k.as_str()))
        .collect();
    cc.register_table(encounters, &maps).unwrap();
    cc.define_rule("general-care", "treatment", "nurse")
        .unwrap();
    cc
}

/// Break-the-glass accesses recorded by Compliance Auditing are exactly
/// what PRIMA mines; accepting the mined rule makes the workflow a regular
/// access in the enforcement layer.
#[test]
fn break_the_glass_becomes_policy() {
    let mut cc = control_center();

    // Before refinement the registration workflow is denied.
    let denied = cc.query(&AccessRequest::chosen(
        1,
        "ana",
        "nurse",
        "registration",
        "encounters",
        &["referral"],
    ));
    assert!(denied.is_err());

    // Five nurses break the glass for the same workflow.
    for (t, nurse) in [
        (10, "mark"),
        (11, "tim"),
        (12, "ana"),
        (13, "bob"),
        (14, "mark"),
    ] {
        cc.query(&AccessRequest::break_the_glass(
            t,
            nurse,
            "nurse",
            "registration",
            "encounters",
            &["referral"],
        ))
        .unwrap();
    }

    // PRIMA consumes the control center's audit store directly (they share
    // the same underlying trail).
    let mut prima = PrimaSystem::new(figure_1(), cc.policy().clone());
    prima
        .attach_store(cc.audit_store().clone())
        .expect("unique source name");
    let record = prima.run_round(ReviewMode::Manual).unwrap();
    assert_eq!(record.candidates_enqueued, 1);

    let id = prima.review().pending().next().unwrap().id;
    prima
        .review_mut()
        .decide(id, CandidateState::Accepted, Some("confirmed"));
    assert_eq!(prima.apply_review_decisions(), 1);

    // Push the refined policy back into enforcement.
    cc.set_policy(prima.policy().clone());
    let now_ok = cc.query(&AccessRequest::chosen(
        100,
        "ana",
        "nurse",
        "registration",
        "encounters",
        &["referral"],
    ));
    assert!(now_ok.is_ok(), "refined policy must allow the workflow");
    assert!(!now_ok.unwrap().rows.is_empty());
}

/// Rejected candidates never re-enter the queue, and the workflow stays
/// break-the-glass-only.
#[test]
fn rejected_candidate_stays_rejected() {
    let cc = control_center();
    for t in 0..6 {
        cc.query(&AccessRequest::break_the_glass(
            t,
            if t % 2 == 0 { "eve" } else { "mal" },
            "clerk",
            "billing",
            "encounters",
            &["psychiatry"],
        ))
        .unwrap();
    }
    let mut prima = PrimaSystem::new(figure_1(), cc.policy().clone());
    prima
        .attach_store(cc.audit_store().clone())
        .expect("unique source name");
    prima.run_round(ReviewMode::Manual).unwrap();
    let id = prima.review().pending().next().unwrap().id;
    prima
        .review_mut()
        .decide(id, CandidateState::Rejected, Some("investigate staff"));
    prima.apply_review_decisions();
    assert_eq!(prima.policy().cardinality(), cc.policy().cardinality());

    let again = prima.run_round(ReviewMode::Manual).unwrap();
    assert_eq!(again.candidates_enqueued, 0, "no re-proposal after reject");
}

/// The denial audit trail (op = disallow) is never mined into policy.
#[test]
fn denials_never_become_policy() {
    let cc = control_center();
    // Ten denied attempts by many clerks.
    for t in 0..10 {
        let res = cc.query(&AccessRequest::chosen(
            t,
            &format!("clerk-{t}"),
            "clerk",
            "billing",
            "encounters",
            &["referral"],
        ));
        assert!(res.is_err());
    }
    assert_eq!(cc.audit_store().len(), 10);

    let mut prima = PrimaSystem::new(figure_1(), cc.policy().clone());
    prima
        .attach_store(cc.audit_store().clone())
        .expect("unique source name");
    let record = prima.run_round(ReviewMode::AutoAccept).unwrap();
    assert_eq!(
        record.practice_entries, 0,
        "prohibitions are filtered out before mining"
    );
    assert_eq!(record.rules_added, 0);
}
