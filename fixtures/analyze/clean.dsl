# Figure 3's policy store — the analyzer's clean baseline: no shadowing,
# no vacuous rules, expansions well under budget, every name in Figure 1.
allow nurse to use general-care for treatment;
allow physician to use mental-health for treatment;
allow clerk to use demographic for billing;
