# Seeded defect: 'referal' is not in Figure 1 — the linter must flag it
# with PA011 and suggest the nearest concept, 'referral'.
allow nurse to use referal for registration;
