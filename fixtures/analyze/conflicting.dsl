# Seeded defect against fixtures/analyze/denied.jsonl: the mental-health
# grant's range contains the denied psychiatry and counseling accesses,
# so the analyzer's cross-policy pass must flag it with PA002.
allow nurse to use mental-health for treatment;
allow clerk to use demographic for billing;
