# Seeded defect: the second statement's attribute set {data, ward} can
# never match an audit entry's {authorized, data, purpose} schema, so the
# rule grants nothing — PA003 (and PA010 for the unknown 'ward' attribute).
allow nurse to use general-care for treatment;
rule data=lab-result, ward=icu;
