# Seeded defect: the umbrella grant expands to 5 x 3 x 2 = 30 ground
# rules — over any review budget tighter than that, the analyzer must
# flag it with PA004 so a reviewer sees the true breadth of the grant.
allow medical-staff to use medical for administering-healthcare;
