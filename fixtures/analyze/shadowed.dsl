# Seeded defect: rule 2 is strictly inside rule 1's range (referral is a
# general-care document, nurse is medical staff) and rule 3 duplicates
# rule 2 exactly. The analyzer must flag rules 2 and 3 with PA001.
allow medical-staff to use medical for treatment;
allow nurse to use referral for treatment;
allow nurse to use referral for treatment;
